#!/usr/bin/env python
"""End-to-end smoke test for the staged pipeline's artifact cache.

Runs ``python -m repro solve`` twice as real subprocesses sharing one
``--spill-dir``, then checks that

* the warm run's JSON record is **bit-for-bit** identical to the cold
  run's;
* the spill directory holds one content-addressed ``.npz`` per
  pre-execution stage;
* a verification pass over the same spill directory reuses **every**
  pre-execution stage (``pipeline.computed.*`` all zero,
  ``pipeline.cache.hits`` / ``spill_hits`` cover all five stages) and
  reproduces identical stage fingerprints;
* cold/warm wall-clock timings land in ``BENCH_pipeline_cache.json``
  for cross-PR diffing.

Run from the repo root::

    PYTHONPATH=src python tools/pipeline_cache_smoke.py

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

BENCHMARK = "F1"
SOLVE_ARGS = [
    BENCHMARK,
    "--seed", "7",
    "--shots", "256",
    "--iterations", "10",
    "--restarts", "2",
]
STAGES = ["basis", "hamiltonian", "prune", "segmentation", "circuit"]
BENCH_OUT = os.environ.get("BENCH_OUT", "BENCH_pipeline_cache.json")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_solve(spill_dir: str) -> tuple[str, float]:
    """One ``solve`` subprocess; returns (stdout JSON line, seconds)."""
    start = time.perf_counter()
    process = subprocess.run(
        [sys.executable, "-m", "repro", "solve", *SOLVE_ARGS,
         "--spill-dir", spill_dir],
        capture_output=True,
        text=True,
        env=child_env(),
    )
    elapsed = time.perf_counter() - start
    if process.returncode != 0:
        fail(f"solve exited {process.returncode}:\n{process.stderr}")
    return process.stdout, elapsed


def verify_warm_compile(spill_dir: str) -> dict:
    """Compile in-process against the spill dir; all stages must be hits."""
    sys.path.insert(0, SRC)
    from repro import telemetry
    from repro.core.solver import RasenganConfig
    from repro.pipeline import ArtifactCache, SolvePipeline
    from repro.problems.registry import make_benchmark

    problem = make_benchmark(BENCHMARK)
    config = RasenganConfig(seed=7, shots=256, max_iterations=10, restarts=2)
    cache = ArtifactCache(spill_dir=spill_dir)
    with telemetry.session() as collector:
        pipeline = SolvePipeline(problem, config, cache=cache)
        pipeline.compile()
    computed = {
        name: collector.counter(f"pipeline.computed.{name}")
        for name in STAGES
    }
    if any(computed.values()):
        fail(f"warm compile re-ran stages: {computed}")
    hits = collector.counter("pipeline.cache.hits")
    spill_hits = collector.counter("pipeline.cache.spill_hits")
    if hits != len(STAGES) or spill_hits != len(STAGES):
        fail(
            f"expected {len(STAGES)} spill-backed cache hits, got "
            f"hits={hits} spill_hits={spill_hits}"
        )
    sources = [entry["source"] for entry in pipeline.report]
    if sources != ["cache"] * len(STAGES):
        fail(f"expected every stage from cache, got {sources}")
    print(f"warm compile: all {len(STAGES)} stages served from spill cache")
    return {entry["stage"]: entry["fingerprint"] for entry in pipeline.report}


def main() -> int:
    spill_dir = tempfile.mkdtemp(prefix="pipeline-cache-smoke-")
    try:
        cold_record, cold_seconds = run_solve(spill_dir)
        spilled = sorted(
            name for name in os.listdir(spill_dir) if name.endswith(".npz")
        )
        if len(spilled) != len(STAGES):
            fail(
                f"expected {len(STAGES)} spilled artifacts, found "
                f"{len(spilled)}: {spilled}"
            )
        print(f"cold solve: {cold_seconds:.2f}s, spilled {len(spilled)} artifacts")

        warm_record, warm_seconds = run_solve(spill_dir)
        if warm_record != cold_record:
            fail(
                "warm-cache record differs from cold record:\n"
                f"cold: {cold_record}\nwarm: {warm_record}"
            )
        print(f"warm solve: {warm_seconds:.2f}s, record bit-identical")

        fingerprints = verify_warm_compile(spill_dir)
        for name in STAGES:
            if f"{fingerprints[name]}.npz" not in spilled:
                fail(
                    f"stage {name} fingerprint {fingerprints[name][:12]}… "
                    "has no matching spill file"
                )
        print("stage fingerprints match their content-addressed spill files")

        bench = {
            "benchmark": BENCHMARK,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "stages": fingerprints,
            "spilled_artifacts": len(spilled),
        }
        with open(BENCH_OUT, "w", encoding="utf-8") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
        print(f"wrote {BENCH_OUT}")
        print("pipeline cache smoke: OK")
        return 0
    finally:
        shutil.rmtree(spill_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
