#!/usr/bin/env python
"""End-to-end smoke test for the solve-as-a-service layer.

Starts ``python -m repro serve`` as a real subprocess on an ephemeral
port, submits three concurrent jobs over HTTP (two of them identical),
and checks that

* every job completes and the duplicate pair returns identical results;
* the service result is **bit-for-bit** identical to a direct
  ``python -m repro solve`` subprocess with the same spec;
* the dedup layer coalesced or cache-served at least one of the
  duplicates (read back from ``/metrics``);
* SIGINT drains the server and it exits 0.

Run from the repo root::

    PYTHONPATH=src python tools/service_smoke.py

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

SPEC = {"benchmark": "F1", "config": {"seed": 7, "shots": 256,
                                      "max_iterations": 10}}
OTHER = {"benchmark": "K1", "config": {"seed": 3, "shots": 256,
                                       "max_iterations": 10}}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_server() -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=child_env(),
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        print(f"[serve] {line.rstrip()}")
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if match:
            return process, match.group(1)
    process.kill()
    fail("server did not announce its address within 30s")
    raise AssertionError  # unreachable


def direct_solve() -> dict:
    config = SPEC["config"]
    output = subprocess.check_output(
        [sys.executable, "-m", "repro", "solve", SPEC["benchmark"],
         "--seed", str(config["seed"]), "--shots", str(config["shots"]),
         "--iterations", str(config["max_iterations"])],
        text=True,
        env=child_env(),
    )
    return json.loads(output)


def main() -> int:
    sys.path.insert(0, SRC)
    from repro.service import ServiceClient

    process, url = start_server()
    # The server logs to stdout for its whole life; drain it so the pipe
    # buffer never blocks the subprocess.
    drain = threading.Thread(
        target=lambda: [None for _ in process.stdout], daemon=True
    )
    drain.start()
    try:
        client = ServiceClient(url, timeout=15.0)
        health = client.health()
        if health["status"] != "ok":
            fail(f"healthz reported {health}")
        print(f"server healthy: version {health['version']}, "
              f"{health['workers']} workers")

        results: dict[int, dict] = {}
        errors: list[Exception] = []

        def submit(index: int, spec: dict) -> None:
            try:
                results[index] = client.solve(**spec, wait_timeout=300.0)
            except Exception as exc:  # noqa: BLE001 — reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(0, SPEC)),
            threading.Thread(target=submit, args=(1, SPEC)),
            threading.Thread(target=submit, args=(2, OTHER)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300.0)
        if errors:
            fail(f"submission errors: {errors}")
        if len(results) != 3:
            fail(f"expected 3 results, got {len(results)}")
        if results[0] != results[1]:
            fail("duplicate submissions returned different results")
        if results[0] == results[2]:
            fail("distinct submissions returned identical results")
        print(f"3 jobs done; duplicates agree "
              f"(arg={results[0]['arg']:.6f})")

        direct = direct_solve()
        if results[0] != direct:
            fail("service result differs from direct `repro solve`:\n"
                 f"  service: {json.dumps(results[0], sort_keys=True)[:200]}\n"
                 f"  direct:  {json.dumps(direct, sort_keys=True)[:200]}")
        print("service result is bit-for-bit identical to direct solve")

        coalesced = client.counter("service.dedup.coalesced")
        cached = client.counter("service.store.hits")
        if coalesced + cached < 1:
            fail(f"expected dedup activity, got coalesced={coalesced} "
                 f"store.hits={cached}")
        print(f"dedup active: coalesced={coalesced} store.hits={cached}")
    finally:
        process.send_signal(signal.SIGINT)
        code = process.wait(timeout=30.0)
    if code != 0:
        fail(f"server exited {code} after SIGINT")
    print("server drained and exited 0")
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
