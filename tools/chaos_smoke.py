#!/usr/bin/env python
"""Chaos smoke test: the real solver, under a seeded fault plan.

Drives an in-process :class:`~repro.service.SolverService` (real
``default_runner``, tiny iteration budgets) through injected worker
crashes, engine failures, torn store writes, and slow appends, then
checks the crash-safety invariants the service layer promises:

* every submitted job settles in a terminal state — nothing stuck;
* the dedup in-flight index drains to zero — no orphaned followers;
* the result store reloads cleanly after a simulated restart (torn
  tails quarantined, never a startup crash);
* every DONE result is bit-identical to a fault-free solve of the same
  spec;
* the job journal replays with zero interrupted jobs (every casualty
  was settled before shutdown);
* rerunning the same chaos seed reproduces the same injected-fault
  sequence.

Run from the repo root::

    PYTHONPATH=src python tools/chaos_smoke.py [SEED]

Exits non-zero with a diagnostic on the first violated invariant.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import faults, telemetry  # noqa: E402
from repro.faults import FaultPlan, FaultRule  # noqa: E402
from repro.problems import make_benchmark  # noqa: E402
from repro.problems.io import problem_to_dict  # noqa: E402
from repro.service import (  # noqa: E402
    JobJournal,
    JobState,
    ResultStore,
    SolverService,
    default_runner,
)

#: Tiny-but-real solve specs: every submission runs the actual solver.
SUBMISSIONS = [
    ("F1", {"seed": 7, "shots": None, "max_iterations": 2}),
    ("F1", {"seed": 8, "shots": None, "max_iterations": 2}),
    ("F2", {"seed": 7, "shots": None, "max_iterations": 2}),
    ("K1", {"seed": 3, "shots": None, "max_iterations": 2}),
    ("K1", {"seed": 4, "shots": None, "max_iterations": 2}),
    ("F1", {"seed": 7, "shots": None, "max_iterations": 2}),  # duplicate
]


def plan_for(seed: int) -> FaultPlan:
    return FaultPlan(
        [
            FaultRule("worker.run", "kill", every=5, max_fires=1),
            FaultRule("engine.execute", "raise", probability=0.05),
            FaultRule("store.append", "truncate", every=3),
            FaultRule("store.append", "latency", probability=0.2,
                      delay=0.005),
        ],
        seed=seed,
    )


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_chaos(seed: int, workdir: str, tag: str, workers: int):
    """One chaos run; returns (jobs, injector log, store path, journal path)."""
    store_path = os.path.join(workdir, f"results-{tag}.jsonl")
    journal_path = os.path.join(workdir, f"journal-{tag}.jsonl")
    with faults.session(plan_for(seed)) as injector:
        service = SolverService(
            workers=workers,
            store=ResultStore(capacity=64, path=store_path),
            journal=JobJournal(journal_path),
        ).start()
        jobs = [
            service.submit(
                problem_to_dict(make_benchmark(name, 0)),
                config=config,
                max_retries=3,
                retry_backoff=0.01,
            )
            for name, config in SUBMISSIONS
        ]
        for job in jobs:
            if not job.wait(300.0):
                fail(f"job {job.id} never settled (stuck in {job.state})")
        service.close(timeout=60.0)
        inflight = service.dedup.inflight()
    return jobs, list(injector.log), store_path, journal_path, inflight


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1234
    telemetry.enable()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        jobs, log, store_path, journal_path, inflight = run_chaos(
            seed, workdir, "main", workers=2
        )

        if not log:
            fail(f"seed {seed} injected no faults — the smoke tested nothing")
        by_action: dict = {}
        for _, action, _ in log:
            by_action[action] = by_action.get(action, 0) + 1
        print(f"chaos seed {seed}: injected {len(log)} fault(s) {by_action}")

        for job in jobs:
            if not job.state.terminal:
                fail(f"job {job.id} stuck in {job.state}")
        states = [job.state.value for job in jobs]
        print(f"all {len(jobs)} jobs terminal: {states}")

        if inflight != 0:
            fail(f"{inflight} orphaned dedup follower group(s)")

        # Simulated restart: the torn log must reload, not brick.
        try:
            reloaded = ResultStore(capacity=64, path=store_path)
        except Exception as exc:  # noqa: BLE001 — that is the failure mode
            fail(f"store reload crashed after chaos run: {exc}")
        print(f"store reloaded: {len(reloaded)} record(s), "
              f"{reloaded.quarantined} quarantined torn tail(s)")

        # Bit-identical to fault-free execution of the same specs.
        clean: dict = {}
        done = 0
        for job in jobs:
            if job.state is not JobState.DONE:
                continue
            done += 1
            key = job.fingerprint
            if key not in clean:
                clean[key] = default_runner(job.spec)
            want = json.dumps(clean[key], sort_keys=True)
            got = json.dumps(job.result, sort_keys=True)
            if got != want:
                fail(f"job {job.id} result differs from fault-free solve")
            persisted = reloaded.get(key)
            if persisted is not None and json.dumps(
                persisted, sort_keys=True
            ) != want:
                fail(f"persisted record for {key[:12]} differs from "
                     "fault-free solve")
        if done == 0:
            fail("no job completed — chaos was not survivable")
        print(f"{done} DONE result(s) bit-identical to fault-free solves")

        interrupted = JobJournal(journal_path).interrupted
        if interrupted:
            fail(f"journal reports interrupted jobs after clean close: "
                 f"{interrupted}")
        print("journal replay: zero interrupted jobs")

        # Reproducibility: same seed, same fault sequence (workers=1 so
        # the global call order is deterministic).
        _, log_a, _, _, _ = run_chaos(seed, workdir, "repro-a", workers=1)
        _, log_b, _, _, _ = run_chaos(seed, workdir, "repro-b", workers=1)
        if log_a != log_b:
            fail("same chaos seed produced different fault sequences:\n"
                 f"  a: {log_a}\n  b: {log_b}")
        print(f"fault sequence reproducible: {len(log_a)} injection(s) "
              "identical across reruns")

    telemetry.disable()
    print("chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
