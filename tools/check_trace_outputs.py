#!/usr/bin/env python3
"""Validate exported observability artifacts.

Two checkers, each returning a list of problem strings (empty = valid):

* :func:`check_prometheus_text` — Prometheus text exposition format:
  every line is a comment or ``name value``, names match the Prometheus
  grammar, and histogram families are well-formed (``_bucket`` series
  cumulative and non-decreasing, ``le="+Inf"`` equal to ``_count``,
  ``_sum`` present).
* :func:`check_chrome_trace` — Chrome trace-event JSON: non-empty
  ``traceEvents`` of complete (``"ph": "X"``) events with numeric
  ``ts``/``dur`` and integer ``pid``/``tid``.

Used by the CI ``trace-export-smoke`` job against real ``repro solve
--trace-format chrome`` / ``GET /metrics`` output, and by
``tests/test_telemetry_exporters.py`` so the checker and the exporters
cannot drift apart.

CLI::

    python tools/check_trace_outputs.py --prometheus metrics.txt
    python tools/check_trace_outputs.py --chrome trace.json
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from typing import Any, Dict, List, Tuple

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LE_LABEL = re.compile(r'le="(?P<le>[^"]+)"')


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def check_prometheus_text(text: str) -> List[str]:
    """Return format problems in a Prometheus text exposition payload."""
    problems: List[str] = []
    if not text.endswith("\n"):
        problems.append("payload must end with a newline")
    # histogram family -> {"buckets": [(le, value)], "sum": x, "count": n}
    families: Dict[str, Dict[str, Any]] = {}
    typed: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            match = re.match(r"^# TYPE ([^ ]+) ([a-z]+)$", line)
            if match:
                typed[match.group(1)] = match.group(2)
            elif not line.startswith("# HELP"):
                problems.append(f"line {number}: unrecognised comment {line!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {number}: not a valid sample: {line!r}")
            continue
        name = match.group("name")
        if not _METRIC_NAME.match(name):
            problems.append(f"line {number}: invalid metric name {name!r}")
            continue
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            problems.append(
                f"line {number}: non-numeric value {match.group('value')!r}"
            )
            continue
        labels = match.group("labels") or ""
        if name.endswith("_bucket"):
            family = name[: -len("_bucket")]
            le_match = _LE_LABEL.search(labels)
            if le_match is None:
                problems.append(f"line {number}: _bucket sample without le=")
                continue
            families.setdefault(family, {"buckets": []})["buckets"].append(
                (_parse_value(le_match.group("le")), value)
            )
        elif name.endswith("_sum"):
            families.setdefault(name[: -len("_sum")], {"buckets": []})[
                "sum"
            ] = value
        elif name.endswith("_count"):
            families.setdefault(name[: -len("_count")], {"buckets": []})[
                "count"
            ] = value
    for family, parts in families.items():
        if typed.get(family) != "histogram":
            # _sum/_count/_bucket suffixes on non-histogram metrics are
            # legal Prometheus, just not something our exporter emits.
            continue
        problems.extend(_check_histogram_family(family, parts))
    return problems


def _check_histogram_family(
    family: str, parts: Dict[str, Any]
) -> List[str]:
    problems: List[str] = []
    buckets: List[Tuple[float, float]] = parts.get("buckets", [])
    if not buckets:
        problems.append(f"{family}: histogram with no _bucket series")
        return problems
    if "sum" not in parts:
        problems.append(f"{family}: missing _sum")
    if "count" not in parts:
        problems.append(f"{family}: missing _count")
    bounds = [le for le, _ in buckets]
    if bounds != sorted(bounds):
        problems.append(f"{family}: bucket bounds not sorted")
    if not math.isinf(bounds[-1]):
        problems.append(f"{family}: last bucket must be le=\"+Inf\"")
    cumulative = [value for _, value in buckets]
    if any(b < a for a, b in zip(cumulative, cumulative[1:])):
        problems.append(f"{family}: cumulative bucket counts decrease")
    if "count" in parts and cumulative and cumulative[-1] != parts["count"]:
        problems.append(
            f"{family}: le=\"+Inf\" bucket ({cumulative[-1]:g}) != "
            f"_count ({parts['count']:g})"
        )
    return problems


def check_chrome_trace(payload: Any) -> List[str]:
    """Return format problems in a Chrome trace-event JSON payload."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if event.get("ph") != "X":
            problems.append(f"{where}: ph must be 'X', got {event.get('ph')!r}")
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(f"{where}: {key} must be a number")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if isinstance(event.get("ts"), (int, float)) and event["ts"] < 0:
            problems.append(f"{where}: negative ts")
        if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            problems.append(f"{where}: negative dur")
    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate Prometheus / Chrome-trace exports."
    )
    parser.add_argument(
        "--prometheus",
        metavar="FILE",
        help="Prometheus text exposition file to validate",
    )
    parser.add_argument(
        "--chrome",
        metavar="FILE",
        help="Chrome trace-event JSON file to validate",
    )
    args = parser.parse_args(argv)
    if not args.prometheus and not args.chrome:
        parser.error("nothing to check: pass --prometheus and/or --chrome")
    failed = False
    if args.prometheus:
        with open(args.prometheus, encoding="utf-8") as stream:
            problems = check_prometheus_text(stream.read())
        failed |= _report(f"prometheus:{args.prometheus}", problems)
    if args.chrome:
        with open(args.chrome, encoding="utf-8") as stream:
            problems = check_chrome_trace(json.load(stream))
        failed |= _report(f"chrome:{args.chrome}", problems)
    return 1 if failed else 0


def _report(label: str, problems: List[str]) -> bool:
    if problems:
        print(f"FAIL {label}")
        for problem in problems:
            print(f"  - {problem}")
        return True
    print(f"OK   {label}")
    return False


if __name__ == "__main__":
    sys.exit(main())
