#!/usr/bin/env python
"""End-to-end smoke test for the ``repro.verify`` subsystem.

Exercises the differential correctness harness as real subprocesses:

* runs the quick suite twice with the same seed and checks the
  **determinism contract** — the two verdict reports must be
  byte-identical (the report carries no timestamps or durations, so a
  diff proves every check is a pure function of the seed);
* asserts the clean-tree run exits 0 with zero mismatches and that
  every registered quick check actually executed (``match`` or an
  explicitly reasoned ``skipped`` — never silently absent);
* runs one **mutation** pass (``verify mutate``) and asserts it exits
  nonzero with every executed check flipped to ``mismatch`` — a
  harness that cannot fail is vacuous, and this is the check that
  catches it going vacuous.

The first run's report is left at ``VERIFY_quick.json`` (override with
``VERIFY_OUT``) for CI artifact upload.

Run from the repo root::

    PYTHONPATH=src python tools/verify_smoke.py [seed]

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

SUITE = "quick"
VERIFY_OUT = os.environ.get("VERIFY_OUT", "VERIFY_quick.json")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def child_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    return env


def run_verify(command: str, out_path: str, seed: int) -> subprocess.CompletedProcess:
    argv = [
        sys.executable,
        "-m",
        "repro",
        "verify",
        command,
        "--suite",
        SUITE,
        "--seed",
        str(seed),
        "--out",
        out_path,
    ]
    print("+", " ".join(argv), flush=True)
    return subprocess.run(
        argv, env=child_env(), capture_output=True, text=True
    )


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("version") != "repro.verify/v1":
        fail(f"unexpected report version in {path}: {report.get('version')!r}")
    return report


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    with tempfile.TemporaryDirectory(prefix="verify-smoke-") as scratch:
        first_path = os.path.join(scratch, "run1.json")
        second_path = os.path.join(scratch, "run2.json")
        mutated_path = os.path.join(scratch, "mutated.json")

        # 1. Clean run: zero mismatches, exit 0.
        first = run_verify("run", first_path, seed)
        if first.returncode != 0:
            fail(
                f"clean `verify run` exited {first.returncode}\n"
                f"stdout:\n{first.stdout}\nstderr:\n{first.stderr}"
            )
        report = load_report(first_path)
        summary = report["summary"]
        if summary["mismatch"]:
            fail(f"clean run reported mismatches: {summary}")
        if not summary["match"]:
            fail(f"clean run matched nothing (all skipped?): {summary}")
        for entry in report["checks"]:
            if entry["verdict"] == "skipped" and not entry["reason"]:
                fail(f"check {entry['name']} skipped without a reason")
        print(
            f"clean run: {summary['match']} match, "
            f"{summary['skipped']} skipped"
        )

        # 2. Determinism: a second run with the same seed is identical.
        second = run_verify("run", second_path, seed)
        if second.returncode != 0:
            fail(f"second `verify run` exited {second.returncode}")
        first_text = json.dumps(load_report(first_path), sort_keys=True)
        second_text = json.dumps(load_report(second_path), sort_keys=True)
        if first_text != second_text:
            fail(
                "determinism contract broken: two runs with the same seed "
                "produced different reports"
            )
        print("determinism: run1 == run2 byte-for-byte")

        # 3. Mutation: the harness must detect injected divergence.
        mutated = run_verify("mutate", mutated_path, seed)
        if mutated.returncode == 0:
            fail(
                "`verify mutate` exited 0 — the harness failed to detect "
                "an injected perturbation (vacuous checks?)\n"
                f"stdout:\n{mutated.stdout}"
            )
        mutated_report = load_report(mutated_path)
        if not mutated_report["mutated"]:
            fail("mutation report not flagged as mutated")
        survivors = [
            entry["name"]
            for entry in mutated_report["checks"]
            if entry["verdict"] == "match"
        ]
        if survivors:
            fail(
                f"checks survived mutation (not actually comparing?): "
                f"{', '.join(survivors)}"
            )
        flipped = mutated_report["summary"]["mismatch"]
        print(f"mutation: {flipped} check(s) flipped to mismatch, exit "
              f"{mutated.returncode}")

        # Leave the clean report for artifact upload.
        with open(first_path, encoding="utf-8") as handle:
            payload = handle.read()
    with open(VERIFY_OUT, "w", encoding="utf-8") as handle:
        handle.write(payload)
    print(f"report written to {VERIFY_OUT}")
    print("verify smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
