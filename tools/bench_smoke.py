#!/usr/bin/env python
"""End-to-end smoke test for the ``repro.bench`` subsystem.

Exercises the full CLI surface as real subprocesses:

* runs the quick suite twice (3 repeats each) and checks the
  **determinism contract** — the two reports are identical after
  dropping the timing fields (same workload list, seeds, counters);
* validates both reports against the ``repro.bench/v1`` schema;
* ``bench compare`` run1-vs-run2 must report **zero** regressed
  workloads (an unchanged tree never regresses against itself).  A
  transient burst of machine contention *between* the two runs can fake
  a sustained shift no within-run statistic can see, so this check
  allows one retry with a fresh second run; only a persistent
  disagreement fails;
* ``bench gate`` run1-vs-run2 with ``--strict-env`` (same machine, same
  env fingerprint) must exit 0;
* ``bench gate`` against the committed baseline
  ``benchmarks/baselines/BENCH_quick.json`` at a relaxed 25% threshold
  must exit 0 — on a different machine this holds via the
  environment-mismatch warn-and-pass rule, on the baseline's machine via
  the threshold itself.

The first run's report is left at ``BENCH_quick.json`` (override with
``BENCH_OUT``) for CI artifact upload.

Run from the repo root::

    PYTHONPATH=src python tools/bench_smoke.py

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

SUITE = "quick"
REPEATS = "3"
BENCH_OUT = os.environ.get("BENCH_OUT", "BENCH_quick.json")
BASELINE = os.path.join(REPO_ROOT, "benchmarks", "baselines", "BENCH_quick.json")
GATE_THRESHOLD = "25%"
#: Fields that legitimately differ between two runs of the same tree.
TIMING_FIELDS = ("samples_seconds", "stats")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def bench(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "bench", *args],
        capture_output=True,
        text=True,
        env=child_env(),
        cwd=REPO_ROOT,
    )


def run_suite(out_path: str) -> dict:
    process = bench(
        "run", "--suite", SUITE, "--repeats", REPEATS, "--out", out_path
    )
    if process.returncode != 0:
        fail(f"bench run exited {process.returncode}:\n{process.stderr}")
    with open(out_path, encoding="utf-8") as handle:
        return json.load(handle)


def strip_timings(report: dict) -> dict:
    stripped = json.loads(json.dumps(report))
    for entry in stripped.get("workloads", {}).values():
        for field in TIMING_FIELDS:
            entry.pop(field, None)
    return stripped


def main() -> int:
    sys.path.insert(0, SRC)
    from repro.bench import schema

    with tempfile.TemporaryDirectory(prefix="bench-smoke-") as tmp:
        first_path = os.path.join(REPO_ROOT, BENCH_OUT)
        second_path = os.path.join(tmp, "BENCH_quick_run2.json")

        first = run_suite(first_path)
        print(f"run 1: {len(first['workloads'])} workloads -> {BENCH_OUT}")

        summary = None
        for attempt in (1, 2):
            second = run_suite(second_path)
            print(f"run 2 (attempt {attempt}): {len(second['workloads'])} workloads")

            for name, report in (("run 1", first), ("run 2", second)):
                errors = schema.schema_errors(report)
                if errors:
                    fail(f"{name} report is schema-invalid: {errors}")

            if strip_timings(first) != strip_timings(second):
                fail(
                    "determinism contract broken: reports differ beyond "
                    f"{TIMING_FIELDS} (workload list, seeds, or counters "
                    "drifted)"
                )

            process = bench("compare", first_path, second_path, "--json")
            if process.returncode != 0:
                fail(
                    f"bench compare exited {process.returncode}:\n"
                    f"{process.stderr}"
                )
            summary = json.loads(process.stdout)["summary"]
            if summary["regressed"] == 0:
                break
            if attempt == 1:
                print(
                    f"WARN: same-tree compare reported regressions "
                    f"({summary}) — transient contention between runs; "
                    "retrying with a fresh second run",
                    file=sys.stderr,
                )
        else:
            fail(
                "same-tree comparison reported regressions twice: "
                f"{summary} — the noise model is broken or the machine "
                "is pathologically unstable"
            )
        print("both reports schema-valid")
        print("determinism contract holds (only timings differ)")
        print(f"same-tree compare: {summary}")

        process = bench(
            "gate",
            "--against", first_path,
            "--candidate", second_path,
            "--strict-env",
        )
        if process.returncode != 0:
            fail(
                f"same-tree strict-env gate exited {process.returncode}:\n"
                f"{process.stdout}\n{process.stderr}"
            )
        print("same-tree strict-env gate: exit 0")

        if not os.path.exists(BASELINE):
            fail(f"committed baseline missing: {BASELINE}")
        process = bench(
            "gate",
            "--against", BASELINE,
            "--candidate", first_path,
            "--threshold", GATE_THRESHOLD,
        )
        if process.returncode != 0:
            fail(
                f"gate vs committed baseline exited {process.returncode}:\n"
                f"{process.stdout}\n{process.stderr}"
            )
        print(f"gate vs committed baseline (threshold {GATE_THRESHOLD}): exit 0")

    print("bench smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
