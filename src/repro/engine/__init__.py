"""Unified execution engine (see ``docs/ARCHITECTURE.md``).

* :mod:`repro.engine.registry` — backends resolved by name or instance.
* :mod:`repro.engine.cache` — compiled-circuit cache with angle rebinding.
* :mod:`repro.engine.core` — :class:`ExecutionEngine`: the single path
  from "algorithm wants a distribution for parameters" to "backend
  returns counts/probabilities", with batching and deterministic
  process-pool fan-out.
"""

from repro.engine.cache import CircuitCache, CompiledCircuit
from repro.engine.core import (
    AnsatzSpec,
    EngineDefaults,
    ExecutionEngine,
    TransitionChainSpec,
    configure_defaults,
    ensure_engine,
    get_defaults,
)
from repro.engine.registry import (
    EXACT_ALIASES,
    EngineError,
    available_backends,
    register_backend,
    resolve_backend,
)

__all__ = [
    "AnsatzSpec",
    "CircuitCache",
    "CompiledCircuit",
    "EngineDefaults",
    "EngineError",
    "EXACT_ALIASES",
    "ExecutionEngine",
    "TransitionChainSpec",
    "available_backends",
    "configure_defaults",
    "ensure_engine",
    "get_defaults",
    "register_backend",
    "resolve_backend",
]
