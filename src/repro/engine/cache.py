"""Compiled-circuit cache: synthesize once, rebind angles per evaluation.

A COBYLA run evaluates the same circuit *structure* hundreds of times with
different rotation angles.  Re-synthesizing the segment/ansatz circuit on
every evaluation (ladder construction, control-pattern derivation, layer
unrolling) dominates the classical cost of small-instance training, and
all of it is parameter-independent.  The cache compiles a builder once
into a :class:`CompiledCircuit` — a gate-list template plus, for every
parameterised angle slot, either a constant or a ``(parameter index,
coefficient)`` linear term — and every later evaluation rebinds the
recorded slots in place of a full rebuild.

Binding specs are discovered *numerically*: the builder is invoked at
three fixed pseudo-random probe vectors and every angle slot is classified
as constant (identical across probes) or as ``angle = c * theta[i]`` — the
only form the library's synthesis routines produce (``RX(2t)``,
``RZ(-2*gamma*h)``, HEA's identity binding, ...).  A builder whose gate
structure or angle dependence does not fit is marked non-bindable and
``bind`` simply calls the builder again — always correct, merely slower.
Classification outcomes are reported through the ``engine.cache.*``
telemetry counters (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro import telemetry

#: Fixed probe seeds; three probes over-determine the one-term linear model
#: enough to reject anything that is not exactly ``c * theta[i]``.
_PROBE_SEEDS = (0xA11CE, 0xB0B0, 0xC0FFEE)
_TOLERANCE = 1e-9

CircuitBuilder = Callable[[np.ndarray], QuantumCircuit]

#: One angle slot: ``("const", value)`` or ``("lin", parameter index, c)``.
_Slot = Tuple


def _probe_vectors(num_parameters: int) -> List[np.ndarray]:
    """Distinct nonzero probe vectors, fixed across processes and runs."""
    return [
        np.random.default_rng(seed).uniform(0.25, 1.75, num_parameters)
        for seed in _PROBE_SEEDS
    ]


def _classify_slot(
    values: Sequence[float], probes: Sequence[np.ndarray]
) -> Optional[_Slot]:
    """Fit one angle slot to ``const`` or ``c * theta[i]`` across probes."""
    v0 = values[0]
    if all(abs(v - v0) <= _TOLERANCE * (1.0 + abs(v0)) for v in values[1:]):
        return ("const", v0)
    for index in range(probes[0].shape[0]):
        coefficient = v0 / probes[0][index]
        if all(
            abs(coefficient * probe[index] - value)
            <= _TOLERANCE * (1.0 + abs(value))
            for probe, value in zip(probes[1:], values[1:])
        ):
            return ("lin", index, coefficient)
    return None


class CompiledCircuit:
    """A circuit structure compiled for fast parameter rebinding."""

    def __init__(
        self, key: Hashable, build: CircuitBuilder, num_parameters: int
    ) -> None:
        self.key = key
        self.num_parameters = num_parameters
        self._build = build
        self._template: Optional[QuantumCircuit] = None
        #: ``(instruction index, per-slot specs)`` for parameterised gates.
        self._bindings: List[Tuple[int, List[_Slot]]] = []
        self.bindable = False
        self._compile()

    # ------------------------------------------------------------------
    def _compile(self) -> None:
        try:
            if self.num_parameters == 0:
                self._template = self._build(np.zeros(0))
                self.bindable = True
                return
            probes = _probe_vectors(self.num_parameters)
            circuits = [self._build(probe) for probe in probes]
        except Exception:
            # A builder that cannot even be probed stays rebuild-on-bind.
            telemetry.add("engine.cache.unbindable")
            return
        reference = circuits[0]
        if any(len(c) != len(reference) for c in circuits[1:]):
            telemetry.add("engine.cache.unbindable")
            return
        bindings: List[Tuple[int, List[_Slot]]] = []
        for position, group in enumerate(zip(*circuits)):
            first = group[0]
            if any(
                other.name != first.name
                or other.qubits != first.qubits
                or other.ctrl_state != first.ctrl_state
                or len(other.params) != len(first.params)
                for other in group[1:]
            ):
                telemetry.add("engine.cache.unbindable")
                return
            if not first.params:
                continue
            slots: List[_Slot] = []
            for slot in range(len(first.params)):
                spec = _classify_slot(
                    [instr.params[slot] for instr in group], probes
                )
                if spec is None:
                    telemetry.add("engine.cache.unbindable")
                    return
                slots.append(spec)
            bindings.append((position, slots))
        self._template = reference
        self._bindings = bindings
        self.bindable = True

    # ------------------------------------------------------------------
    def bind(self, parameters: Sequence[float]) -> QuantumCircuit:
        """The builder's circuit at ``parameters``, via rebinding if possible."""
        values = np.asarray(parameters, dtype=float)
        if values.shape[0] != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {values.shape[0]}"
            )
        if not self.bindable:
            return self._build(values)
        bound = self._template.copy()
        instructions = bound._instructions
        for position, slots in self._bindings:
            instr = instructions[position]
            params = tuple(
                spec[1] if spec[0] == "const" else spec[2] * values[spec[1]]
                for spec in slots
            )
            instructions[position] = replace(instr, params=params)
        return bound


class CircuitCache:
    """LRU cache of :class:`CompiledCircuit` templates keyed on structure.

    Thread-safe: lookups, insertions, and evictions take an internal lock,
    so one cache instance can be shared across engines living on different
    threads (the :mod:`repro.service` worker pool shares a single cache to
    amortize synthesis across identical submissions).  A compiled template
    is immutable after construction — :meth:`CompiledCircuit.bind` copies
    before mutating — so handing the same entry to many threads is safe.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, CompiledCircuit]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self, key: Hashable, build: CircuitBuilder, num_parameters: int
    ) -> CompiledCircuit:
        """Fetch the compiled template for ``key``, compiling on first use."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                telemetry.add("engine.cache.hits")
                return entry
            self.misses += 1
            telemetry.add("engine.cache.misses")
            entry = CompiledCircuit(key, build, num_parameters)
            self._entries[key] = entry
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                telemetry.add("engine.cache.evictions")
            return entry

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
