"""The unified execution engine.

:class:`ExecutionEngine` is the single path from "algorithm wants a
distribution for parameters theta" to "backend returns counts /
probabilities".  It owns:

* the **backend** (resolved by name through the registry, or an instance);
  ``backend=None`` selects the exact fast paths (sparse transition
  evolution for Rasengan, dense statevector for the baselines);
* the **compiled-circuit cache** (:mod:`repro.engine.cache`): segment and
  ansatz circuits are synthesized once per structure and rebound per
  evaluation;
* **batched evaluation** (:meth:`run_batch`) for optimizer restarts and
  figure sweeps;
* the opt-in **process-pool fan-out** (:meth:`map`) for independent work
  units — noisy Monte-Carlo trajectories and multi-start restarts — with
  per-worker child seeds spawned parent-side from one root seed so a
  parallel run is bit-identical to a serial one.

Determinism contract: every random draw the engine makes comes from its
:class:`~repro.simulators.seeding.SeedBank`; fan-out work units receive
pre-spawned ``SeedSequence`` children, never shared generator state.
Telemetry recorded *inside* pool workers runs under a per-task child
collector and ships back with the result as a serialized delta; the
parent stitches the child span trees (tagged with the worker pid) under
the originating ``engine.map`` span and accumulates the counters, so a
parallel run's totals match a serial run (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.core.segmentation import allocate_shots, merge_counts
from repro.core.transition import transition_chain_circuit
from repro.engine.cache import CircuitCache, CompiledCircuit
from repro.engine.registry import BackendSpec, resolve_backend
from repro.circuits.circuit import QuantumCircuit
from repro.linalg.bitvec import int_to_bits
from repro.simulators.sampling import counts_from_probabilities
from repro.simulators.seeding import SeedBank, SeedLike
from repro.simulators.sparsestate import SparseState
from repro.simulators.statevector import StatevectorSimulator
from repro import faults, telemetry

T = TypeVar("T")
R = TypeVar("R")

_UNSET = object()


@dataclass
class EngineDefaults:
    """Process-wide defaults applied when an engine is built without
    explicit ``workers``/``backend``/``cache`` — the hook behind the CLI's
    ``--engine-workers`` and ``--backend`` flags.

    ``cache`` is the shared compiled-circuit cache: when set, every engine
    built without an explicit cache reuses it, so identical circuit
    structures are synthesized once *per process* instead of once per
    engine.  The solve service installs one to amortize compilation across
    jobs (:class:`CircuitCache` is thread-safe); ``None`` keeps the
    historical one-private-cache-per-engine behaviour.
    """

    workers: int = 0
    backend: BackendSpec = None
    cache: Optional[CircuitCache] = None


_DEFAULTS = EngineDefaults()


def configure_defaults(*, workers=_UNSET, backend=_UNSET, cache=_UNSET) -> EngineDefaults:
    """Set process-wide engine defaults; returns the previous defaults."""
    previous = replace(_DEFAULTS)
    if workers is not _UNSET:
        _DEFAULTS.workers = int(workers)
    if backend is not _UNSET:
        _DEFAULTS.backend = backend
    if cache is not _UNSET:
        _DEFAULTS.cache = cache
    return previous


def get_defaults() -> EngineDefaults:
    """A copy of the current process-wide defaults."""
    return replace(_DEFAULTS)


# ----------------------------------------------------------------------
# Work descriptions
# ----------------------------------------------------------------------
class TransitionChainSpec:
    """Structural description of a Rasengan transition chain.

    Holds the basis, the pruned schedule, and the register width; a
    segment (a slice of schedule positions) maps to a cache key and a
    circuit builder whose parameters are the segment's evolution times.
    """

    def __init__(
        self, basis: np.ndarray, schedule: Sequence[int], num_qubits: int
    ) -> None:
        self.basis = np.asarray(basis)
        self.schedule = tuple(int(index) for index in schedule)
        self.num_qubits = int(num_qubits)
        self._basis_token = (self.basis.shape, self.basis.tobytes())

    def segment_key(self, positions: Sequence[int]):
        rows = tuple(self.schedule[position] for position in positions)
        return ("chain", self.num_qubits, rows, self._basis_token)

    def segment_builder(self, positions: Sequence[int]):
        rows = [self.schedule[position] for position in positions]
        basis, num_qubits = self.basis, self.num_qubits

        def build(times: np.ndarray) -> QuantumCircuit:
            return transition_chain_circuit(basis, rows, list(times), num_qubits)

        return build


class AnsatzSpec:
    """Structural description of a baseline ansatz.

    Args:
        key: hashable cache key, unique per circuit structure.
        num_parameters: variational parameter count.
        build: ``parameters -> QuantumCircuit`` (gate-level ansatz).
        statevector: optional ``parameters -> np.ndarray`` exact fast path
            used instead of simulating the built circuit in exact mode.
    """

    def __init__(
        self,
        key,
        num_parameters: int,
        build: Callable[[np.ndarray], QuantumCircuit],
        statevector: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        self.key = key
        self.num_parameters = int(num_parameters)
        self.build = build
        self.statevector = statevector


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ExecutionEngine:
    """Cached, batched, optionally parallel circuit execution.

    Args:
        backend: backend name, instance, or ``None``/exact alias for the
            exact fast paths.  ``None`` falls back to the process-wide
            default set by :func:`configure_defaults`.
        seed: root seed; all engine randomness (shot sampling, backend
            seeding, fan-out child seeds) derives from it.
        workers: process-pool width for :meth:`map`; ``0``/``1`` = serial.
            ``None`` falls back to the process-wide default.
        cache_size: LRU capacity of the compiled-circuit cache (ignored
            when an explicit or default shared ``cache`` is in effect).
        cache: compiled-circuit cache to use; ``None`` falls back to the
            process-wide shared cache from :func:`configure_defaults` if
            one is installed, else a private per-engine cache.  Sharing a
            cache across engines never changes results — compiled
            templates are pure functions of the cache key — it only skips
            repeat synthesis.
    """

    def __init__(
        self,
        backend: BackendSpec = None,
        *,
        seed: SeedLike = None,
        workers: Optional[int] = None,
        cache_size: int = 256,
        cache: Optional[CircuitCache] = None,
    ) -> None:
        if backend is None:
            backend = _DEFAULTS.backend
        if workers is None:
            workers = _DEFAULTS.workers
        if cache is None:
            cache = _DEFAULTS.cache
        self.workers = int(workers)
        self.cache_size = int(cache_size)
        self._cache: Optional[CircuitCache] = (
            cache if cache is not None else CircuitCache(cache_size)
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._bank = SeedBank(seed)
        self._rng = self._bank.generator()
        self.backend = resolve_backend(backend, seed=self._bank.child())
        if self.backend is not None:
            self.backend.set_mapper(self.map)

    # ------------------------------------------------------------------
    # Introspection / seeding
    # ------------------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True when running the exact fast paths (no backend object)."""
        return self.backend is None

    @property
    def rng(self) -> np.random.Generator:
        """The engine's own generator (shot sampling, measurements)."""
        return self._rng

    @property
    def cache(self) -> CircuitCache:
        if self._cache is None:
            self._cache = CircuitCache(self.cache_size)
        return self._cache

    def reseed(self, seed: SeedLike) -> None:
        """Rebuild the whole seed tree (engine RNG + backend) from ``seed``.

        Fan-out workers call this with their pre-spawned child sequence so
        worker-local randomness is a pure function of the root seed.
        """
        self._bank = SeedBank(seed)
        self._rng = self._bank.generator()
        if self.backend is not None:
            self.backend.reseed(self._bank.child())

    def spawn_seeds(self, count: int) -> List[np.random.SeedSequence]:
        """Deterministic child seeds for ``count`` independent work units."""
        return self._bank.spawn(count)

    # ------------------------------------------------------------------
    # Compiled circuits
    # ------------------------------------------------------------------
    def segment_circuit(
        self,
        chain: TransitionChainSpec,
        positions: Sequence[int],
        times: Sequence[float],
    ) -> QuantumCircuit:
        """Bound circuit of one chain segment, via the compiled cache."""
        positions = tuple(positions)
        template = self.cache.get(
            chain.segment_key(positions),
            chain.segment_builder(positions),
            len(positions),
        )
        return template.bind(times)

    def ansatz_circuit(
        self, spec: AnsatzSpec, parameters: Sequence[float]
    ) -> QuantumCircuit:
        """Bound ansatz circuit, via the compiled cache."""
        template = self.cache.get(spec.key, spec.build, spec.num_parameters)
        return template.bind(parameters)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_segment(
        self,
        chain: TransitionChainSpec,
        positions: Sequence[int],
        times: Sequence[float],
        distribution: Dict[int, float],
        shots: Optional[int],
        *,
        segment_index: int = 0,
    ) -> Dict[int, float]:
        """Execute one chain segment seeded from ``distribution``.

        Exact mode evolves a sparse state through the transition operators
        (optionally sampling ``shots`` measurements); backend mode binds
        the cached segment circuit once and runs it per input state with
        proportional shot allocation.  Returns the segment's raw
        (unpurified) output distribution.
        """
        telemetry.add("engine.executions")
        faults.point("engine.execute")
        if self.backend is None:
            return self._run_segment_sparse(
                chain, positions, times, distribution, shots, segment_index
            )
        return self._run_segment_backend(
            chain, positions, times, distribution, shots, segment_index
        )

    def _run_segment_sparse(self, chain, positions, times, distribution, shots, index):
        with telemetry.span(
            "segment", index=index, engine="sparse", transitions=len(positions)
        ):
            state = SparseState.from_distribution(chain.num_qubits, distribution)
            with telemetry.span("sparse.evolve") as evolve_span:
                for position, time in zip(positions, times):
                    state.apply_transition(
                        chain.basis[chain.schedule[position]], time
                    )
                evolve_span.set(amplitudes=len(state.amplitudes))
            telemetry.add("circuits.executed")
            raw = state.probabilities()
            if shots is not None:
                telemetry.add("shots.total", shots)
                counts = counts_from_probabilities(raw, shots, self._rng)
                raw = {key: count / shots for key, count in counts.items()}
            return raw

    def _run_segment_backend(self, chain, positions, times, distribution, shots, index):
        with telemetry.span(
            "segment",
            index=index,
            engine=self.backend.name,
            transitions=len(positions),
        ):
            circuit = self.segment_circuit(chain, positions, times)
            allocation = allocate_shots(distribution, shots)
            outputs = []
            for key, state_shots in allocation.items():
                telemetry.add("circuits.executed")
                telemetry.add("shots.total", state_shots)
                counts = self.backend.run(
                    circuit,
                    state_shots,
                    initial_bits=int_to_bits(key, chain.num_qubits),
                )
                outputs.append(counts)
            merged = merge_counts(outputs)
            total = sum(merged.values())
            return {key: count / total for key, count in merged.items()}

    def sample_ansatz(
        self,
        spec: AnsatzSpec,
        parameters: Sequence[float],
        shots: Optional[int],
    ) -> Dict[int, float]:
        """Output distribution of an ansatz at ``parameters``.

        Backend mode runs the cached bound circuit; exact mode uses the
        spec's dense fast path (or simulates the bound circuit) and
        samples only when ``shots`` is given.
        """
        telemetry.add("engine.executions")
        faults.point("engine.execute")
        telemetry.add("circuits.executed")
        if self.backend is not None:
            circuit = self.ansatz_circuit(spec, parameters)
            shots = shots or 1024
            telemetry.add("shots.total", shots)
            counts = self.backend.run(circuit, shots)
            total = sum(counts.values())
            return {key: count / total for key, count in counts.items()}
        if spec.statevector is not None:
            state = spec.statevector(np.asarray(parameters, dtype=float))
            probabilities = np.abs(state) ** 2
        else:
            circuit = self.ansatz_circuit(spec, parameters)
            probabilities = StatevectorSimulator().probabilities(circuit)
        if shots is None:
            return {
                int(key): float(p)
                for key, p in enumerate(probabilities)
                if p > 1e-12
            }
        telemetry.add("shots.total", shots)
        counts = counts_from_probabilities(probabilities, shots, self._rng)
        return {key: count / shots for key, count in counts.items()}

    def sample_distribution(
        self, probabilities: np.ndarray, shots: int
    ) -> Dict[int, int]:
        """Measure ``shots`` outcomes from an explicit distribution.

        The measurement path for algorithms that evolve state themselves
        (Grover adaptive search, the quantum annealer).
        """
        telemetry.add("engine.executions")
        faults.point("engine.execute")
        telemetry.add("circuits.executed")
        telemetry.add("shots.total", shots)
        return counts_from_probabilities(probabilities, shots, self._rng)

    # ------------------------------------------------------------------
    # Batching and fan-out
    # ------------------------------------------------------------------
    def run_batch(
        self,
        evaluate: Callable[[T], R],
        batch: Iterable[T],
        *,
        label: str = "batch",
    ) -> List[R]:
        """Evaluate a batch of work items (e.g. parameter vectors) in order.

        Sequential and in-process by construction — ``evaluate`` may be a
        closure over live solver state; use :meth:`map` for process-pool
        fan-out of picklable work.
        """
        items = list(batch)
        with telemetry.span("engine.batch", label=label, size=len(items)):
            telemetry.add("engine.batch.calls")
            telemetry.add("engine.batch.items", len(items))
            return [evaluate(item) for item in items]

    def map(
        self,
        fn: Callable[[T], R],
        payloads: Iterable[T],
        *,
        label: str = "map",
    ) -> List[R]:
        """Order-preserving map over independent work units.

        Serial when ``workers <= 1``; otherwise fans out over a lazily
        created process pool.  ``fn`` and the payloads must be picklable
        (module-level function + plain-data payloads).

        When telemetry is active, each pool task runs under a child
        collector and returns ``(result, delta)``; the deltas are merged
        back here — counters accumulate as if the work had run serially,
        and the child span trees are stitched under this call's
        ``engine.map`` span (tagged ``worker_pid``/``task_index``), so a
        parallel run yields one coherent trace instead of losing the
        spans in the worker processes.
        """
        items = list(payloads)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        with telemetry.span(
            "engine.map", label=label, tasks=len(items), workers=self.workers
        ) as map_span:
            telemetry.add("engine.parallel.tasks", len(items))
            collector = telemetry.active()
            if collector is None:
                return list(pool.map(fn, items))
            parent = map_span if isinstance(map_span, telemetry.Span) else None
            tasks = [(fn, item, index) for index, item in enumerate(items)]
            results: List[R] = []
            for result, delta in pool.map(_run_traced, tasks):
                collector.merge(delta, parent=parent)
                results.append(result)
            return results

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut down the process pool (no-op when serial)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pickling (fan-out payloads may embed the engine via a solver)
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        # The pool is process-local and the cache holds unpicklable
        # builder closures; both rebuild lazily.  Unpickled engines run
        # serially — pool workers must never spawn nested pools.
        state["_pool"] = None
        state["_cache"] = None
        state["workers"] = 0
        return state


def _run_traced(task):
    """Pool-worker wrapper: run one work unit under a child collector.

    Returns ``(result, delta)`` where ``delta`` is the child collector's
    serialized telemetry (:meth:`TelemetryCollector.to_delta`).  Root
    spans are stamped with the worker pid and the task's fan-out index
    so the parent-side stitch keeps per-worker attribution.  The child
    session shadows any collector inherited across ``fork``, so worker
    telemetry never leaks into an unobservable forked copy.
    """
    fn, item, index = task
    collector = telemetry.TelemetryCollector()
    with telemetry.session(collector):
        result = fn(item)
    pid = os.getpid()
    for root in collector.roots:
        root.attributes.setdefault("worker_pid", pid)
        root.attributes.setdefault("task_index", index)
    return result, collector.to_delta()


def ensure_engine(
    engine: Optional[ExecutionEngine] = None,
    *,
    backend: BackendSpec = None,
    seed: SeedLike = None,
    workers: Optional[int] = None,
) -> ExecutionEngine:
    """Return ``engine`` if given, else build one from the arguments."""
    if engine is not None:
        return engine
    return ExecutionEngine(backend, seed=seed, workers=workers)
