"""Backend registry: resolve execution backends by name or instance.

The engine accepts either a :class:`~repro.simulators.backends.Backend`
instance (used as-is) or a registered name.  The built-in names cover the
four execution modes the reproduction uses:

=================  ====================================================
name               backend
=================  ====================================================
``exact``          sparse-exact / dense fast path (no backend object;
                   aliases: ``sparse``, ``dense``, ``statevector``)
``ideal``          :class:`IdealBackend` — exact statevector + sampling
``fake_kyiv``      dense Kraus trajectories, IBM-Kyiv error rates
``fake_brisbane``  dense Kraus trajectories, IBM-Brisbane error rates
``noisy``          dense Kraus trajectories, Kyiv-calibrated default model
``sparse_noisy``   sparse Kraus trajectories, Kyiv-calibrated default model
=================  ====================================================

Additional backends register with :func:`register_backend`; every factory
takes ``seed=`` plus arbitrary keyword configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.simulators.backends import (
    Backend,
    IdealBackend,
    KYIV_TWO_QUBIT_ERROR,
    NoisyTrajectoryBackend,
    READOUT_ERROR,
    SINGLE_QUBIT_ERROR,
    fake_brisbane,
    fake_kyiv,
)
from repro.simulators.noise import NoiseModel
from repro.simulators.sparse_noisy import SparseTrajectoryBackend


class EngineError(ReproError):
    """Raised for invalid engine configuration (unknown backend, ...)."""


#: Spellings that mean "no backend object — use the exact fast path".
EXACT_ALIASES = frozenset({"exact", "sparse", "dense", "statevector", "none"})

BackendFactory = Callable[..., Backend]
BackendSpec = Union[None, str, Backend]

_FACTORIES: Dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, *, overwrite: bool = False
) -> None:
    """Register a backend factory under ``name`` (lower-cased)."""
    key = name.lower()
    if key in EXACT_ALIASES:
        raise EngineError(f"{name!r} is reserved for the exact execution mode")
    if key in _FACTORIES and not overwrite:
        raise EngineError(f"backend {name!r} is already registered")
    _FACTORIES[key] = factory


def available_backends() -> Tuple[str, ...]:
    """All resolvable names, exact-mode aliases included."""
    return tuple(sorted(_FACTORIES)) + tuple(sorted(EXACT_ALIASES))


def resolve_backend(
    spec: BackendSpec, *, seed=None, **kwargs
) -> Optional[Backend]:
    """Resolve ``spec`` into a backend instance (or ``None`` = exact mode).

    Args:
        spec: ``None``, an exact-mode alias, a registered name, or an
            already-constructed :class:`Backend` (returned unchanged).
        seed: seed forwarded to the factory for named backends.
        **kwargs: extra factory configuration (e.g. ``max_trajectories``).
    """
    if spec is None:
        return None
    if isinstance(spec, Backend):
        return spec
    if not isinstance(spec, str):
        raise EngineError(
            f"backend spec must be a name or Backend instance, got {type(spec)!r}"
        )
    name = spec.lower()
    if name in EXACT_ALIASES:
        return None
    factory = _FACTORIES.get(name)
    if factory is None:
        raise EngineError(
            f"unknown backend {spec!r}; available: {', '.join(available_backends())}"
        )
    return factory(seed=seed, **kwargs)


def _default_noise_model() -> NoiseModel:
    return NoiseModel.from_error_rates(
        single_qubit_error=SINGLE_QUBIT_ERROR,
        two_qubit_error=KYIV_TWO_QUBIT_ERROR,
        readout_error=READOUT_ERROR,
    )


def _noisy(seed=None, noise_model: Optional[NoiseModel] = None, **kwargs):
    return NoisyTrajectoryBackend(
        noise_model or _default_noise_model(), seed=seed, **kwargs
    )


def _sparse_noisy(seed=None, noise_model: Optional[NoiseModel] = None, **kwargs):
    return SparseTrajectoryBackend(
        noise_model or _default_noise_model(), seed=seed, **kwargs
    )


register_backend("ideal", lambda seed=None, **kwargs: IdealBackend(seed=seed, **kwargs))
register_backend("fake_kyiv", fake_kyiv)
register_backend("fake_brisbane", fake_brisbane)
register_backend("noisy", _noisy)
register_backend("sparse_noisy", _sparse_noisy)
