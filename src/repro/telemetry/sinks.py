"""Telemetry sinks: JSONL export/import and human-readable renderers.

The JSONL format is one JSON object per line:

* ``{"type": "meta", "version": 1, "spans": N, "dropped_spans": D}``
* ``{"type": "span", ...}`` — one per *root* span, children nested
  (``Span.to_dict``), so a trace file stays greppable per top-level
  operation.
* ``{"type": "counter", "name": ..., "value": ...}``
* ``{"type": "histogram", "name": ..., "count": ..., "total": ...,
  "min": ..., "max": ..., "p50": ..., "p90": ..., "p95": ..., "p99":
  ..., "underflow": ..., "buckets": {...}}`` — the log-bucket table
  makes reloaded histograms mergeable and quantile-capable.

:func:`read_jsonl` reconstructs a :class:`TelemetryCollector` from such a
file (round-trip safe), which is what offline analysis notebooks and the
CI smoke job consume; pass ``into=`` to accumulate several trace files
into one collector.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional, Union

from repro.telemetry.core import Histogram, Span, TelemetryCollector

__all__ = ["read_jsonl", "render_summary", "render_tree", "write_jsonl"]

_FORMAT_VERSION = 1


def write_jsonl(
    collector: TelemetryCollector, destination: Union[str, Path, IO[str]]
) -> None:
    """Serialise a collector to JSONL (path or open text stream)."""
    if hasattr(destination, "write"):
        _write_stream(collector, destination)
        return
    with open(destination, "w", encoding="utf-8") as stream:
        _write_stream(collector, stream)


def _write_stream(collector: TelemetryCollector, stream: IO[str]) -> None:
    meta = {
        "type": "meta",
        "version": _FORMAT_VERSION,
        "spans": sum(1 for _ in collector.iter_spans()),
        "dropped_spans": collector.dropped_spans,
    }
    stream.write(json.dumps(meta) + "\n")
    for root in collector.roots:
        record = {"type": "span"}
        record.update(root.to_dict())
        stream.write(json.dumps(record) + "\n")
    for name in sorted(collector.counters):
        record = {"type": "counter", "name": name, "value": collector.counters[name]}
        stream.write(json.dumps(record) + "\n")
    for name in sorted(collector.histograms):
        record = {"type": "histogram", "name": name}
        record.update(collector.histograms[name].to_dict())
        stream.write(json.dumps(record) + "\n")


def read_jsonl(
    source: Union[str, Path, IO[str]],
    into: Optional[TelemetryCollector] = None,
) -> TelemetryCollector:
    """Load a JSONL trace back into an (inactive) collector.

    ``into`` replays the file into an existing collector — replayed
    aggregates *accumulate*: counters add up and histograms merge
    bucket-wise, so loading two trace files into one collector totals
    them instead of silently dropping the first file's aggregates.

    Raises:
        ValueError: on malformed lines or an unsupported format version.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    collector = into if into is not None else TelemetryCollector()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {number}: invalid JSON: {error}") from error
        kind = record.get("type")
        if kind == "meta":
            version = record.get("version")
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"line {number}: unsupported trace version {version!r}"
                )
            collector.dropped_spans += int(record.get("dropped_spans", 0))
        elif kind == "span":
            root = Span.from_dict(record)
            collector.roots.append(root)
            collector._span_count += sum(1 for _ in root.walk())
        elif kind == "counter":
            name = record["name"]
            collector.counters[name] = collector.counters.get(
                name, 0.0
            ) + float(record["value"])
        elif kind == "histogram":
            name = record["name"]
            loaded = Histogram.from_dict(record)
            existing = collector.histograms.get(name)
            if existing is None:
                collector.histograms[name] = loaded
            else:
                existing.merge(loaded)
        else:
            raise ValueError(f"line {number}: unknown record type {kind!r}")
    return collector


# ----------------------------------------------------------------------
# Human-readable renderers
# ----------------------------------------------------------------------
def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attributes(span: Span) -> str:
    if not span.attributes:
        return ""
    parts = [f"{key}={value}" for key, value in span.attributes.items()]
    return "  [" + " ".join(parts) + "]"


def render_tree(
    collector: TelemetryCollector,
    max_children: int = 12,
    max_depth: int = 8,
) -> str:
    """ASCII tree of the span forest with durations and attributes.

    Repetitive fan-out (hundreds of ``segment`` spans inside a training
    loop) is elided after ``max_children`` per node with a ``(+N more)``
    marker so the tree stays readable.
    """
    lines: List[str] = []

    def visit(span: Span, prefix: str, child_prefix: str, depth: int) -> None:
        lines.append(
            f"{prefix}{span.name}  "
            f"{_format_duration(span.duration)}{_format_attributes(span)}"
        )
        if not span.children:
            return
        if depth >= max_depth:
            lines.append(f"{child_prefix}└─ … ({len(span.children)} nested)")
            return
        shown = span.children[:max_children]
        hidden = len(span.children) - len(shown)
        for index, child in enumerate(shown):
            last = index == len(shown) - 1 and hidden == 0
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            visit(
                child,
                child_prefix + connector,
                child_prefix + extension,
                depth + 1,
            )
        if hidden:
            lines.append(f"{child_prefix}└─ … (+{hidden} more)")

    for root in collector.roots:
        visit(root, "", "", 1)
    if collector.dropped_spans:
        lines.append(f"(dropped {collector.dropped_spans} spans over the cap)")
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def render_summary(collector: TelemetryCollector) -> str:
    """Counter and histogram table, one metric per line."""
    lines: List[str] = ["counters:"]
    if collector.counters:
        width = max(len(name) for name in collector.counters)
        for name in sorted(collector.counters):
            value = collector.counters[name]
            rendered = f"{value:g}" if value != int(value) else f"{int(value)}"
            lines.append(f"  {name:<{width}}  {rendered}")
    else:
        lines.append("  (none)")
    lines.append("histograms:")
    if collector.histograms:
        width = max(len(name) for name in collector.histograms)
        for name in sorted(collector.histograms):
            h = collector.histograms[name]
            lines.append(
                f"  {name:<{width}}  count={h.count} mean={h.mean:.2f} "
                f"min={h.minimum if h.count else 0:g} "
                f"max={h.maximum if h.count else 0:g} "
                f"p50={h.p50 if h.count else 0:g} "
                f"p90={h.p90 if h.count else 0:g} "
                f"p99={h.p99 if h.count else 0:g}"
            )
    else:
        lines.append("  (none)")
    return "\n".join(lines)
