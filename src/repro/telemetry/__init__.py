"""repro.telemetry — dependency-free observability for the reproduction.

Three primitives, all behind one global switch:

* **Spans** — hierarchical wall-time tracing.  ``with span("solve"):``
  records start/end times, nesting, and structured attributes.
* **Counters / histograms** — named scalar aggregates (circuit
  executions, total shots, CX gates, sparse-state support sizes, ...).
* **Sinks & exporters** — the in-memory :class:`TelemetryCollector`
  (default, mergeable across processes), a JSONL exporter/loader for
  offline analysis, human-readable tree/summary renderers, Prometheus
  text exposition (:func:`prometheus_text`), and Chrome trace-event
  JSON (:func:`write_chrome_trace`, loadable in Perfetto).

Disabled telemetry is a no-op fast path: every instrumentation call
checks a single module attribute and returns, so the instrumented hot
paths (sparse transitions, statevector gates) cost nothing measurable
when tracing is off.  Typical use::

    from repro import telemetry

    with telemetry.session() as collector:
        RasenganSolver(problem).solve()
    print(telemetry.render_tree(collector))
    print(telemetry.render_summary(collector))
    telemetry.write_jsonl(collector, "trace.jsonl")

Instrumentation conventions (canonical names) are documented in
``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.core import (
    BUCKET_BASE,
    NOOP_SPAN,
    Histogram,
    Span,
    TelemetryCollector,
    active,
    add,
    bucket_bound,
    bucket_index,
    disable,
    enable,
    enabled,
    observe,
    session,
    span,
)
from repro.telemetry.exporters import (
    chrome_trace,
    prometheus_text,
    sanitize_metric_name,
    write_chrome_trace,
)
from repro.telemetry.sinks import (
    read_jsonl,
    render_summary,
    render_tree,
    write_jsonl,
)

__all__ = [
    "BUCKET_BASE",
    "Histogram",
    "NOOP_SPAN",
    "Span",
    "TelemetryCollector",
    "active",
    "add",
    "bucket_bound",
    "bucket_index",
    "chrome_trace",
    "disable",
    "enable",
    "enabled",
    "observe",
    "prometheus_text",
    "read_jsonl",
    "render_summary",
    "render_tree",
    "sanitize_metric_name",
    "session",
    "span",
    "write_chrome_trace",
    "write_jsonl",
]
