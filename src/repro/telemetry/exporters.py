"""Interchange exporters: Prometheus text exposition and Chrome trace JSON.

Two render targets beyond the JSONL/tree sinks:

* :func:`prometheus_text` — the `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_.
  Counter names are sanitized (dots become underscores; metric names must
  match ``[a-zA-Z_:][a-zA-Z0-9_:]*``) and each log-bucketed histogram is
  emitted as the conventional ``_bucket{le="..."}`` / ``_sum`` /
  ``_count`` series with cumulative bucket counts.  This is what the
  service serves on ``GET /metrics``.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format (``"X"`` complete events), loadable in
  `Perfetto <https://ui.perfetto.dev>`_ or ``chrome://tracing``.  Spans
  stitched from pool workers carry a ``worker_pid`` attribute; the
  exporter routes each subtree to that pid so parallel fan-out renders
  as separate process tracks.  The CLI's ``--trace-format chrome`` ends
  here.

Both formats are validated by ``tools/check_trace_outputs.py`` (reused
by the tests and the CI trace-export smoke job).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from repro.telemetry.core import Histogram, Span, TelemetryCollector, bucket_bound

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "sanitize_metric_name",
    "write_chrome_trace",
]

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Make ``name`` a valid Prometheus metric name.

    Dots (the repo's namespace separator) and any other invalid character
    become underscores; a leading digit gets an underscore prefix.
    ``engine.cache.hits`` -> ``engine_cache_hits``.
    """
    sanitized = _INVALID_METRIC_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return format(bound, ".6g")


def _histogram_lines(metric: str, histogram: Histogram) -> List[str]:
    lines = [f"# TYPE {metric} histogram"]
    cumulative = histogram.underflow
    if histogram.underflow:
        lines.append(f'{metric}_bucket{{le="0"}} {cumulative}')
    for index in sorted(histogram.buckets):
        cumulative += histogram.buckets[index]
        lines.append(
            f'{metric}_bucket{{le="{_format_bound(bucket_bound(index))}"}} '
            f"{cumulative}"
        )
    lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
    lines.append(f"{metric}_sum {_format_value(histogram.total)}")
    lines.append(f"{metric}_count {histogram.count}")
    return lines


def prometheus_text(collector: Optional[TelemetryCollector]) -> str:
    """Render a collector as Prometheus text exposition.

    ``None`` (telemetry disabled) renders just the ``telemetry_enabled``
    gauge so scrapers always get a well-formed page.
    """
    lines: List[str] = [
        "# TYPE telemetry_enabled gauge",
        f"telemetry_enabled {0 if collector is None else 1}",
    ]
    if collector is None:
        return "\n".join(lines) + "\n"
    summary_counters = collector.snapshot_counters()
    for name in sorted(summary_counters):
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(summary_counters[name])}")
    for name in sorted(collector.histograms):
        metric = sanitize_metric_name(name)
        lines.extend(_histogram_lines(metric, collector.histograms[name]))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def chrome_trace(collector: TelemetryCollector) -> Dict[str, Any]:
    """The collector's span forest as a Chrome trace-event document.

    Every span becomes one ``"X"`` (complete) event with microsecond
    timestamps relative to the earliest recorded span.  The ``pid`` is
    taken from the nearest ``worker_pid`` span attribute (stamped on
    stitched pool-worker subtrees), so cross-process traces separate into
    per-process tracks in Perfetto; each root gets its own ``tid`` track
    so concurrent roots (service worker threads) never interleave.
    """
    events: List[Dict[str, Any]] = []
    starts = [node.start for node in collector.iter_spans()]
    origin = min(starts) if starts else 0.0

    def visit(node: Span, pid: int, tid: int) -> None:
        pid = int(node.attributes.get("worker_pid", pid) or pid)
        end = node.end if node.end is not None else node.start
        events.append(
            {
                "name": node.name,
                "cat": "repro",
                "ph": "X",
                "ts": (node.start - origin) * 1e6,
                "dur": max(0.0, end - node.start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {
                    key: _json_safe(value)
                    for key, value in node.attributes.items()
                },
            }
        )
        for child in node.children:
            visit(child, pid, tid)

    for index, root in enumerate(collector.roots):
        visit(root, os.getpid(), index + 1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    collector: TelemetryCollector, destination: Union[str, Path, IO[str]]
) -> None:
    """Serialise :func:`chrome_trace` output to a path or text stream."""
    document = chrome_trace(collector)
    if hasattr(destination, "write"):
        json.dump(document, destination)
        return
    with open(destination, "w", encoding="utf-8") as stream:
        json.dump(document, stream)
