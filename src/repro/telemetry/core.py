"""Tracing spans, counters, histograms, and the global telemetry switch.

The design goal is a no-op fast path: all instrumentation funnels through
:func:`span`, :func:`add`, and :func:`observe`, each of which reads one
module-level attribute (``_ACTIVE``) and returns immediately when no
collector is installed.  Instrumented code never needs to guard its calls.

Tracing is thread-aware: the collector keeps one span stack per thread,
so spans opened by concurrent workers (the :mod:`repro.service` worker
pool) nest correctly within their own thread and become additional roots
rather than corrupting another thread's stack.  Counter and histogram
updates are lock-protected; the disabled fast path is unchanged.

Collectors are also *mergeable* across processes: a child process (an
``engine.map`` pool worker) records into its own collector, serialises it
with :meth:`TelemetryCollector.to_delta`, and ships the plain-dict delta
back over the pool's result channel; the parent stitches the child's span
trees under the originating span with :meth:`TelemetryCollector.merge`
and accumulates its counters/histograms, so a parallel run produces one
coherent trace with totals that match a serial run.  Histograms are
log-bucketed for exactly this reason — bucket tables merge losslessly
where a bare mean cannot, and they expose tail quantiles (p50/p90/p99).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "BUCKET_BASE",
    "Histogram",
    "NOOP_SPAN",
    "Span",
    "TelemetryCollector",
    "active",
    "add",
    "bucket_bound",
    "bucket_index",
    "disable",
    "enable",
    "enabled",
    "observe",
    "session",
    "span",
]


@dataclass
class Span:
    """One timed region: name, wall time, attributes, and children."""

    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    end: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes after the span has started; returns self."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            attributes=dict(payload.get("attributes", {})),
            start=float(payload.get("start", 0.0)),
            end=payload.get("end"),
            children=[
                cls.from_dict(child) for child in payload.get("children", [])
            ],
        )


#: Log-bucket growth factor: each bucket's upper bound is ~19% above the
#: previous one (2**0.25), giving <= 19% relative quantile error over a
#: huge dynamic range with a handful of occupied buckets per histogram.
BUCKET_BASE = 2.0 ** 0.25
_LOG_BUCKET_BASE = math.log(BUCKET_BASE)


def bucket_index(value: float) -> int:
    """Index of the log bucket covering a positive ``value``.

    Bucket ``i`` covers ``(BUCKET_BASE**(i-1), BUCKET_BASE**i]``, so the
    returned index's :func:`bucket_bound` is an upper bound on ``value``.
    """
    return math.ceil(math.log(value) / _LOG_BUCKET_BASE - 1e-12)


def bucket_bound(index: int) -> float:
    """Upper bound of log bucket ``index``."""
    return BUCKET_BASE ** index


@dataclass
class Histogram:
    """Mergeable log-bucketed aggregate of observed values.

    Keeps the streaming count/total/min/max of the original telemetry
    layer and additionally buckets positive values into log-spaced bins
    (non-positive values land in :attr:`underflow`), which is what makes
    two histograms mergeable across processes and tail quantiles
    (:meth:`quantile`, :attr:`p50`/:attr:`p90`/:attr:`p99`) answerable.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    #: log-bucket index -> observation count (positive values only).
    buckets: Dict[int, int] = field(default_factory=dict)
    #: observations <= 0 (upper bound 0.0 in exports).
    underflow: int = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self.underflow += 1
        else:
            index = bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact for count/total/
        min/max and bucket tables; the basis of cross-process merging)."""
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.minimum < self.minimum:
                self.minimum = other.minimum
            if other.maximum > self.maximum:
                self.maximum = other.maximum
        self.underflow += other.underflow
        for index, bucket_count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _clamp(self, value: float) -> float:
        return min(max(value, self.minimum), self.maximum)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket table.

        Returns the upper bound of the bucket holding the rank-``q``
        observation, clamped to the observed [min, max] (so a single
        observation reports itself exactly).  Histograms loaded from
        legacy payloads without buckets degrade to linear interpolation
        between min and max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        observed = self.underflow + sum(self.buckets.values())
        if observed == 0:
            return self.minimum + q * (self.maximum - self.minimum)
        rank = max(1, math.ceil(q * observed))
        cumulative = self.underflow
        if rank <= cumulative:
            return self._clamp(0.0)
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                return self._clamp(bucket_bound(index))
        return self.maximum

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "p50": self.p50 if self.count else 0.0,
            "p90": self.p90 if self.count else 0.0,
            "p95": self.p95 if self.count else 0.0,
            "p99": self.p99 if self.count else 0.0,
            "underflow": self.underflow,
            "buckets": {
                str(index): count for index, count in sorted(self.buckets.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`to_dict` output.

        Back-compatible: payloads written before buckets existed (only
        count/total/min/max) load fine and degrade to interpolated
        quantiles.
        """
        histogram = cls(
            count=int(payload.get("count", 0)),
            total=float(payload.get("total", 0.0)),
        )
        if histogram.count:
            histogram.minimum = float(payload["min"])
            histogram.maximum = float(payload["max"])
        histogram.underflow = int(payload.get("underflow", 0))
        histogram.buckets = {
            int(index): int(count)
            for index, count in payload.get("buckets", {}).items()
        }
        return histogram


class TelemetryCollector:
    """In-memory sink: span forest + counter/histogram tables.

    Args:
        max_spans: hard cap on recorded spans.  Deeply iterated solver
            loops can open thousands of segment spans; beyond the cap new
            spans are dropped (counted in :attr:`dropped_spans`) while
            counters/histograms keep aggregating, so long runs degrade to
            metrics-only instead of exhausting memory.
        clock: timestamp source (seconds); injectable for tests.

    Span stacks are per-thread: a span opened on a worker thread nests
    under that thread's innermost open span (or starts a new root), never
    under another thread's.  Counters, histograms, and the span budget
    are guarded by one lock so concurrent workers cannot lose updates.
    """

    def __init__(
        self,
        max_spans: int = 100_000,
        clock=time.perf_counter,
    ) -> None:
        self.roots: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._clock = clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self._span_count = 0

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's own span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def start_span(self, name: str, attributes: Dict[str, Any]) -> Optional[Span]:
        """Open a child of the current span (or a new root); may drop."""
        with self._lock:
            if self._span_count >= self.max_spans:
                self.dropped_spans += 1
                return None
            self._span_count += 1
        node = Span(name=name, attributes=attributes, start=self._clock())
        stack = self._stack
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self.roots.append(node)
        stack.append(node)
        return node

    def end_span(self, node: Span) -> None:
        node.end = self._clock()
        # Pop through any descendants left open by non-local exits.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is node:
                break

    def current_span(self) -> Optional[Span]:
        """Innermost open span on the calling thread, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for root in self.roots:
            yield from root.walk()

    def span_names(self) -> List[str]:
        """Names of all recorded spans, depth-first."""
        return [node.name for node in self.iter_spans()]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def add(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram:
        """One histogram by name (a fresh empty one when never observed)."""
        with self._lock:
            return self.histograms.get(name) or Histogram()

    def snapshot_counters(self) -> Dict[str, float]:
        """Copy of the counter table (for before/after deltas)."""
        with self._lock:
            return dict(self.counters)

    def summary(self) -> Dict[str, Any]:
        """Plain-dict rollup of counters and histogram aggregates."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in self.histograms.items()
                },
                "spans": self._span_count,
                "dropped_spans": self.dropped_spans,
            }

    # ------------------------------------------------------------------
    # Cross-process merging
    # ------------------------------------------------------------------
    def to_delta(self) -> Dict[str, Any]:
        """Serializable snapshot of everything this collector recorded.

        The wire format for cross-process telemetry: a pool worker
        records into a private collector, returns ``to_delta()`` (plain
        dicts — picklable and JSON-safe), and the parent folds it in with
        :meth:`merge`.
        """
        with self._lock:
            return {
                "spans": [root.to_dict() for root in self.roots],
                "counters": dict(self.counters),
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in self.histograms.items()
                },
                "dropped_spans": self.dropped_spans,
            }

    def merge(
        self,
        delta: "TelemetryCollector | Dict[str, Any]",
        *,
        parent: Optional[Span] = None,
    ) -> None:
        """Fold another collector (or a :meth:`to_delta` dict) into this one.

        Counters accumulate, histograms merge bucket-wise, and the
        delta's span trees are stitched under ``parent`` (e.g. the
        ``engine.map`` span that fanned the work out) — or appended as
        new roots when ``parent`` is ``None``.  Counter totals after a
        merge match what a single-collector (serial) run would have
        recorded.
        """
        if isinstance(delta, TelemetryCollector):
            delta = delta.to_delta()
        spans = [Span.from_dict(payload) for payload in delta.get("spans", [])]
        with self._lock:
            for name, value in delta.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            for name, payload in delta.get("histograms", {}).items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    self.histograms[name] = Histogram.from_dict(payload)
                else:
                    histogram.merge(Histogram.from_dict(payload))
            self.dropped_spans += int(delta.get("dropped_spans", 0))
            self._span_count += sum(
                1 for root in spans for _ in root.walk()
            )
            if parent is None:
                self.roots.extend(spans)
        if parent is not None:
            parent.children.extend(spans)


class _NoopSpan:
    """Singleton stand-in returned by :func:`span` when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager binding one live span to a collector."""

    __slots__ = ("_collector", "_name", "_attributes", "_node")

    def __init__(
        self, collector: TelemetryCollector, name: str, attributes: Dict[str, Any]
    ) -> None:
        self._collector = collector
        self._name = name
        self._attributes = attributes
        self._node: Optional[Span] = None

    def __enter__(self):
        self._node = self._collector.start_span(self._name, self._attributes)
        return self._node if self._node is not None else NOOP_SPAN

    def __exit__(self, *exc_info) -> bool:
        if self._node is not None:
            self._collector.end_span(self._node)
        return False


# ----------------------------------------------------------------------
# Global switch
# ----------------------------------------------------------------------
_ACTIVE: Optional[TelemetryCollector] = None
_PREVIOUS: List[Optional[TelemetryCollector]] = []


def enable(collector: Optional[TelemetryCollector] = None) -> TelemetryCollector:
    """Install ``collector`` (or a fresh one) as the global sink.

    Enables stack: a previously active collector is remembered and
    restored by the matching :func:`disable`.
    """
    global _ACTIVE
    _PREVIOUS.append(_ACTIVE)
    _ACTIVE = collector if collector is not None else TelemetryCollector()
    return _ACTIVE


def disable() -> Optional[TelemetryCollector]:
    """Uninstall the active collector and return it (None if none)."""
    global _ACTIVE
    current = _ACTIVE
    _ACTIVE = _PREVIOUS.pop() if _PREVIOUS else None
    return current


def enabled() -> bool:
    """True when a collector is installed."""
    return _ACTIVE is not None


def active() -> Optional[TelemetryCollector]:
    """The installed collector, or None."""
    return _ACTIVE


@contextmanager
def session(collector: Optional[TelemetryCollector] = None):
    """Enable telemetry for the duration of a ``with`` block."""
    installed = enable(collector)
    try:
        yield installed
    finally:
        disable()


# ----------------------------------------------------------------------
# Instrumentation entry points (the no-op fast path)
# ----------------------------------------------------------------------
def span(name: str, **attributes: Any):
    """Open a traced region; returns a context manager.

    With telemetry disabled this returns the shared no-op span, so call
    sites pay one global read.  The object yielded by ``with`` supports
    ``.set(**attrs)`` in both modes.
    """
    collector = _ACTIVE
    if collector is None:
        return NOOP_SPAN
    return _SpanContext(collector, name, attributes)


def add(name: str, value: float = 1.0) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.add(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.observe(name, value)
