"""The :class:`QuantumCircuit` container and its builder API.

A circuit is an ordered list of :class:`~repro.circuits.gates.Instruction`
over ``num_qubits`` qubits.  The builder methods mirror the subset of the
Qiskit API the Rasengan artifact uses, so the algorithm code reads the same
as the original.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gates import Instruction
from repro.exceptions import CircuitError


class QuantumCircuit:
    """A gate-model circuit on ``num_qubits`` qubits.

    Example:
        >>> qc = QuantumCircuit(3)
        >>> qc.h(0)
        >>> qc.cx(0, 1)
        >>> qc.mcrx(0.5, controls=[0, 1], target=2, ctrl_state=(1, 0))
        >>> len(qc)
        3
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 0:
            raise CircuitError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        self.name = name
        self._instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_instructions={len(self)})"
        )

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """Immutable view of the instruction list."""
        return tuple(self._instructions)

    # ------------------------------------------------------------------
    # Core append
    # ------------------------------------------------------------------
    def append(self, instr: Instruction) -> None:
        """Validate qubit indices and append ``instr``."""
        for qubit in instr.qubits:
            if qubit < 0 or qubit >= self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )
        self._instructions.append(instr)

    def extend(self, instrs: Iterable[Instruction]) -> None:
        for instr in instrs:
            self.append(instr)

    def compose(self, other: "QuantumCircuit") -> None:
        """Append all instructions of ``other`` (same qubit indexing)."""
        if other.num_qubits > self.num_qubits:
            raise CircuitError(
                f"cannot compose {other.num_qubits}-qubit circuit onto "
                f"{self.num_qubits}-qubit circuit"
            )
        self.extend(other.instructions)

    def copy(self) -> "QuantumCircuit":
        clone = QuantumCircuit(self.num_qubits, name=self.name)
        clone._instructions = list(self._instructions)
        return clone

    # ------------------------------------------------------------------
    # Single-qubit gates
    # ------------------------------------------------------------------
    def x(self, qubit: int) -> None:
        self.append(Instruction("x", (qubit,)))

    def y(self, qubit: int) -> None:
        self.append(Instruction("y", (qubit,)))

    def z(self, qubit: int) -> None:
        self.append(Instruction("z", (qubit,)))

    def h(self, qubit: int) -> None:
        self.append(Instruction("h", (qubit,)))

    def s(self, qubit: int) -> None:
        self.append(Instruction("s", (qubit,)))

    def sdg(self, qubit: int) -> None:
        self.append(Instruction("sdg", (qubit,)))

    def t(self, qubit: int) -> None:
        self.append(Instruction("t", (qubit,)))

    def tdg(self, qubit: int) -> None:
        self.append(Instruction("tdg", (qubit,)))

    def sx(self, qubit: int) -> None:
        self.append(Instruction("sx", (qubit,)))

    def rx(self, theta: float, qubit: int) -> None:
        self.append(Instruction("rx", (qubit,), (float(theta),)))

    def ry(self, theta: float, qubit: int) -> None:
        self.append(Instruction("ry", (qubit,), (float(theta),)))

    def rz(self, theta: float, qubit: int) -> None:
        self.append(Instruction("rz", (qubit,), (float(theta),)))

    def p(self, theta: float, qubit: int) -> None:
        self.append(Instruction("p", (qubit,), (float(theta),)))

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> None:
        self.append(
            Instruction("u", (qubit,), (float(theta), float(phi), float(lam)))
        )

    # ------------------------------------------------------------------
    # Two-qubit and controlled gates
    # ------------------------------------------------------------------
    def cx(self, control: int, target: int) -> None:
        self.append(Instruction("cx", (control, target)))

    def cz(self, control: int, target: int) -> None:
        self.append(Instruction("cz", (control, target)))

    def cp(self, theta: float, control: int, target: int) -> None:
        self.append(Instruction("cp", (control, target), (float(theta),)))

    def crx(self, theta: float, control: int, target: int) -> None:
        self.append(Instruction("crx", (control, target), (float(theta),)))

    def swap(self, a: int, b: int) -> None:
        self.append(Instruction("swap", (a, b)))

    def ccx(self, control_a: int, control_b: int, target: int) -> None:
        self.append(Instruction("ccx", (control_a, control_b, target)))

    # ------------------------------------------------------------------
    # Multi-controlled gates (the transition operator's workhorses)
    # ------------------------------------------------------------------
    def mcx(
        self,
        controls: Sequence[int],
        target: int,
        ctrl_state: Optional[Sequence[int]] = None,
    ) -> None:
        """Multi-controlled X with an optional control pattern."""
        self.append(
            Instruction(
                "mcx",
                (*controls, target),
                ctrl_state=None if ctrl_state is None else tuple(ctrl_state),
            )
        )

    def mcp(
        self,
        theta: float,
        controls: Sequence[int],
        target: int,
        ctrl_state: Optional[Sequence[int]] = None,
    ) -> None:
        """Multi-controlled phase gate."""
        self.append(
            Instruction(
                "mcp",
                (*controls, target),
                (float(theta),),
                ctrl_state=None if ctrl_state is None else tuple(ctrl_state),
            )
        )

    def mcrx(
        self,
        theta: float,
        controls: Sequence[int],
        target: int,
        ctrl_state: Optional[Sequence[int]] = None,
    ) -> None:
        """Multi-controlled X rotation; the core of a transition operator."""
        self.append(
            Instruction(
                "mcrx",
                (*controls, target),
                (float(theta),),
                ctrl_state=None if ctrl_state is None else tuple(ctrl_state),
            )
        )

    # ------------------------------------------------------------------
    # Non-unitary operations
    # ------------------------------------------------------------------
    def measure(self, qubit: int) -> None:
        self.append(Instruction("measure", (qubit,)))

    def measure_all(self) -> None:
        for qubit in range(self.num_qubits):
            self.measure(qubit)

    def reset(self, qubit: int) -> None:
        self.append(Instruction("reset", (qubit,)))

    def barrier(self) -> None:
        self.append(Instruction("barrier", tuple()))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def prepare_bitstring(self, bits: Sequence[int]) -> None:
        """Apply X gates to prepare ``|bits⟩`` from ``|0...0⟩``.

        Used for the feasible-solution initialization (paper, Figure 4) and
        for segment re-initialization (paper, Section 4.2).
        """
        if len(bits) != self.num_qubits:
            raise CircuitError(
                f"bitstring length {len(bits)} != num_qubits {self.num_qubits}"
            )
        for qubit, bit in enumerate(bits):
            if bit:
                self.x(qubit)

    def num_parameters_like(self) -> int:
        """Count parameterised rotations (rx/ry/rz/p/crx/mcrx/cp/mcp/u)."""
        names = {"rx", "ry", "rz", "p", "u", "crx", "mcrx", "cp", "mcp"}
        return sum(1 for instr in self._instructions if instr.name in names)
