"""Decomposition of multi-controlled gates into {1-qubit, CX}.

The transition operator circuit (paper, Figure 4) is built from
multi-controlled RX / phase gates.  Real devices only offer one- and
two-qubit natives, so depth claims must be made on a decomposed circuit.
This module implements exact, ancilla-free decompositions:

* ``cp``  -> 2 CX + 3 phase gates,
* ``crx`` -> 2 CX + RZ/H conjugation,
* ``ccx`` -> the standard 6-CX Toffoli network,
* ``mcp``/``mcrx``/``mcx`` -> the Barenco square-root recursion
  (exponential in the number of controls, which is fine for the small
  control counts that survive Hamiltonian simplification; asymptotic depth
  *claims* use the linear neutral-atom cost model in
  :mod:`repro.circuits.depth` instead, as the paper does via [20]).

Control patterns (0-controls) are realised by conjugating the affected
control qubits with X gates.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Instruction
from repro.exceptions import CircuitError

#: Gate names that are already native after decomposition.
NATIVE_AFTER_DECOMPOSITION = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
    "rx", "ry", "rz", "p", "u", "cx", "measure", "reset", "barrier",
}


def _emit_cp(out: List[Instruction], theta: float, control: int, target: int) -> None:
    """Controlled-phase via 2 CX and 3 single-qubit phases."""
    out.append(Instruction("p", (control,), (theta / 2,)))
    out.append(Instruction("cx", (control, target)))
    out.append(Instruction("p", (target,), (-theta / 2,)))
    out.append(Instruction("cx", (control, target)))
    out.append(Instruction("p", (target,), (theta / 2,)))


def _emit_crz(out: List[Instruction], theta: float, control: int, target: int) -> None:
    """Controlled-RZ via 2 CX."""
    out.append(Instruction("rz", (target,), (theta / 2,)))
    out.append(Instruction("cx", (control, target)))
    out.append(Instruction("rz", (target,), (-theta / 2,)))
    out.append(Instruction("cx", (control, target)))


def _emit_crx(out: List[Instruction], theta: float, control: int, target: int) -> None:
    """Controlled-RX = H · CRZ · H on the target."""
    out.append(Instruction("h", (target,)))
    _emit_crz(out, theta, control, target)
    out.append(Instruction("h", (target,)))


def _emit_ccx(out: List[Instruction], a: int, b: int, target: int) -> None:
    """Standard 6-CX Toffoli decomposition."""
    out.append(Instruction("h", (target,)))
    out.append(Instruction("cx", (b, target)))
    out.append(Instruction("tdg", (target,)))
    out.append(Instruction("cx", (a, target)))
    out.append(Instruction("t", (target,)))
    out.append(Instruction("cx", (b, target)))
    out.append(Instruction("tdg", (target,)))
    out.append(Instruction("cx", (a, target)))
    out.append(Instruction("t", (b,)))
    out.append(Instruction("t", (target,)))
    out.append(Instruction("h", (target,)))
    out.append(Instruction("cx", (a, b)))
    out.append(Instruction("t", (a,)))
    out.append(Instruction("tdg", (b,)))
    out.append(Instruction("cx", (a, b)))


def _emit_controlled_phased_rx(
    out: List[Instruction],
    control: int,
    target: int,
    theta: float,
    phase: float,
) -> None:
    """Singly-controlled ``e^{i*phase} RX(theta)``.

    A controlled global phase is a phase gate on the control qubit.
    """
    if phase:
        out.append(Instruction("p", (control,), (phase,)))
    _emit_crx(out, theta, control, target)


def _emit_mc_phased_rx(
    out: List[Instruction],
    controls: Sequence[int],
    target: int,
    theta: float,
    phase: float,
) -> None:
    """Multi-controlled ``e^{i*phase} RX(theta)`` (all 1-controls).

    Barenco recursion with ``V = e^{i*phase/2} RX(theta/2)``:
    ``C^k U = C_k(V) · MCX(rest->k) · C_k(V†) · MCX(rest->k) · C^{k-1}(V)``.
    """
    if not controls:
        if phase:
            # Uncontrolled global phase is irrelevant; keep the rotation.
            pass
        out.append(Instruction("rx", (target,), (theta,)))
        return
    if len(controls) == 1:
        _emit_controlled_phased_rx(out, controls[0], target, theta, phase)
        return
    last = controls[-1]
    rest = controls[:-1]
    _emit_controlled_phased_rx(out, last, target, theta / 2, phase / 2)
    _emit_mcx(out, rest, last)
    _emit_controlled_phased_rx(out, last, target, -theta / 2, -phase / 2)
    _emit_mcx(out, rest, last)
    _emit_mc_phased_rx(out, rest, target, theta / 2, phase / 2)


def _emit_mcx(out: List[Instruction], controls: Sequence[int], target: int) -> None:
    """Multi-controlled X (all 1-controls).

    ``X = e^{i*pi/2} RX(pi)``, so the phased-RX recursion applies.
    """
    if not controls:
        out.append(Instruction("x", (target,)))
        return
    if len(controls) == 1:
        out.append(Instruction("cx", (controls[0], target)))
        return
    if len(controls) == 2:
        _emit_ccx(out, controls[0], controls[1], target)
        return
    _emit_mc_phased_rx(out, controls, target, math.pi, math.pi / 2)


def _emit_mcp(out: List[Instruction], theta: float, qubits: Sequence[int]) -> None:
    """Phase ``e^{i*theta}`` on the all-ones state of ``qubits``.

    Recursion: split the last control off with a CP(theta/2) pair around
    MCX, then recurse on one fewer qubit with half the angle.
    """
    if len(qubits) == 1:
        out.append(Instruction("p", (qubits[0],), (theta,)))
        return
    if len(qubits) == 2:
        _emit_cp(out, theta, qubits[0], qubits[1])
        return
    *controls, target = qubits
    last = controls[-1]
    rest = controls[:-1]
    _emit_cp(out, theta / 2, last, target)
    _emit_mcx(out, rest, last)
    _emit_cp(out, -theta / 2, last, target)
    _emit_mcx(out, rest, last)
    _emit_mcp(out, theta / 2, (*rest, target))


def _with_pattern(
    out: List[Instruction],
    instr: Instruction,
    emit,
) -> None:
    """Wrap ``emit`` with X-conjugation on 0-controls of ``instr``."""
    zero_controls = [
        qubit
        for qubit, wanted in zip(instr.controls, instr.control_pattern)
        if wanted == 0
    ]
    for qubit in zero_controls:
        out.append(Instruction("x", (qubit,)))
    emit()
    for qubit in zero_controls:
        out.append(Instruction("x", (qubit,)))


def decompose_instruction(instr: Instruction) -> List[Instruction]:
    """Expand one instruction into the {1q, CX} basis."""
    if instr.name in NATIVE_AFTER_DECOMPOSITION:
        return [instr]
    out: List[Instruction] = []
    controls = list(instr.controls)
    target = instr.target
    if instr.name == "swap":
        a, b = instr.qubits
        out.append(Instruction("cx", (a, b)))
        out.append(Instruction("cx", (b, a)))
        out.append(Instruction("cx", (a, b)))
        return out
    if instr.name == "cz":
        out.append(Instruction("h", (target,)))
        out.append(Instruction("cx", (controls[0], target)))
        out.append(Instruction("h", (target,)))
        return out
    if instr.name == "cp":
        _with_pattern(out, instr, lambda: _emit_cp(out, instr.params[0], controls[0], target))
        return out
    if instr.name == "crx":
        _with_pattern(out, instr, lambda: _emit_crx(out, instr.params[0], controls[0], target))
        return out
    if instr.name == "ccx":
        _with_pattern(out, instr, lambda: _emit_ccx(out, controls[0], controls[1], target))
        return out
    if instr.name == "mcx":
        _with_pattern(out, instr, lambda: _emit_mcx(out, controls, target))
        return out
    if instr.name == "mcp":
        _with_pattern(
            out, instr, lambda: _emit_mcp(out, instr.params[0], (*controls, target))
        )
        return out
    if instr.name == "mcrx":
        _with_pattern(
            out,
            instr,
            lambda: _emit_mc_phased_rx(out, controls, target, instr.params[0], 0.0),
        )
        return out
    raise CircuitError(f"no decomposition known for gate {instr.name!r}")


def decompose_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite ``circuit`` into the {single-qubit, CX} basis."""
    result = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_decomposed")
    for instr in circuit:
        result.extend(decompose_instruction(instr))
    return result
