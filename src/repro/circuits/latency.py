"""Analytic latency model for variational-algorithm training.

The paper reports end-to-end training latency (Table 1, Figures 12 and 13)
using IBM device timing (the Quebec model).  Offline we reproduce the same
accounting with an explicit model:

``quantum time  = shots * (circuit duration + readout + reset)``
``circuit time  = depth_1q * t_1q + depth_2q * t_2q`` (per segment)
``classical time = objective evaluations + optimizer update (+ purification)``

Only *relative* numbers are meaningful, which is all Figures 12/13 claim.
Default timings follow published IBM Eagle r3 calibration orders of
magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class DeviceTimings:
    """Per-operation durations, in seconds."""

    single_qubit_gate: float = 35e-9
    two_qubit_gate: float = 500e-9
    readout: float = 1.2e-6
    reset: float = 1.0e-6
    #: Fixed per-job overhead (binary upload, triggering), per circuit batch.
    job_overhead: float = 2e-3


#: Default timing set used across the benchmark harness.
IBM_EAGLE_TIMINGS = DeviceTimings()


@dataclass(frozen=True)
class LatencyReport:
    """Latency breakdown of one training run, in seconds."""

    quantum: float
    classical: float
    purification: float = 0.0

    @property
    def total(self) -> float:
        return self.quantum + self.classical + self.purification

    def as_dict(self) -> Dict[str, float]:
        return {
            "quantum": self.quantum,
            "classical": self.classical,
            "purification": self.purification,
            "total": self.total,
        }


@dataclass
class LatencyModel:
    """Estimate training latency from circuit structure and iteration counts.

    Attributes:
        timings: device timing constants.
        classical_update_per_param: seconds of optimizer work per parameter
            per iteration (COBYLA linear-model upkeep).
        objective_eval: seconds to evaluate the classical objective on one
            measured bitstring (larger for penalty methods, which must
            evaluate quadratic penalty terms on infeasible outputs too).
        purification_per_state: seconds per distinct measured state for the
            feasibility check ``C x = b`` (paper: ~0.05 ms total per
            iteration, i.e. microseconds per state).
    """

    timings: DeviceTimings = field(default_factory=lambda: IBM_EAGLE_TIMINGS)
    classical_update_per_param: float = 2e-4
    #: Evaluating a quadratic penalty objective on one sample.  Calibrated
    #: so that penalty methods land in the paper's classical-dominated
    #: regime (~0.5 s of objective work per 1024-shot iteration).
    objective_eval: float = 2e-4
    purification_per_state: float = 1e-6

    def circuit_duration(self, depth_1q: int, depth_2q: int) -> float:
        """Wall-clock duration of one circuit execution (no readout)."""
        return (
            depth_1q * self.timings.single_qubit_gate
            + depth_2q * self.timings.two_qubit_gate
        )

    def training_latency(
        self,
        *,
        iterations: int,
        shots: int,
        depth_1q: int,
        depth_2q: int,
        num_parameters: int,
        segments: int = 1,
        distinct_states: int = 16,
        purify: bool = False,
        objective_evals_per_shot: float = 1.0,
    ) -> LatencyReport:
        """Latency of a full variational training run.

        Args:
            iterations: optimizer iterations.
            shots: measurement shots per segment execution.
            depth_1q: single-qubit-layer depth of one executed circuit
                (one segment for Rasengan, the full ansatz otherwise).
            depth_2q: two-qubit-gate depth of one executed circuit.
            num_parameters: variational parameter count.
            segments: circuit executions per iteration (Rasengan segments).
            distinct_states: distinct basis states measured per segment,
                which drives purification cost.
            purify: include the purification feasibility checks.
            objective_evals_per_shot: penalty methods evaluate the objective
                (with penalty terms) on every measured sample; feasible-space
                methods only on feasible ones.
        """
        per_shot = (
            self.circuit_duration(depth_1q, depth_2q)
            + self.timings.readout
            + self.timings.reset
        )
        quantum = iterations * segments * (
            shots * per_shot + self.timings.job_overhead
        )
        classical = iterations * (
            num_parameters * self.classical_update_per_param
            + shots * segments * objective_evals_per_shot * self.objective_eval
        )
        purification = 0.0
        if purify:
            purification = (
                iterations * segments * distinct_states * self.purification_per_state
            )
        return LatencyReport(
            quantum=quantum, classical=classical, purification=purification
        )
