"""Transpilation: native-basis translation and topology routing.

Brings a logical circuit to the form a device executes:

1. :func:`decompose_circuit` flattens multi-controlled gates to {1q, CX};
2. :func:`to_native_basis` rewrites every single-qubit gate into the IBM
   Eagle native set ``{rz, sx, x, cx}`` using the ZSX Euler decomposition
   ``U = e^{ia} RZ(phi+pi) SX RZ(theta+pi) SX RZ(lambda)``;
3. :func:`route_circuit` inserts SWAPs (3 CX each) so that every CX acts
   on adjacent qubits of a coupling map, with a greedy
   move-along-shortest-path strategy.

This is the machinery behind honest depth numbers: the paper compiles via
the IBM Quebec model; we compile to the same gate alphabet on
caller-supplied topologies (:func:`linear_coupling` and
:func:`grid_coupling` ship as common cases).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompose import decompose_circuit
from repro.circuits.gates import Instruction, single_qubit_matrix
from repro.exceptions import CircuitError

#: IBM Eagle native gate alphabet.
NATIVE_BASIS = ("rz", "sx", "x", "cx")

_ATOL = 1e-10


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float]:
    """ZYZ Euler angles ``(theta, phi, lam)`` of a 2x2 unitary.

    ``U ~ RZ(phi) RY(theta) RZ(lam)`` up to global phase.
    """
    det = np.linalg.det(matrix)
    su2 = matrix / cmath.sqrt(det)
    theta = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) < _ATOL:
        # theta == pi: only phi - lam is determined; set lam = 0.
        phi = 2.0 * cmath.phase(su2[1, 0])
        lam = 0.0
    elif abs(su2[1, 0]) < _ATOL:
        # theta == 0: only phi + lam is determined; set lam = 0.
        phi = 2.0 * cmath.phase(su2[1, 1])
        lam = 0.0
    else:
        plus = 2.0 * cmath.phase(su2[1, 1])
        minus = 2.0 * cmath.phase(su2[1, 0])
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    return theta, phi, lam


def _emit_native_1q(out: List[Instruction], matrix: np.ndarray, qubit: int) -> None:
    """Append the ZSX realisation of a single-qubit unitary (global phase
    dropped).  Identity-like gates emit nothing; pure Z-rotations emit one
    RZ."""
    if np.allclose(matrix, np.eye(2) * matrix[0, 0], atol=_ATOL):
        return
    theta, phi, lam = zyz_angles(matrix)
    if abs(theta) < 1e-9:
        out.append(Instruction("rz", (qubit,), (phi + lam,)))
        return
    out.append(Instruction("rz", (qubit,), (lam,)))
    out.append(Instruction("sx", (qubit,)))
    out.append(Instruction("rz", (qubit,), (theta + math.pi,)))
    out.append(Instruction("sx", (qubit,)))
    out.append(Instruction("rz", (qubit,), (phi + math.pi,)))


def to_native_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite into the IBM Eagle alphabet {rz, sx, x, cx}.

    Multi-controlled gates are flattened first; adjacent single-qubit
    gates on the same wire are fused before translation so each run costs
    at most one ZSX pattern (5 native gates).
    """
    flat = decompose_circuit(circuit)
    result = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_native")
    pending: Dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is not None:
            emitted: List[Instruction] = []
            _emit_native_1q(emitted, matrix, qubit)
            result.extend(emitted)

    for instr in flat:
        if instr.name in ("measure", "reset", "barrier"):
            for qubit in instr.qubits or range(circuit.num_qubits):
                flush(qubit)
            result.append(instr)
            continue
        if len(instr.qubits) == 1:
            matrix = single_qubit_matrix(instr.base_name, instr.params)
            qubit = instr.qubits[0]
            pending[qubit] = matrix @ pending.get(qubit, np.eye(2, dtype=complex))
            continue
        # Two-qubit gate: flush both wires, then emit the CX.
        if instr.name != "cx":
            raise CircuitError(f"unexpected gate {instr.name!r} after decomposition")
        for qubit in instr.qubits:
            flush(qubit)
        result.append(instr)
    for qubit in list(pending):
        flush(qubit)
    return result


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CouplingMap:
    """Undirected device connectivity over physical qubits ``0..n-1``."""

    edges: Tuple[Tuple[int, int], ...]

    def graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_edges_from(self.edges)
        return graph

    @property
    def num_qubits(self) -> int:
        return 1 + max(max(edge) for edge in self.edges)


def linear_coupling(num_qubits: int) -> CouplingMap:
    """A 1-D chain — the worst case for routing overhead."""
    return CouplingMap(tuple((q, q + 1) for q in range(num_qubits - 1)))


def grid_coupling(rows: int, cols: int) -> CouplingMap:
    """A rows x cols lattice (heavy-hex stand-in)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(tuple(edges))


def route_circuit(
    circuit: QuantumCircuit, coupling: CouplingMap
) -> Tuple[QuantumCircuit, Dict[int, int]]:
    """Insert SWAPs so every CX is between coupled physical qubits.

    Greedy strategy: keep a logical->physical mapping (initially the
    identity); for each CX whose endpoints are not adjacent, walk the
    control along the shortest physical path, swapping as it goes.

    Args:
        circuit: a circuit over {1q, cx} gates (run
            :func:`to_native_basis` or :func:`decompose_circuit` first).
        coupling: target topology; must have at least as many qubits.

    Returns:
        ``(routed circuit over physical qubits, final logical->physical
        mapping)``.
    """
    if coupling.num_qubits < circuit.num_qubits:
        raise CircuitError(
            f"coupling map has {coupling.num_qubits} qubits, circuit needs "
            f"{circuit.num_qubits}"
        )
    graph = coupling.graph()
    logical_to_physical: Dict[int, int] = {
        q: q for q in range(coupling.num_qubits)
    }
    physical_to_logical: Dict[int, int] = dict(logical_to_physical)
    routed = QuantumCircuit(coupling.num_qubits, name=f"{circuit.name}_routed")

    def swap_physical(a: int, b: int) -> None:
        routed.cx(a, b)
        routed.cx(b, a)
        routed.cx(a, b)
        la, lb = physical_to_logical[a], physical_to_logical[b]
        physical_to_logical[a], physical_to_logical[b] = lb, la
        logical_to_physical[lb], logical_to_physical[la] = a, b

    for instr in circuit:
        if instr.name in ("barrier",):
            routed.barrier()
            continue
        if len(instr.qubits) == 1 or instr.name in ("measure", "reset"):
            physical = tuple(logical_to_physical[q] for q in instr.qubits)
            routed.append(
                Instruction(instr.name, physical, instr.params, instr.ctrl_state)
            )
            continue
        if instr.name != "cx":
            raise CircuitError(
                f"route_circuit expects a {{1q, cx}} circuit, found {instr.name!r}"
            )
        control = logical_to_physical[instr.qubits[0]]
        target = logical_to_physical[instr.qubits[1]]
        path = nx.shortest_path(graph, control, target)
        # Walk the control toward the target, stopping one hop short.
        for step in range(len(path) - 2):
            swap_physical(path[step], path[step + 1])
        control = logical_to_physical[instr.qubits[0]]
        routed.cx(control, logical_to_physical[instr.qubits[1]])
    return routed, {
        q: logical_to_physical[q] for q in range(circuit.num_qubits)
    }


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap | None = None,
    *,
    optimize: bool = True,
) -> QuantumCircuit:
    """Full pipeline: decompose, translate to native basis, optimize,
    route (peephole optimization runs before routing so cancelled CX pairs
    never generate SWAP traffic)."""
    native = to_native_basis(circuit)
    if optimize:
        from repro.circuits.optimize import optimize_circuit

        native = optimize_circuit(native)
    if coupling is None:
        return native
    routed, _ = route_circuit(native, coupling)
    return routed
