"""Gate-level quantum circuit intermediate representation.

This subpackage replaces the role Qiskit plays in the original Rasengan
artifact: building circuits (including the multi-controlled structure of
transition operators, Figure 4 of the paper), decomposing multi-controlled
gates into a CX + single-qubit basis, and accounting for circuit depth,
two-qubit gate counts, and execution latency.
"""

from repro.circuits.gates import (
    Instruction,
    gate_matrix,
    single_qubit_matrix,
)
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depth import (
    CostModel,
    circuit_depth,
    gate_counts,
    two_qubit_gate_count,
    transition_cx_cost,
)
from repro.circuits.decompose import decompose_circuit
from repro.circuits.latency import DeviceTimings, LatencyModel
from repro.circuits.transpile import (
    CouplingMap,
    grid_coupling,
    linear_coupling,
    route_circuit,
    to_native_basis,
    transpile,
)
from repro.circuits.optimize import optimize_circuit
from repro.circuits.unitary import circuit_unitary, unitaries_equal
from repro.circuits.visualize import draw

__all__ = [
    "Instruction",
    "QuantumCircuit",
    "gate_matrix",
    "single_qubit_matrix",
    "CostModel",
    "circuit_depth",
    "gate_counts",
    "two_qubit_gate_count",
    "transition_cx_cost",
    "decompose_circuit",
    "DeviceTimings",
    "LatencyModel",
    "CouplingMap",
    "linear_coupling",
    "grid_coupling",
    "route_circuit",
    "to_native_basis",
    "transpile",
    "circuit_unitary",
    "unitaries_equal",
    "optimize_circuit",
    "draw",
]
