"""Exact unitary extraction for small circuits.

Used throughout the test suite and by verification tooling: the unitary
is built column by column through the statevector simulator, so it is
exactly the operator the simulators implement (little-endian convention).
Cost is ``O(4**n)`` — keep it to verification-sized circuits.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SimulationError

#: Extraction above this width is almost certainly a mistake.
MAX_QUBITS = 12


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """The ``2**n x 2**n`` unitary implemented by ``circuit``.

    Measurement and barrier instructions are ignored (they do not affect
    the unitary part); ``reset`` raises because it is not unitary.
    """
    from repro.simulators.statevector import StatevectorSimulator

    if circuit.num_qubits > MAX_QUBITS:
        raise SimulationError(
            f"unitary extraction limited to {MAX_QUBITS} qubits"
        )
    simulator = StatevectorSimulator()
    dim = 1 << circuit.num_qubits
    columns = []
    for basis in range(dim):
        state = np.zeros(dim, dtype=np.complex128)
        state[basis] = 1.0
        columns.append(simulator.run(circuit, initial_state=state))
    return np.array(columns).T


def unitaries_equal(
    a: np.ndarray, b: np.ndarray, *, up_to_global_phase: bool = False,
    atol: float = 1e-9,
) -> bool:
    """Compare two unitaries, optionally modulo a global phase."""
    if a.shape != b.shape:
        return False
    if not up_to_global_phase:
        return bool(np.allclose(a, b, atol=atol))
    # Align on the largest-magnitude entry of b.
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[index]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[index] / b[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))
