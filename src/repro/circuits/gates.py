"""Gate definitions and matrix builders.

Gates are recorded as immutable :class:`Instruction` values.  A gate name,
the qubits it acts on, real parameters, and (for multi-controlled gates) the
control pattern fully determine its unitary.  The convention for
multi-controlled gates is ``qubits = (*controls, target)`` with
``ctrl_state[i]`` giving the required value of ``controls[i]``; the default
pattern is all ones.

Only the matrix of the *base* (non-control) operation is stored here; the
simulators apply control logic directly on indices, which is far cheaper
than materialising a ``2**(k+1)`` matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import CircuitError

#: Gate names whose base operation acts on one qubit.
SINGLE_QUBIT_GATES = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
    "rx", "ry", "rz", "p", "u",
}

#: Multi-controlled gate names; qubits = (*controls, target).
CONTROLLED_GATES = {"cx", "cz", "cp", "crx", "ccx", "mcx", "mcp", "mcrx"}

#: Non-unitary / structural operations.
NON_UNITARY = {"measure", "reset", "barrier"}

_SQRT2 = math.sqrt(2.0)


@dataclass(frozen=True)
class Instruction:
    """One operation in a circuit.

    Attributes:
        name: gate name (see module constants for the supported set).
        qubits: qubit indices; for controlled gates the target is last.
        params: real gate parameters (angles).
        ctrl_state: required control values for multi-controlled gates;
            ``None`` means all controls must be 1.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()
    ctrl_state: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in {self.name}: {self.qubits}")
        if self.ctrl_state is not None and len(self.ctrl_state) != self.num_controls:
            raise CircuitError(
                f"{self.name}: ctrl_state length {len(self.ctrl_state)} does not "
                f"match {self.num_controls} controls"
            )

    @property
    def num_controls(self) -> int:
        """Number of control qubits of this instruction."""
        if self.name in ("cx", "cz", "cp", "crx"):
            return 1
        if self.name == "ccx":
            return 2
        if self.name in ("mcx", "mcp", "mcrx"):
            return len(self.qubits) - 1
        return 0

    @property
    def controls(self) -> Tuple[int, ...]:
        """Control qubits (possibly empty)."""
        return self.qubits[: self.num_controls]

    @property
    def target(self) -> int:
        """Target qubit (the last listed)."""
        return self.qubits[-1]

    @property
    def control_pattern(self) -> Tuple[int, ...]:
        """Required control values, defaulting to all ones."""
        if self.ctrl_state is not None:
            return self.ctrl_state
        return (1,) * self.num_controls

    @property
    def base_name(self) -> str:
        """Name of the operation applied on the target when controls match."""
        mapping = {
            "cx": "x", "ccx": "x", "mcx": "x",
            "cz": "z",
            "cp": "p", "mcp": "p",
            "crx": "rx", "mcrx": "rx",
        }
        return mapping.get(self.name, self.name)

    @property
    def is_unitary(self) -> bool:
        return self.name not in NON_UNITARY


def single_qubit_matrix(name: str, params: Tuple[float, ...] = ()) -> np.ndarray:
    """2x2 unitary of a single-qubit gate.

    Args:
        name: one of :data:`SINGLE_QUBIT_GATES`.
        params: gate angles; ``rx/ry/rz/p`` take one, ``u`` takes three.
    """
    if name == "id":
        return np.eye(2, dtype=complex)
    if name == "x":
        return np.array([[0, 1], [1, 0]], dtype=complex)
    if name == "y":
        return np.array([[0, -1j], [1j, 0]], dtype=complex)
    if name == "z":
        return np.array([[1, 0], [0, -1]], dtype=complex)
    if name == "h":
        return np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
    if name == "s":
        return np.array([[1, 0], [0, 1j]], dtype=complex)
    if name == "sdg":
        return np.array([[1, 0], [0, -1j]], dtype=complex)
    if name == "t":
        return np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
    if name == "tdg":
        return np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex)
    if name == "sx":
        return 0.5 * np.array(
            [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
        )
    if name == "rx":
        (theta,) = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if name == "ry":
        (theta,) = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if name == "rz":
        (theta,) = params
        return np.array(
            [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]],
            dtype=complex,
        )
    if name == "p":
        (theta,) = params
        return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)
    if name == "u":
        theta, phi, lam = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array(
            [
                [c, -np.exp(1j * lam) * s],
                [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
            ],
            dtype=complex,
        )
    raise CircuitError(f"unknown single-qubit gate {name!r}")


def gate_matrix(instr: Instruction) -> np.ndarray:
    """Full unitary of ``instr`` on its own qubits.

    The matrix is ordered with ``instr.qubits[0]`` as the *least significant*
    bit of the index, matching the library-wide little-endian convention.
    Intended for verification and the density-matrix simulator; statevector
    simulators use index arithmetic instead.
    """
    if not instr.is_unitary:
        raise CircuitError(f"{instr.name} has no unitary matrix")
    if instr.name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )
    k = len(instr.qubits)
    base = single_qubit_matrix(instr.base_name, instr.params)
    if instr.num_controls == 0:
        if k != 1:
            raise CircuitError(f"unsupported multi-qubit gate {instr.name}")
        return base
    dim = 1 << k
    matrix = np.eye(dim, dtype=complex)
    pattern = instr.control_pattern
    target_bit = k - 1  # target is the last listed qubit
    for index in range(dim):
        controls_match = all(
            ((index >> c) & 1) == pattern[c] for c in range(instr.num_controls)
        )
        if not controls_match:
            continue
        if (index >> target_bit) & 1:
            continue  # handle each pair once, from its target=0 member
        partner = index | (1 << target_bit)
        matrix[index, index] = base[0, 0]
        matrix[index, partner] = base[0, 1]
        matrix[partner, index] = base[1, 0]
        matrix[partner, partner] = base[1, 1]
    return matrix


#: Durations are defined in :mod:`repro.circuits.latency`; this map only
#: classifies names for depth/count accounting.
def gate_category(instr: Instruction) -> str:
    """Coarse category used by depth/latency accounting.

    Returns one of ``"1q"``, ``"2q"``, ``"multi"``, ``"measure"``,
    ``"reset"`` or ``"barrier"``.
    """
    if instr.name == "barrier":
        return "barrier"
    if instr.name == "measure":
        return "measure"
    if instr.name == "reset":
        return "reset"
    k = len(instr.qubits)
    if k == 1:
        return "1q"
    if k == 2:
        return "2q"
    return "multi"
