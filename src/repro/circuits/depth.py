"""Circuit depth and gate-count accounting.

Two cost models are supported, mirroring the paper:

* :attr:`CostModel.EXACT` — decompose the circuit into {1q, CX} with
  :mod:`repro.circuits.decompose` and count/schedule actual gates.  This is
  an ancilla-free decomposition, so multi-controlled costs grow quickly with
  the control count; it is the honest model for the small controls that
  survive Hamiltonian simplification.
* :attr:`CostModel.LINEAR_NEUTRAL_ATOM` — the paper's analytic model
  (Section 3.2, citing Graham et al. [20]): a transition operator over a
  basis vector with ``k`` nonzero entries costs ``34*k`` CX-equivalents.
  This is the model behind the paper's ``34 n m^2`` bound and behind the
  depth columns of Table 2.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompose import decompose_circuit
from repro.circuits.gates import gate_category

#: CX-equivalents per nonzero element of a basis vector (paper, Section 3.2).
CX_PER_NONZERO = 34


class CostModel(enum.Enum):
    """How to convert a logical circuit into depth/gate-count numbers."""

    EXACT = "exact"
    LINEAR_NEUTRAL_ATOM = "linear_neutral_atom"


def circuit_depth(circuit: QuantumCircuit, *, decompose: bool = False) -> int:
    """Depth of ``circuit`` by list scheduling on qubit tracks.

    Args:
        circuit: circuit to measure.
        decompose: measure the {1q, CX} decomposition instead of the
            logical circuit.

    Returns:
        The number of layers; barriers synchronise all qubits but do not
        add a layer themselves.
    """
    target = decompose_circuit(circuit) if decompose else circuit
    track = [0] * max(target.num_qubits, 1)
    for instr in target:
        if instr.name == "barrier":
            top = max(track)
            track = [top] * len(track)
            continue
        qubits = instr.qubits
        if not qubits:
            continue
        start = max(track[q] for q in qubits)
        for q in qubits:
            track[q] = start + 1
    return max(track) if track else 0


def two_qubit_depth(circuit: QuantumCircuit, *, decompose: bool = True) -> int:
    """Depth counting only two-qubit (and wider) gates.

    Two-qubit depth is the quantity that actually limits NISQ execution;
    the paper's ``34 n m^2 -> 34 n`` segmented-execution claim is about this
    number.
    """
    target = decompose_circuit(circuit) if decompose else circuit
    track = [0] * max(target.num_qubits, 1)
    for instr in target:
        if instr.name == "barrier":
            top = max(track)
            track = [top] * len(track)
            continue
        qubits = instr.qubits
        if not qubits:
            continue
        start = max(track[q] for q in qubits)
        advance = 1 if len(qubits) >= 2 and instr.is_unitary else 0
        for q in qubits:
            track[q] = start + advance
    return max(track) if track else 0


def gate_counts(circuit: QuantumCircuit, *, decompose: bool = False) -> Dict[str, int]:
    """Histogram of gate names."""
    target = decompose_circuit(circuit) if decompose else circuit
    return dict(Counter(instr.name for instr in target))


def two_qubit_gate_count(circuit: QuantumCircuit, *, decompose: bool = True) -> int:
    """Number of two-or-more-qubit unitary gates."""
    target = decompose_circuit(circuit) if decompose else circuit
    return sum(
        1
        for instr in target
        if instr.is_unitary and gate_category(instr) in ("2q", "multi")
    )


def transition_cx_cost(num_nonzero: int, model: CostModel = CostModel.LINEAR_NEUTRAL_ATOM) -> int:
    """CX-equivalents of one transition operator over ``k`` nonzeros.

    With the linear model this is the paper's ``34 k``.  The exact model is
    obtained by building and decomposing the operator circuit, so callers
    who need it should go through
    :func:`repro.core.transition.transition_circuit` instead.
    """
    if num_nonzero < 0:
        raise ValueError("num_nonzero must be non-negative")
    if model is not CostModel.LINEAR_NEUTRAL_ATOM:
        raise ValueError(
            "transition_cx_cost only evaluates the analytic linear model; "
            "use circuit decomposition for CostModel.EXACT"
        )
    return CX_PER_NONZERO * num_nonzero
