"""Peephole circuit optimization.

Local rewrite passes applied until a fixed point:

* cancel adjacent self-inverse pairs on identical qubits
  (X·X, H·H, Z·Z, CX·CX, CZ·CZ, SWAP·SWAP);
* merge adjacent rotations of the same axis on the same qubit
  (RZ(a)·RZ(b) -> RZ(a+b), same for RX/RY/P, and CP/CRX/MCRX/MCP with
  identical controls and control patterns);
* drop rotations whose angle is a multiple of 2*pi (4*pi for the
  half-angle gates RX/RY/RZ, which equal -I at 2*pi — a global phase,
  but one that matters inside controlled contexts, so only the exact
  identity period is dropped).

"Adjacent" means no intervening instruction touches any shared qubit —
the passes look through gates on disjoint wires.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Instruction

_SELF_INVERSE = {"x", "y", "z", "h", "cx", "cz", "swap", "ccx"}
#: Rotation-like gates and their identity period.
_ROTATIONS = {
    "rx": 4 * math.pi,
    "ry": 4 * math.pi,
    "rz": 4 * math.pi,
    "p": 2 * math.pi,
    "cp": 2 * math.pi,
    "crx": 4 * math.pi,
    "mcp": 2 * math.pi,
    "mcrx": 4 * math.pi,
}

_ANGLE_TOLERANCE = 1e-12


def _same_operation(a: Instruction, b: Instruction) -> bool:
    """Same gate on the same qubits with the same control pattern."""
    return (
        a.name == b.name
        and a.qubits == b.qubits
        and a.control_pattern == b.control_pattern
    )


def _is_identity_rotation(instr: Instruction) -> bool:
    period = _ROTATIONS.get(instr.name)
    if period is None or not instr.params:
        return False
    angle = instr.params[0] % period
    return min(angle, period - angle) < _ANGLE_TOLERANCE


def _merge(a: Instruction, b: Instruction) -> Optional[Instruction]:
    """Merged instruction for an adjacent same-axis rotation pair."""
    if a.name not in _ROTATIONS or not _same_operation(a, b):
        return None
    return Instruction(
        a.name, a.qubits, (a.params[0] + b.params[0],), a.ctrl_state
    )


#: Diagonal (computational-basis) gates — they all commute pairwise.
_DIAGONAL = {"z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "cp", "mcp"}


def _commutes(a: Instruction, b: Instruction) -> bool:
    """Conservative commutation check used to scan past gates.

    Rules: disjoint wires always commute; diagonal gates commute with
    each other; two CX with the same control commute; a CX commutes with
    a diagonal gate touching only its control, and with an X touching
    only its target.
    """
    if not (set(a.qubits) & set(b.qubits)):
        return True
    if a.name in _DIAGONAL and b.name in _DIAGONAL:
        return True

    def cx_rule(cx: Instruction, other: Instruction) -> bool:
        if cx.name != "cx":
            return False
        control, target = cx.qubits
        other_qubits = set(other.qubits)
        if other.name == "cx" and other.qubits[0] == control and target not in other_qubits:
            return True
        if other.name in _DIAGONAL and other_qubits == {control}:
            return True
        if other.name == "x" and other_qubits == {target}:
            return True
        return False

    return cx_rule(a, b) or cx_rule(b, a)


def _one_pass(instructions: List[Instruction]) -> Optional[List[Instruction]]:
    """Apply the first applicable rewrite; None when at a fixed point."""
    count = len(instructions)
    for i, instr in enumerate(instructions):
        if not instr.is_unitary:
            continue
        if _is_identity_rotation(instr):
            return instructions[:i] + instructions[i + 1 :]
        # Scan forward past commuting gates for a cancel/merge partner.
        for j in range(i + 1, count):
            other = instructions[j]
            if _same_operation(instr, other):
                if instr.name in _SELF_INVERSE:
                    return (
                        instructions[:i]
                        + instructions[i + 1 : j]
                        + instructions[j + 1 :]
                    )
                merged = _merge(instr, other)
                if merged is not None:
                    return (
                        instructions[:i]
                        + [merged]
                        + instructions[i + 1 : j]
                        + instructions[j + 1 :]
                    )
            if not other.is_unitary or not _commutes(instr, other):
                break
    return None


def optimize_circuit(circuit: QuantumCircuit, max_passes: int = 10_000) -> QuantumCircuit:
    """Run peephole rewrites to a fixed point.

    The result implements the same unitary (up to nothing — all rewrites
    are exact identities) with at most the original gate count.
    """
    instructions = list(circuit.instructions)
    for _ in range(max_passes):
        rewritten = _one_pass(instructions)
        if rewritten is None:
            break
        instructions = rewritten
    result = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_opt")
    result.extend(instructions)
    return result
