"""Plain-text circuit rendering.

A small fixed-width drawer in the spirit of Qiskit's ``'text'`` output:
one row per qubit, one column per scheduled layer, controls as ``●``
(or ``○`` for 0-controls) and targets as gate labels.

>>> from repro.circuits import QuantumCircuit
>>> qc = QuantumCircuit(2)
>>> qc.h(0)
>>> qc.cx(0, 1)
>>> print(draw(qc))  # doctest: +NORMALIZE_WHITESPACE
q0: ─[H]──●─
q1: ──────X─
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuits.circuit import QuantumCircuit

_LABELS = {
    "x": "X", "y": "Y", "z": "Z", "h": "H", "s": "S", "sdg": "S†",
    "t": "T", "tdg": "T†", "sx": "√X", "id": "I", "measure": "M",
    "reset": "R",
}


def _label(instr) -> str:
    base = instr.base_name
    if base in _LABELS:
        return _LABELS[base]
    if instr.params:
        return f"{base.upper()}({instr.params[0]:.2f})"
    return base.upper()


def draw(circuit: QuantumCircuit, *, max_width: int = 120) -> str:
    """Render ``circuit`` as fixed-width text.

    Args:
        circuit: circuit to draw.
        max_width: wrap into multiple blocks after this many characters.
    """
    n = circuit.num_qubits
    # Layering identical to circuit_depth's list scheduling.
    track = [0] * max(n, 1)
    layers: List[List] = []
    for instr in circuit:
        if instr.name == "barrier":
            top = max(track) if track else 0
            track = [top] * len(track)
            continue
        if not instr.qubits:
            continue
        layer = max(track[q] for q in instr.qubits)
        while len(layers) <= layer:
            layers.append([])
        layers[layer].append(instr)
        for q in instr.qubits:
            track[q] = layer + 1

    columns: List[Dict[int, str]] = []
    for layer in layers:
        column: Dict[int, str] = {}
        for instr in layer:
            pattern = instr.control_pattern
            for control, wanted in zip(instr.controls, pattern):
                column[control] = "●" if wanted else "○"
            column[instr.target] = f"[{_label(instr)}]"
            # Mark the vertical span of multi-qubit gates.
            if len(instr.qubits) > 1:
                low = min(instr.qubits)
                high = max(instr.qubits)
                for wire in range(low + 1, high):
                    if wire not in column and wire not in instr.qubits:
                        column[wire] = "│"
            if instr.base_name == "x" and instr.num_controls:
                column[instr.target] = "X"
        columns.append(column)

    widths = [
        max((len(cell) for cell in column.values()), default=1)
        for column in columns
    ]
    rows = []
    for qubit in range(n):
        parts = [f"q{qubit}: "]
        for column, width in zip(columns, widths):
            cell = column.get(qubit, "─")
            filler = " " if cell == "│" else "─"
            pad = width - len(cell)
            left = pad // 2
            parts.append(
                "─" + filler * left + cell + filler * (pad - left) + "─"
            )
        rows.append("".join(parts))

    # Wrap long circuits.
    if rows and len(rows[0]) > max_width:
        blocks = []
        start = 0
        header = len(f"q{n-1}: ")
        body = max_width - header
        text_rows = rows
        length = len(rows[0])
        while start < length:
            blocks.append(
                "\n".join(
                    row[:header] + row[header + start : header + start + body]
                    for row in text_rows
                )
            )
            start += body
        return "\n...\n".join(blocks)
    return "\n".join(rows)
