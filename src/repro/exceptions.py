"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid gate applications."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute a circuit."""


class ProblemError(ReproError):
    """Raised for ill-formed constrained binary optimization problems."""


class InfeasibleProblemError(ProblemError):
    """Raised when a problem instance has no feasible solution."""


class LinearAlgebraError(ReproError):
    """Raised when integer linear-algebra routines receive invalid input."""


class SolverError(ReproError):
    """Raised when a variational solver cannot make progress.

    The most important instance is segmented execution under heavy noise:
    when a segment produces no feasible state, there is no valid input for
    the next segment and optimization terminates early (paper, Section 5.3).
    """


class NoFeasibleStateError(SolverError):
    """Raised when noise destroys every feasible state in a segment output."""
