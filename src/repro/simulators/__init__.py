"""Quantum circuit simulators and noise models.

Replaces Qiskit-Aer / DDSim / CUDA-Quantum from the original artifact:

* :mod:`repro.simulators.statevector` — dense statevector simulation for
  the baselines (HEA / P-QAOA / Choco-Q need ``RX`` mixers and therefore
  dense amplitudes).
* :mod:`repro.simulators.sparsestate` — sparse amplitude-map simulation for
  Rasengan circuits, whose states live inside the small feasible subspace
  (the offline stand-in for DDSim).
* :mod:`repro.simulators.noise` — Kraus channels and per-gate noise models.
* :mod:`repro.simulators.density` — exact density-matrix evolution for
  small systems, used to validate the trajectory sampler.
* :mod:`repro.simulators.backends` — ideal and noisy shot-based backends,
  including fake IBM-Kyiv / IBM-Brisbane devices.
"""

from repro.simulators.statevector import StatevectorSimulator, simulate_statevector
from repro.simulators.sparsestate import SparseState
from repro.simulators.noise import (
    KrausChannel,
    NoiseModel,
    amplitude_damping,
    bit_flip,
    depolarizing,
    pauli_channel,
    phase_damping,
)
from repro.simulators.density import DensityMatrixSimulator
from repro.simulators.sampling import counts_from_probabilities, apply_readout_error
from repro.simulators.seeding import SeedBank, as_seed_sequence, make_rng
from repro.simulators.backends import (
    Backend,
    IdealBackend,
    NoisyTrajectoryBackend,
    TrajectoryBackend,
    fake_brisbane,
    fake_kyiv,
)
from repro.simulators.sparse_noisy import SparseTrajectoryBackend
from repro.simulators.observables import PauliString, PauliSum, ising_from_qubo

__all__ = [
    "StatevectorSimulator",
    "simulate_statevector",
    "SparseState",
    "KrausChannel",
    "NoiseModel",
    "depolarizing",
    "amplitude_damping",
    "phase_damping",
    "bit_flip",
    "pauli_channel",
    "DensityMatrixSimulator",
    "counts_from_probabilities",
    "apply_readout_error",
    "SeedBank",
    "as_seed_sequence",
    "make_rng",
    "Backend",
    "IdealBackend",
    "NoisyTrajectoryBackend",
    "TrajectoryBackend",
    "SparseTrajectoryBackend",
    "PauliString",
    "PauliSum",
    "ising_from_qubo",
    "fake_kyiv",
    "fake_brisbane",
]
