"""Kraus channels and per-gate noise models.

The paper evaluates Rasengan under depolarizing (Pauli) noise, amplitude
damping, and phase damping calibrated from IBM devices (Section 5.5), and
on two real machines whose dominant figure of merit is the two-qubit gate
error rate (Section 5.4).  This module provides those channels plus a
:class:`NoiseModel` that attaches channels to gate categories and readout.

Channels are used in two ways:

* exactly, by :class:`repro.simulators.density.DensityMatrixSimulator`;
* stochastically, by the trajectory backend, which samples one Kraus
  operator per application with probability ``||K_i |psi>||^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
PAULIS = {"I": _I, "X": _X, "Y": _Y, "Z": _Z}


@dataclass(frozen=True)
class KrausChannel:
    """A completely-positive trace-preserving map on one qubit.

    Attributes:
        name: human-readable channel name.
        operators: tuple of 2x2 Kraus matrices satisfying
            ``sum(K^dag K) = I``.
        unitary_mixture: when every Kraus operator is proportional to a
            unitary, ``(probabilities, unitaries)`` allowing state-independent
            sampling (used for Pauli channels).
    """

    name: str
    operators: Tuple[np.ndarray, ...]
    unitary_mixture: Optional[Tuple[Tuple[float, ...], Tuple[np.ndarray, ...]]] = None

    def __post_init__(self) -> None:
        total = sum(op.conj().T @ op for op in self.operators)
        if not np.allclose(total, np.eye(2), atol=1e-9):
            raise SimulationError(
                f"channel {self.name!r} is not trace preserving"
            )

    @property
    def is_unitary_mixture(self) -> bool:
        return self.unitary_mixture is not None


def depolarizing(probability: float) -> KrausChannel:
    """Single-qubit depolarizing channel with error probability ``p``.

    With probability ``p`` one of X, Y, Z is applied uniformly (the common
    device-calibration convention for a "gate error rate").
    """
    _check_probability(probability)
    p = probability
    ops = (
        math.sqrt(1 - p) * _I,
        math.sqrt(p / 3) * _X,
        math.sqrt(p / 3) * _Y,
        math.sqrt(p / 3) * _Z,
    )
    mixture = ((1 - p, p / 3, p / 3, p / 3), (_I, _X, _Y, _Z))
    return KrausChannel("depolarizing", ops, mixture)


def pauli_channel(px: float, py: float, pz: float) -> KrausChannel:
    """General Pauli channel with independent X/Y/Z probabilities."""
    for p in (px, py, pz):
        _check_probability(p)
    p_id = 1.0 - px - py - pz
    if p_id < -1e-12:
        raise SimulationError("Pauli probabilities exceed 1")
    p_id = max(p_id, 0.0)
    ops = (
        math.sqrt(p_id) * _I,
        math.sqrt(px) * _X,
        math.sqrt(py) * _Y,
        math.sqrt(pz) * _Z,
    )
    mixture = ((p_id, px, py, pz), (_I, _X, _Y, _Z))
    return KrausChannel("pauli", ops, mixture)


def bit_flip(probability: float) -> KrausChannel:
    """X error with probability ``p``."""
    _check_probability(probability)
    ops = (
        math.sqrt(1 - probability) * _I,
        math.sqrt(probability) * _X,
    )
    mixture = ((1 - probability, probability), (_I, _X))
    return KrausChannel("bit_flip", ops, mixture)


def amplitude_damping(gamma: float) -> KrausChannel:
    """T1 relaxation toward ``|0>`` with damping probability ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel("amplitude_damping", (k0, k1))


def phase_damping(lam: float) -> KrausChannel:
    """Pure dephasing with probability ``lam``."""
    _check_probability(lam)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return KrausChannel("phase_damping", (k0, k1))


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"probability {p} outside [0, 1]")


@dataclass
class NoiseModel:
    """Per-gate-category noise specification.

    Channels listed under ``single_qubit`` are applied to the qubit of every
    one-qubit gate; those under ``two_qubit`` to *both* qubits of every
    two-qubit gate (the usual calibration-data approximation).  Readout
    error flips each measured bit independently.

    Attributes:
        single_qubit: channels after each single-qubit gate.
        two_qubit: channels after each two-qubit gate, per involved qubit.
        readout_p01: probability of reading 1 when the qubit is 0.
        readout_p10: probability of reading 0 when the qubit is 1.
    """

    single_qubit: List[KrausChannel] = field(default_factory=list)
    two_qubit: List[KrausChannel] = field(default_factory=list)
    readout_p01: float = 0.0
    readout_p10: float = 0.0

    def channels_for(self, num_gate_qubits: int) -> List[KrausChannel]:
        """Channels to apply per qubit for a gate of the given width.

        Gates wider than two qubits are charged two-qubit noise; noisy
        backends are expected to run *decomposed* circuits, so this is a
        safety net rather than the normal path.
        """
        if num_gate_qubits <= 1:
            return self.single_qubit
        return self.two_qubit

    @property
    def has_readout_error(self) -> bool:
        return self.readout_p01 > 0 or self.readout_p10 > 0

    @classmethod
    def from_error_rates(
        cls,
        *,
        single_qubit_error: float = 0.0,
        two_qubit_error: float = 0.0,
        amplitude_damping_prob: float = 0.0,
        phase_damping_prob: float = 0.0,
        readout_error: float = 0.0,
    ) -> "NoiseModel":
        """Build the paper's composite model (Section 5.5).

        Depolarizing noise at the gate error rate, with optional amplitude
        and phase damping as fixed background on every gate.
        """
        single: List[KrausChannel] = []
        double: List[KrausChannel] = []
        if single_qubit_error > 0:
            single.append(depolarizing(single_qubit_error))
        if two_qubit_error > 0:
            double.append(depolarizing(two_qubit_error))
        for prob, factory in (
            (amplitude_damping_prob, amplitude_damping),
            (phase_damping_prob, phase_damping),
        ):
            if prob > 0:
                single.append(factory(prob))
                double.append(factory(prob))
        return cls(
            single_qubit=single,
            two_qubit=double,
            readout_p01=readout_error,
            readout_p10=readout_error,
        )
