"""Measurement sampling utilities.

Counts are dictionaries ``{basis index: occurrences}`` using the library's
little-endian integer encoding.  Helpers convert statevector probabilities
into shot counts and model classical readout error.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.exceptions import SimulationError


def counts_from_probabilities(
    probabilities: np.ndarray | Mapping[int, float],
    shots: int,
    rng: np.random.Generator,
) -> Dict[int, int]:
    """Sample ``shots`` outcomes from a probability distribution.

    Args:
        probabilities: dense array over all basis states, or a sparse
            mapping over occupied ones.
        shots: number of samples.
        rng: random generator (callers own seeding for reproducibility).

    Returns:
        ``{basis index: count}`` with only observed outcomes present.

    Raises:
        SimulationError: when the clamped probability mass is zero,
            negative, or non-finite — sampling from such input would
            silently emit NaNs (or crash deep inside ``multinomial``)
            instead of pointing at the upstream numerical problem.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if shots == 0:
        return {}
    if isinstance(probabilities, Mapping):
        keys = np.fromiter(probabilities.keys(), dtype=np.int64)
        probs = np.fromiter(probabilities.values(), dtype=np.float64)
    else:
        probs = np.asarray(probabilities, dtype=np.float64)
        keys = np.arange(probs.shape[0], dtype=np.int64)
    # Float cancellation (purification, Kraus renormalisation) can leave
    # tiny negative entries and a sum slightly off 1.0: clamp first, then
    # renormalise once over the clamped mass.
    probs = probs.clip(min=0.0)
    total = probs.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise SimulationError(
            f"cannot sample from a distribution with total probability "
            f"mass {total!r} after clamping negatives to zero"
        )
    probs = probs / total
    draws = rng.multinomial(shots, probs)
    return {int(key): int(count) for key, count in zip(keys, draws) if count}


def apply_readout_error(
    counts: Dict[int, int],
    num_qubits: int,
    p01: float,
    p10: float,
    rng: np.random.Generator,
) -> Dict[int, int]:
    """Flip measured bits independently with asymmetric probabilities.

    Args:
        counts: ideal counts.
        num_qubits: register width.
        p01: probability that a 0 is read as 1.
        p10: probability that a 1 is read as 0.
        rng: random generator.
    """
    if p01 == 0 and p10 == 0:
        return dict(counts)
    noisy: Dict[int, int] = {}
    for key, count in counts.items():
        for _ in range(count):
            value = key
            for qubit in range(num_qubits):
                bit = (value >> qubit) & 1
                flip_probability = p10 if bit else p01
                if flip_probability and rng.random() < flip_probability:
                    value ^= 1 << qubit
            noisy[value] = noisy.get(value, 0) + 1
    return noisy


def probabilities_from_counts(counts: Mapping[int, int]) -> Dict[int, float]:
    """Normalise counts into an empirical distribution."""
    total = sum(counts.values())
    if total == 0:
        return {}
    return {key: count / total for key, count in counts.items()}
