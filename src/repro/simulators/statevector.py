"""Dense statevector simulation.

Amplitudes are stored as a flat complex array indexed by the little-endian
integer encoding of the computational basis (see :mod:`repro.linalg.bitvec`).
Single-qubit and (multi-)controlled gates are applied with index arithmetic
rather than matrix products, so a gate costs ``O(2**n)`` regardless of its
control count.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Instruction, gate_category, single_qubit_matrix
from repro.exceptions import SimulationError
from repro.linalg.bitvec import bits_to_int
from repro import telemetry


class StatevectorSimulator:
    """Exact, noise-free statevector evolution.

    Example:
        >>> from repro.circuits import QuantumCircuit
        >>> qc = QuantumCircuit(2)
        >>> qc.h(0)
        >>> qc.cx(0, 1)
        >>> sim = StatevectorSimulator()
        >>> state = sim.run(qc)
        >>> abs(state[0]) ** 2 + abs(state[3]) ** 2  # doctest: +ELLIPSIS
        0.999...
    """

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Evolve the circuit and return the final statevector.

        ``measure`` instructions are ignored (sampling happens in the
        backend layer); ``reset`` is rejected because it is non-unitary.

        Args:
            circuit: circuit to simulate.
            initial_state: optional full statevector to start from.
            initial_bits: optional basis state to start from (exclusive with
                ``initial_state``).
        """
        n = circuit.num_qubits
        dim = 1 << n
        if initial_state is not None and initial_bits is not None:
            raise SimulationError("pass initial_state or initial_bits, not both")
        if initial_state is not None:
            state = np.asarray(initial_state, dtype=np.complex128).copy()
            if state.shape != (dim,):
                raise SimulationError(
                    f"initial state has shape {state.shape}, expected ({dim},)"
                )
        else:
            state = np.zeros(dim, dtype=np.complex128)
            start = bits_to_int(initial_bits) if initial_bits is not None else 0
            state[start] = 1.0
        with telemetry.span("statevector.run", qubits=n, gates=len(circuit)):
            for instr in circuit:
                state = apply_instruction(state, instr, n)
            if telemetry.enabled():
                telemetry.add("statevector.runs")
                telemetry.add("gates.total", len(circuit))
                telemetry.add(
                    "gates.cx",
                    sum(1 for instr in circuit if gate_category(instr) == "2q"),
                )
        return state

    def probabilities(
        self,
        circuit: QuantumCircuit,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Measurement probability of every basis state after the circuit."""
        state = self.run(circuit, initial_bits=initial_bits)
        return np.abs(state) ** 2


def apply_instruction(state: np.ndarray, instr: Instruction, n: int) -> np.ndarray:
    """Apply one instruction to a statevector in place (returns it too)."""
    name = instr.name
    if name in ("barrier", "measure"):
        return state
    if name == "reset":
        raise SimulationError("reset is not supported by the pure-state simulator")
    if name == "swap":
        a, b = instr.qubits
        return _apply_swap(state, a, b, n)
    base = single_qubit_matrix(instr.base_name, instr.params)
    if instr.num_controls == 0:
        return apply_single_qubit(state, base, instr.qubits[0], n)
    return apply_controlled(
        state, base, instr.controls, instr.control_pattern, instr.target, n
    )


def apply_single_qubit(
    state: np.ndarray, matrix: np.ndarray, qubit: int, n: int
) -> np.ndarray:
    """Apply a 2x2 unitary to ``qubit``."""
    if qubit < 0 or qubit >= n:
        raise SimulationError(f"qubit {qubit} out of range")
    low = 1 << qubit
    reshaped = state.reshape(-1, 2, low)
    updated = np.einsum("ij,ajb->aib", matrix, reshaped)
    state[:] = updated.reshape(-1)
    return state


def apply_controlled(
    state: np.ndarray,
    base: np.ndarray,
    controls: Sequence[int],
    pattern: Sequence[int],
    target: int,
    n: int,
) -> np.ndarray:
    """Apply a 2x2 unitary on ``target`` where every control matches."""
    indices = np.arange(state.shape[0], dtype=np.int64)
    mask = np.ones(state.shape[0], dtype=bool)
    for control, wanted in zip(controls, pattern):
        mask &= ((indices >> control) & 1) == wanted
    mask &= ((indices >> target) & 1) == 0
    i0 = indices[mask]
    i1 = i0 | (1 << target)
    a0 = state[i0].copy()
    a1 = state[i1].copy()
    state[i0] = base[0, 0] * a0 + base[0, 1] * a1
    state[i1] = base[1, 0] * a0 + base[1, 1] * a1
    return state


def _apply_swap(state: np.ndarray, a: int, b: int, n: int) -> np.ndarray:
    indices = np.arange(state.shape[0], dtype=np.int64)
    bit_a = (indices >> a) & 1
    bit_b = (indices >> b) & 1
    differs = bit_a != bit_b
    swapped = indices ^ ((1 << a) | (1 << b))
    new_state = state.copy()
    new_state[indices[differs]] = state[swapped[differs]]
    state[:] = new_state
    return state


def simulate_statevector(
    circuit: QuantumCircuit,
    initial_bits: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Convenience wrapper: one-shot exact simulation."""
    return StatevectorSimulator().run(circuit, initial_bits=initial_bits)
