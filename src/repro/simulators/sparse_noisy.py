"""Sparse Kraus-trajectory backend for feasible-subspace circuits.

The dense trajectory backend caps out around 16 qubits (one full
statevector per trajectory).  Rasengan's circuits, however, keep their
support near the feasible subspace even *during* a decomposed transition
operator (superposition-creating gates are uncomputed by the ladders), so
Monte-Carlo noise trajectories can run on the sparse amplitude map
instead — which is how this reproduction executes honest gate-level noisy
Rasengan at the paper's 28+-variable scales (Figure 10d) without a GPU.

Pauli noise keeps states sparse exactly (X permutes, Z phases); amplitude
and phase damping are diagonal-or-collapse Kraus maps, also
sparsity-preserving.  Every channel supported by
:class:`~repro.simulators.noise.NoiseModel` works here.

Trajectory scheduling, seeding, and fan-out live in the shared
:class:`~repro.simulators.backends.TrajectoryBackend` base; this class
only supplies the sparse per-trajectory evolution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_category
from repro.exceptions import SimulationError
from repro.simulators.backends import TrajectoryBackend
from repro.simulators.noise import KrausChannel, NoiseModel
from repro.simulators.seeding import SeedLike
from repro.simulators.sparsestate import SparseState
from repro import telemetry


class SparseTrajectoryBackend(TrajectoryBackend):
    """Monte-Carlo Kraus trajectories on sparse amplitude maps.

    Args:
        noise_model: per-gate-category channels + readout error.
        seed: RNG seed.
        name: backend name.
        max_trajectories: shots are spread over at most this many
            trajectories.
        support_limit: safety cap on the sparse support per trajectory;
            exceeding it raises (pick the dense backend instead).
    """

    _span_name = "sparse_noisy.run"

    def __init__(
        self,
        noise_model: NoiseModel,
        seed: SeedLike = None,
        name: str = "sparse_noisy",
        max_trajectories: int = 64,
        support_limit: int = 200_000,
    ) -> None:
        super().__init__(
            noise_model, seed=seed, name=name, max_trajectories=max_trajectories
        )
        self.support_limit = support_limit

    # ------------------------------------------------------------------
    def _trajectory_probabilities(
        self,
        flat: QuantumCircuit,
        num_qubits: int,
        initial_bits: Optional[Sequence[int]],
        rng: np.random.Generator,
    ):
        return self._run_trajectory(flat, num_qubits, initial_bits, rng).probabilities()

    def _run_trajectory(
        self,
        flat: QuantumCircuit,
        n: int,
        initial_bits: Optional[Sequence[int]],
        rng: np.random.Generator,
    ) -> SparseState:
        if initial_bits is not None:
            state = SparseState.from_bits(list(initial_bits))
        else:
            state = SparseState(n)
        peak = len(state.amplitudes)
        for instr in flat:
            if not instr.is_unitary:
                continue
            state.apply_instruction(instr)
            support = len(state.amplitudes)
            if support > peak:
                peak = support
            if support > self.support_limit:
                raise SimulationError(
                    f"sparse support exceeded {self.support_limit}; "
                    "this circuit needs the dense backend"
                )
            width = 1 if gate_category(instr) == "1q" else 2
            for channel in self.noise_model.channels_for(width):
                for qubit in instr.qubits:
                    self._sample_kraus(state, channel, qubit, rng)
        state.normalize()
        telemetry.observe("sparse.amplitudes", peak)
        return state

    def _sample_kraus(
        self,
        state: SparseState,
        channel: KrausChannel,
        qubit: int,
        rng: np.random.Generator,
    ) -> None:
        if channel.is_unitary_mixture:
            probabilities, unitaries = channel.unitary_mixture
            choice = rng.choice(len(probabilities), p=probabilities)
            unitary = unitaries[choice]
            if not np.allclose(unitary, np.eye(2)):
                state.apply_single_qubit_matrix(unitary, qubit)
            return
        candidates: List[SparseState] = []
        weights: List[float] = []
        for op in channel.operators:
            candidate = state.copy()
            candidate.apply_single_qubit_matrix(op, qubit)
            weight = candidate.norm() ** 2
            candidates.append(candidate)
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            raise SimulationError("trajectory collapsed to zero norm")
        probabilities = [w / total for w in weights]
        choice = rng.choice(len(candidates), p=probabilities)
        chosen = candidates[choice]
        chosen.normalize()
        state.amplitudes = chosen.amplitudes
