"""Sparse Kraus-trajectory backend for feasible-subspace circuits.

The dense trajectory backend caps out around 16 qubits (one full
statevector per trajectory).  Rasengan's circuits, however, keep their
support near the feasible subspace even *during* a decomposed transition
operator (superposition-creating gates are uncomputed by the ladders), so
Monte-Carlo noise trajectories can run on the sparse amplitude map
instead — which is how this reproduction executes honest gate-level noisy
Rasengan at the paper's 28+-variable scales (Figure 10d) without a GPU.

Pauli noise keeps states sparse exactly (X permutes, Z phases); amplitude
and phase damping are diagonal-or-collapse Kraus maps, also
sparsity-preserving.  Every channel supported by
:class:`~repro.simulators.noise.NoiseModel` works here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompose import decompose_circuit
from repro.circuits.gates import gate_category
from repro.exceptions import SimulationError
from repro.simulators.backends import Backend
from repro.simulators.noise import KrausChannel, NoiseModel
from repro.simulators.sampling import apply_readout_error, counts_from_probabilities
from repro.simulators.sparsestate import SparseState
from repro import telemetry


class SparseTrajectoryBackend(Backend):
    """Monte-Carlo Kraus trajectories on sparse amplitude maps.

    Args:
        noise_model: per-gate-category channels + readout error.
        seed: RNG seed.
        name: backend name.
        max_trajectories: shots are spread over at most this many
            trajectories.
        support_limit: safety cap on the sparse support per trajectory;
            exceeding it raises (pick the dense backend instead).
    """

    def __init__(
        self,
        noise_model: NoiseModel,
        seed: Optional[int] = None,
        name: str = "sparse_noisy",
        max_trajectories: int = 64,
        support_limit: int = 200_000,
    ) -> None:
        if max_trajectories < 1:
            raise SimulationError("max_trajectories must be >= 1")
        self.name = name
        self.noise_model = noise_model
        self.max_trajectories = max_trajectories
        self.support_limit = support_limit
        self._rng = np.random.default_rng(seed)

    @property
    def is_noisy(self) -> bool:
        return True

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        if shots <= 0:
            return {}
        flat = decompose_circuit(circuit)
        n = flat.num_qubits
        trajectories = min(shots, self.max_trajectories)
        base, remainder = divmod(shots, trajectories)
        counts: Dict[int, int] = {}
        with telemetry.span(
            "sparse_noisy.run",
            backend=self.name,
            shots=shots,
            trajectories=trajectories,
            gates=len(flat),
        ):
            if telemetry.enabled():
                telemetry.add("backend.executions")
                telemetry.add("backend.shots", shots)
                telemetry.add("noise.trajectories", trajectories)
                # Every trajectory replays the full decomposed circuit.
                telemetry.add("gates.total", trajectories * len(flat))
                telemetry.add(
                    "gates.cx",
                    trajectories
                    * sum(1 for instr in flat if gate_category(instr) == "2q"),
                )
            for index in range(trajectories):
                shots_here = base + (1 if index < remainder else 0)
                if shots_here == 0:
                    continue
                state = self._run_trajectory(flat, n, initial_bits)
                sampled = counts_from_probabilities(
                    state.probabilities(), shots_here, self._rng
                )
                for key, value in sampled.items():
                    counts[key] = counts.get(key, 0) + value
            if self.noise_model.has_readout_error:
                counts = apply_readout_error(
                    counts,
                    n,
                    self.noise_model.readout_p01,
                    self.noise_model.readout_p10,
                    self._rng,
                )
        return counts

    # ------------------------------------------------------------------
    def _run_trajectory(
        self,
        flat: QuantumCircuit,
        n: int,
        initial_bits: Optional[Sequence[int]],
    ) -> SparseState:
        if initial_bits is not None:
            state = SparseState.from_bits(list(initial_bits))
        else:
            state = SparseState(n)
        peak = len(state.amplitudes)
        for instr in flat:
            if not instr.is_unitary:
                continue
            state.apply_instruction(instr)
            support = len(state.amplitudes)
            if support > peak:
                peak = support
            if support > self.support_limit:
                raise SimulationError(
                    f"sparse support exceeded {self.support_limit}; "
                    "this circuit needs the dense backend"
                )
            width = 1 if gate_category(instr) == "1q" else 2
            for channel in self.noise_model.channels_for(width):
                for qubit in instr.qubits:
                    self._sample_kraus(state, channel, qubit)
        state.normalize()
        telemetry.observe("sparse.amplitudes", peak)
        return state

    def _sample_kraus(
        self, state: SparseState, channel: KrausChannel, qubit: int
    ) -> None:
        if channel.is_unitary_mixture:
            probabilities, unitaries = channel.unitary_mixture
            choice = self._rng.choice(len(probabilities), p=probabilities)
            unitary = unitaries[choice]
            if not np.allclose(unitary, np.eye(2)):
                state.apply_single_qubit_matrix(unitary, qubit)
            return
        candidates: List[SparseState] = []
        weights: List[float] = []
        for op in channel.operators:
            candidate = state.copy()
            candidate.apply_single_qubit_matrix(op, qubit)
            weight = candidate.norm() ** 2
            candidates.append(candidate)
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            raise SimulationError("trajectory collapsed to zero norm")
        probabilities = [w / total for w in weights]
        choice = self._rng.choice(len(candidates), p=probabilities)
        chosen = candidates[choice]
        chosen.normalize()
        state.amplitudes = chosen.amplitudes
