"""Shot-based execution backends.

A backend takes a circuit and returns measurement counts.  Three flavours:

* :class:`IdealBackend` — exact dense simulation, multinomial sampling.
* :class:`NoisyTrajectoryBackend` — Monte-Carlo Kraus trajectories over the
  {1q, CX}-decomposed circuit, plus readout error.  This is the offline
  stand-in for IBM hardware.
* :func:`fake_kyiv` / :func:`fake_brisbane` — trajectory backends calibrated
  with the error rates the paper reports for the two devices it used
  (two-qubit error 1.2% on Kyiv, 0.82% on Brisbane; single-qubit error
  0.035%; ~1% readout error).

Trajectory backends share :class:`TrajectoryBackend`: per-trajectory child
seeds are spawned from the backend's :class:`~repro.simulators.seeding.SeedBank`
before dispatch, and independent trajectories run through an injectable
mapper (set by the execution engine) — so a process-pool fan-out consumes
exactly the same seed tree as a serial run and produces identical counts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompose import decompose_circuit
from repro.circuits.gates import gate_category
from repro.exceptions import SimulationError
from repro.linalg.bitvec import bits_to_int
from repro.simulators.noise import KrausChannel, NoiseModel
from repro.simulators.sampling import apply_readout_error, counts_from_probabilities
from repro.simulators.seeding import SeedBank, SeedLike, make_rng
from repro.simulators.statevector import StatevectorSimulator, apply_instruction
from repro.simulators.statevector import apply_single_qubit
from repro import telemetry


class Backend(abc.ABC):
    """Common interface: run a circuit for a number of shots."""

    name: str = "backend"

    @abc.abstractmethod
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        """Execute and return measurement counts ``{basis index: count}``."""

    @property
    def is_noisy(self) -> bool:
        return False

    def reseed(self, seed: SeedLike) -> None:
        """Reset the backend's random state from ``seed`` (no-op when the
        backend is deterministic)."""

    def set_mapper(self, mapper: Optional[Callable]) -> None:
        """Install a map function for independent work units (engine hook);
        ignored by backends with no fan-out."""


class IdealBackend(Backend):
    """Noise-free sampling from the exact statevector."""

    def __init__(self, seed: SeedLike = None, name: str = "ideal") -> None:
        self.name = name
        self._rng = make_rng(seed)
        self._simulator = StatevectorSimulator()

    def reseed(self, seed: SeedLike) -> None:
        self._rng = make_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        with telemetry.span("backend.run", backend=self.name, shots=shots):
            if telemetry.enabled():
                telemetry.add("backend.executions")
                telemetry.add("backend.shots", shots)
            probabilities = self._simulator.probabilities(
                circuit, initial_bits=initial_bits
            )
            return counts_from_probabilities(probabilities, shots, self._rng)

    def probabilities(
        self,
        circuit: QuantumCircuit,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Exact outcome distribution (shot-noise free)."""
        return self._simulator.probabilities(circuit, initial_bits=initial_bits)


# ----------------------------------------------------------------------
# Monte-Carlo trajectory backends
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TrajectoryTask:
    """One picklable trajectory work unit (seed pre-spawned parent-side)."""

    backend: "TrajectoryBackend"
    flat: QuantumCircuit
    num_qubits: int
    initial_bits: Optional[Tuple[int, ...]]
    shots: int
    seed: np.random.SeedSequence


def _run_trajectory_task(task: _TrajectoryTask) -> Dict[int, int]:
    """Evolve one trajectory and sample its shots (module-level so the
    engine's process pool can dispatch it)."""
    rng = np.random.default_rng(task.seed)
    probabilities = task.backend._trajectory_probabilities(
        task.flat, task.num_qubits, task.initial_bits, rng
    )
    return counts_from_probabilities(probabilities, task.shots, rng)


class TrajectoryBackend(Backend):
    """Shared Monte-Carlo trajectory plumbing (dense and sparse).

    Each trajectory is one pure-state evolution where, after every gate of
    the decomposed circuit, a Kraus operator of each attached channel is
    sampled with probability ``||K|psi>||^2``.  Shots are spread across
    ``max_trajectories`` trajectories (several measurement samples share a
    trajectory, a standard variance/cost trade-off).  Subclasses provide
    :meth:`_trajectory_probabilities` for their state representation.
    """

    #: Telemetry span name of one :meth:`run` call.
    _span_name = "noisy.run"

    def __init__(
        self,
        noise_model: NoiseModel,
        seed: SeedLike = None,
        name: str = "noisy",
        max_trajectories: int = 64,
    ) -> None:
        if max_trajectories < 1:
            raise SimulationError("max_trajectories must be >= 1")
        self.name = name
        self.noise_model = noise_model
        self.max_trajectories = max_trajectories
        self._bank = SeedBank(seed)
        self._mapper: Optional[Callable] = None

    @property
    def is_noisy(self) -> bool:
        return True

    def reseed(self, seed: SeedLike) -> None:
        self._bank = SeedBank(seed)

    def set_mapper(self, mapper: Optional[Callable]) -> None:
        self._mapper = mapper

    def __getstate__(self):
        # The mapper closes over the engine; trajectory tasks that embed
        # this backend must not drag the whole engine graph into workers
        # (and workers never fan out further).
        state = self.__dict__.copy()
        state["_mapper"] = None
        return state

    @abc.abstractmethod
    def _trajectory_probabilities(
        self,
        flat: QuantumCircuit,
        num_qubits: int,
        initial_bits: Optional[Sequence[int]],
        rng: np.random.Generator,
    ):
        """One trajectory's outcome distribution (dense array or mapping)."""

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        if shots <= 0:
            return {}
        flat = decompose_circuit(circuit)
        n = flat.num_qubits
        trajectories = min(shots, self.max_trajectories)
        base, remainder = divmod(shots, trajectories)
        # Spawn the whole seed tree up front (one child per trajectory,
        # one for readout) so serial and parallel runs are bit-identical.
        seeds = self._bank.spawn(trajectories + 1)
        readout_rng = np.random.default_rng(seeds[-1])
        bits = tuple(int(b) for b in initial_bits) if initial_bits is not None else None
        tasks = [
            _TrajectoryTask(
                backend=self,
                flat=flat,
                num_qubits=n,
                initial_bits=bits,
                shots=base + (1 if index < remainder else 0),
                seed=seeds[index],
            )
            for index in range(trajectories)
            if base + (1 if index < remainder else 0) > 0
        ]
        counts: Dict[int, int] = {}
        with telemetry.span(
            self._span_name,
            backend=self.name,
            shots=shots,
            trajectories=trajectories,
            gates=len(flat),
        ):
            if telemetry.enabled():
                telemetry.add("backend.executions")
                telemetry.add("backend.shots", shots)
                telemetry.add("noise.trajectories", trajectories)
                # Every trajectory replays the full decomposed circuit.
                telemetry.add("gates.total", trajectories * len(flat))
                telemetry.add(
                    "gates.cx",
                    trajectories
                    * sum(1 for instr in flat if gate_category(instr) == "2q"),
                )
            mapper = self._mapper
            if mapper is None:
                outputs = [_run_trajectory_task(task) for task in tasks]
            else:
                outputs = mapper(
                    _run_trajectory_task, tasks, label="trajectories"
                )
            for sampled in outputs:
                for key, count in sampled.items():
                    counts[key] = counts.get(key, 0) + count
            if self.noise_model.has_readout_error:
                counts = apply_readout_error(
                    counts,
                    n,
                    self.noise_model.readout_p01,
                    self.noise_model.readout_p10,
                    readout_rng,
                )
        return counts


class NoisyTrajectoryBackend(TrajectoryBackend):
    """Dense-statevector Monte-Carlo Kraus-trajectory simulation."""

    def _trajectory_probabilities(
        self,
        flat: QuantumCircuit,
        num_qubits: int,
        initial_bits: Optional[Sequence[int]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        state = self._run_trajectory(flat, num_qubits, initial_bits, rng)
        return np.abs(state) ** 2

    # ------------------------------------------------------------------
    def _run_trajectory(
        self,
        flat: QuantumCircuit,
        n: int,
        initial_bits: Optional[Sequence[int]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        state = np.zeros(1 << n, dtype=np.complex128)
        start = bits_to_int(initial_bits) if initial_bits is not None else 0
        state[start] = 1.0
        for instr in flat:
            if not instr.is_unitary:
                continue
            state = apply_instruction(state, instr, n)
            width = 1 if gate_category(instr) == "1q" else 2
            for channel in self.noise_model.channels_for(width):
                for qubit in instr.qubits:
                    state = self._sample_kraus(state, channel, qubit, n, rng)
        return state

    def _sample_kraus(
        self,
        state: np.ndarray,
        channel: KrausChannel,
        qubit: int,
        n: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if channel.is_unitary_mixture:
            probabilities, unitaries = channel.unitary_mixture
            choice = rng.choice(len(probabilities), p=probabilities)
            unitary = unitaries[choice]
            if np.allclose(unitary, np.eye(2)):
                return state
            return apply_single_qubit(state, unitary, qubit, n)
        candidates: List[np.ndarray] = []
        weights: List[float] = []
        for op in channel.operators:
            candidate = apply_single_qubit(state.copy(), op, qubit, n)
            weight = float(np.vdot(candidate, candidate).real)
            candidates.append(candidate)
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            raise SimulationError("trajectory collapsed to zero norm")
        probabilities = [w / total for w in weights]
        choice = rng.choice(len(candidates), p=probabilities)
        chosen = candidates[choice]
        norm = np.sqrt(weights[choice])
        return chosen / norm


# ----------------------------------------------------------------------
# Fake devices (paper, Section 5.4)
# ----------------------------------------------------------------------
#: Error rates quoted in the paper for the two IBM devices.
KYIV_TWO_QUBIT_ERROR = 0.012
BRISBANE_TWO_QUBIT_ERROR = 0.0082
SINGLE_QUBIT_ERROR = 0.00035
READOUT_ERROR = 0.01


def fake_kyiv(seed: SeedLike = None, **kwargs) -> NoisyTrajectoryBackend:
    """Noisy backend calibrated to the paper's IBM-Kyiv error rates."""
    model = NoiseModel.from_error_rates(
        single_qubit_error=SINGLE_QUBIT_ERROR,
        two_qubit_error=KYIV_TWO_QUBIT_ERROR,
        readout_error=READOUT_ERROR,
    )
    return NoisyTrajectoryBackend(model, seed=seed, name="fake_kyiv", **kwargs)


def fake_brisbane(seed: SeedLike = None, **kwargs) -> NoisyTrajectoryBackend:
    """Noisy backend calibrated to the paper's IBM-Brisbane error rates."""
    model = NoiseModel.from_error_rates(
        single_qubit_error=SINGLE_QUBIT_ERROR,
        two_qubit_error=BRISBANE_TWO_QUBIT_ERROR,
        readout_error=READOUT_ERROR,
    )
    return NoisyTrajectoryBackend(model, seed=seed, name="fake_brisbane", **kwargs)
