"""Shot-based execution backends.

A backend takes a circuit and returns measurement counts.  Three flavours:

* :class:`IdealBackend` — exact dense simulation, multinomial sampling.
* :class:`NoisyTrajectoryBackend` — Monte-Carlo Kraus trajectories over the
  {1q, CX}-decomposed circuit, plus readout error.  This is the offline
  stand-in for IBM hardware.
* :func:`fake_kyiv` / :func:`fake_brisbane` — trajectory backends calibrated
  with the error rates the paper reports for the two devices it used
  (two-qubit error 1.2% on Kyiv, 0.82% on Brisbane; single-qubit error
  0.035%; ~1% readout error).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompose import decompose_circuit
from repro.circuits.gates import Instruction, gate_category
from repro.exceptions import SimulationError
from repro.linalg.bitvec import bits_to_int
from repro.simulators.noise import KrausChannel, NoiseModel
from repro.simulators.sampling import apply_readout_error, counts_from_probabilities
from repro.simulators.statevector import StatevectorSimulator, apply_instruction
from repro.simulators.statevector import apply_single_qubit
from repro import telemetry


class Backend(abc.ABC):
    """Common interface: run a circuit for a number of shots."""

    name: str = "backend"

    @abc.abstractmethod
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        """Execute and return measurement counts ``{basis index: count}``."""

    @property
    def is_noisy(self) -> bool:
        return False


class IdealBackend(Backend):
    """Noise-free sampling from the exact statevector."""

    def __init__(self, seed: Optional[int] = None, name: str = "ideal") -> None:
        self.name = name
        self._rng = np.random.default_rng(seed)
        self._simulator = StatevectorSimulator()

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        with telemetry.span("backend.run", backend=self.name, shots=shots):
            if telemetry.enabled():
                telemetry.add("backend.executions")
                telemetry.add("backend.shots", shots)
            probabilities = self._simulator.probabilities(
                circuit, initial_bits=initial_bits
            )
            return counts_from_probabilities(probabilities, shots, self._rng)

    def probabilities(
        self,
        circuit: QuantumCircuit,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Exact outcome distribution (shot-noise free)."""
        return self._simulator.probabilities(circuit, initial_bits=initial_bits)


class NoisyTrajectoryBackend(Backend):
    """Monte-Carlo Kraus-trajectory simulation of a noisy device.

    Each trajectory is one pure-state evolution where, after every gate of
    the decomposed circuit, a Kraus operator of each attached channel is
    sampled with probability ``||K|psi>||^2``.  Shots are spread across
    ``max_trajectories`` trajectories (several measurement samples share a
    trajectory, a standard variance/cost trade-off).
    """

    def __init__(
        self,
        noise_model: NoiseModel,
        seed: Optional[int] = None,
        name: str = "noisy",
        max_trajectories: int = 64,
    ) -> None:
        if max_trajectories < 1:
            raise SimulationError("max_trajectories must be >= 1")
        self.name = name
        self.noise_model = noise_model
        self.max_trajectories = max_trajectories
        self._rng = np.random.default_rng(seed)

    @property
    def is_noisy(self) -> bool:
        return True

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        if shots <= 0:
            return {}
        flat = decompose_circuit(circuit)
        n = flat.num_qubits
        trajectories = min(shots, self.max_trajectories)
        base, remainder = divmod(shots, trajectories)
        counts: Dict[int, int] = {}
        with telemetry.span(
            "noisy.run",
            backend=self.name,
            shots=shots,
            trajectories=trajectories,
            gates=len(flat),
        ):
            if telemetry.enabled():
                telemetry.add("backend.executions")
                telemetry.add("backend.shots", shots)
                telemetry.add("noise.trajectories", trajectories)
                # Every trajectory replays the full decomposed circuit.
                telemetry.add("gates.total", trajectories * len(flat))
                telemetry.add(
                    "gates.cx",
                    trajectories
                    * sum(1 for instr in flat if gate_category(instr) == "2q"),
                )
            for index in range(trajectories):
                shots_here = base + (1 if index < remainder else 0)
                if shots_here == 0:
                    continue
                state = self._run_trajectory(flat, n, initial_bits)
                probabilities = np.abs(state) ** 2
                sampled = counts_from_probabilities(
                    probabilities, shots_here, self._rng
                )
                for key, count in sampled.items():
                    counts[key] = counts.get(key, 0) + count
            if self.noise_model.has_readout_error:
                counts = apply_readout_error(
                    counts,
                    n,
                    self.noise_model.readout_p01,
                    self.noise_model.readout_p10,
                    self._rng,
                )
        return counts

    # ------------------------------------------------------------------
    def _run_trajectory(
        self,
        flat: QuantumCircuit,
        n: int,
        initial_bits: Optional[Sequence[int]],
    ) -> np.ndarray:
        state = np.zeros(1 << n, dtype=np.complex128)
        start = bits_to_int(initial_bits) if initial_bits is not None else 0
        state[start] = 1.0
        for instr in flat:
            if not instr.is_unitary:
                continue
            state = apply_instruction(state, instr, n)
            width = 1 if gate_category(instr) == "1q" else 2
            for channel in self.noise_model.channels_for(width):
                for qubit in instr.qubits:
                    state = self._sample_kraus(state, channel, qubit, n)
        return state

    def _sample_kraus(
        self,
        state: np.ndarray,
        channel: KrausChannel,
        qubit: int,
        n: int,
    ) -> np.ndarray:
        if channel.is_unitary_mixture:
            probabilities, unitaries = channel.unitary_mixture
            choice = self._rng.choice(len(probabilities), p=probabilities)
            unitary = unitaries[choice]
            if np.allclose(unitary, np.eye(2)):
                return state
            return apply_single_qubit(state, unitary, qubit, n)
        candidates: List[np.ndarray] = []
        weights: List[float] = []
        for op in channel.operators:
            candidate = apply_single_qubit(state.copy(), op, qubit, n)
            weight = float(np.vdot(candidate, candidate).real)
            candidates.append(candidate)
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            raise SimulationError("trajectory collapsed to zero norm")
        probabilities = [w / total for w in weights]
        choice = self._rng.choice(len(candidates), p=probabilities)
        chosen = candidates[choice]
        norm = np.sqrt(weights[choice])
        return chosen / norm


# ----------------------------------------------------------------------
# Fake devices (paper, Section 5.4)
# ----------------------------------------------------------------------
#: Error rates quoted in the paper for the two IBM devices.
KYIV_TWO_QUBIT_ERROR = 0.012
BRISBANE_TWO_QUBIT_ERROR = 0.0082
SINGLE_QUBIT_ERROR = 0.00035
READOUT_ERROR = 0.01


def fake_kyiv(seed: Optional[int] = None, **kwargs) -> NoisyTrajectoryBackend:
    """Noisy backend calibrated to the paper's IBM-Kyiv error rates."""
    model = NoiseModel.from_error_rates(
        single_qubit_error=SINGLE_QUBIT_ERROR,
        two_qubit_error=KYIV_TWO_QUBIT_ERROR,
        readout_error=READOUT_ERROR,
    )
    return NoisyTrajectoryBackend(model, seed=seed, name="fake_kyiv", **kwargs)


def fake_brisbane(seed: Optional[int] = None, **kwargs) -> NoisyTrajectoryBackend:
    """Noisy backend calibrated to the paper's IBM-Brisbane error rates."""
    model = NoiseModel.from_error_rates(
        single_qubit_error=SINGLE_QUBIT_ERROR,
        two_qubit_error=BRISBANE_TWO_QUBIT_ERROR,
        readout_error=READOUT_ERROR,
    )
    return NoisyTrajectoryBackend(model, seed=seed, name="fake_brisbane", **kwargs)
