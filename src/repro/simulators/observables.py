"""Pauli-string observables and expectation values.

Provides the observable layer a variational stack needs: sparse Pauli
strings, their expectation against statevectors or measured counts (for
Z-type strings), and the QUBO -> Ising conversion that underlies the
penalty methods' objective Hamiltonians.

Conventions: a Pauli string is a mapping ``{qubit: 'X'|'Y'|'Z'}`` with
identity elsewhere, plus a real/complex coefficient.  Little-endian qubit
indexing throughout, like the rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.exceptions import SimulationError

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class PauliString:
    """One weighted Pauli product, e.g. ``0.5 * Z0 Z2``.

    Attributes:
        paulis: mapping qubit -> 'X'/'Y'/'Z' (identity where absent).
        coefficient: real or complex weight.
    """

    paulis: Tuple[Tuple[int, str], ...]
    coefficient: complex = 1.0

    @classmethod
    def from_dict(
        cls, paulis: Mapping[int, str], coefficient: complex = 1.0
    ) -> "PauliString":
        for qubit, label in paulis.items():
            if label not in ("X", "Y", "Z"):
                raise SimulationError(f"unknown Pauli label {label!r}")
            if qubit < 0:
                raise SimulationError("negative qubit index")
        return cls(tuple(sorted(paulis.items())), coefficient)

    @property
    def is_diagonal(self) -> bool:
        """True when the string contains only Z factors."""
        return all(label == "Z" for _, label in self.paulis)

    def min_qubits(self) -> int:
        return 1 + max((q for q, _ in self.paulis), default=-1)

    # ------------------------------------------------------------------
    def expectation(self, state: np.ndarray, num_qubits: int) -> complex:
        """``<state| P |state>`` for a dense statevector."""
        if state.shape != (1 << num_qubits,):
            raise SimulationError("state length does not match num_qubits")
        transformed = self.apply(state, num_qubits)
        return complex(np.vdot(state, transformed)) * self.coefficient

    def apply(self, state: np.ndarray, num_qubits: int) -> np.ndarray:
        """``P |state>`` with unit coefficient (coefficient applied by
        :meth:`expectation`)."""
        from repro.simulators.statevector import apply_single_qubit

        result = state.copy()
        for qubit, label in self.paulis:
            if qubit >= num_qubits:
                raise SimulationError(
                    f"Pauli on qubit {qubit} outside {num_qubits}-qubit register"
                )
            apply_single_qubit(result, _PAULI_MATRICES[label], qubit, num_qubits)
        return result

    def expectation_from_counts(self, counts: Mapping[int, int]) -> float:
        """Expectation from measured bitstrings (diagonal strings only)."""
        if not self.is_diagonal:
            raise SimulationError(
                "only Z-type strings have an expectation over Z-basis counts"
            )
        total = sum(counts.values())
        if total == 0:
            raise SimulationError("empty counts")
        acc = 0.0
        for key, count in counts.items():
            parity = 1.0
            for qubit, _ in self.paulis:
                if (key >> qubit) & 1:
                    parity = -parity
            acc += parity * count
        return float(self.coefficient.real) * acc / total

    def to_matrix(self, num_qubits: int) -> np.ndarray:
        """Dense matrix (verification only)."""
        labels = ["I"] * num_qubits
        for qubit, label in self.paulis:
            labels[qubit] = label
        matrix = np.array([[1.0 + 0j]])
        for label in labels:  # qubit 0 least significant -> kron from left
            matrix = np.kron(_PAULI_MATRICES[label], matrix)
        return self.coefficient * matrix


@dataclass
class PauliSum:
    """A weighted sum of Pauli strings (an observable/Hamiltonian)."""

    terms: List[PauliString] = field(default_factory=list)

    def add(self, paulis: Mapping[int, str], coefficient: complex) -> None:
        self.terms.append(PauliString.from_dict(paulis, coefficient))

    def expectation(self, state: np.ndarray, num_qubits: int) -> complex:
        return sum(
            (term.expectation(state, num_qubits) for term in self.terms),
            start=0.0 + 0.0j,
        )

    def to_matrix(self, num_qubits: int) -> np.ndarray:
        dim = 1 << num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for term in self.terms:
            matrix += term.to_matrix(num_qubits)
        return matrix

    @property
    def num_terms(self) -> int:
        return len(self.terms)


def ising_from_qubo(
    constant: float,
    linear: np.ndarray,
    quadratic: Mapping[Tuple[int, int], float],
) -> Tuple[float, PauliSum]:
    """Convert QUBO coefficients into an Ising Pauli sum.

    Substituting ``x_i = (1 - Z_i) / 2`` gives
    ``E = offset + sum h_i Z_i + sum J_ij Z_i Z_j``.

    Returns:
        ``(offset, observable)`` such that the observable's expectation on
        a computational basis state plus the offset equals the QUBO energy
        of the corresponding bitstring.
    """
    linear = np.asarray(linear, dtype=float)
    n = linear.size
    offset = float(constant) + float(linear.sum()) / 2.0
    fields = -linear / 2.0
    observable = PauliSum()
    for (i, j), coupling in quadratic.items():
        offset += coupling / 4.0
        fields[i] -= coupling / 4.0
        fields[j] -= coupling / 4.0
        observable.add({i: "Z", j: "Z"}, coupling / 4.0)
    for qubit in range(n):
        if abs(fields[qubit]) > 1e-12:
            observable.add({qubit: "Z"}, fields[qubit])
    return offset, observable
