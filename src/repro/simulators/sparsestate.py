"""Sparse amplitude-map simulation for feasible-subspace circuits.

Rasengan's circuits consist of X, CX, phase, and transition operators whose
action never leaves the (small) span of feasible basis states, so a
dictionary ``{basis index: amplitude}`` simulates them in time proportional
to the number of occupied amplitudes — the same asymptotic benefit the
original artifact gets from DDSim.

The fast path is :meth:`SparseState.apply_transition`, which applies the
transition-operator unitary ``exp(-i H(u) t)`` directly using the pairing
structure proved in the paper (Equation 6): basis states pair up as
``|x> <-> |x+u>`` when both are binary, and unpaired states are fixed
points.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Instruction, gate_category, single_qubit_matrix
from repro.exceptions import SimulationError
from repro.linalg.bitvec import bits_to_int, int_to_bits
from repro import telemetry

#: Amplitudes smaller than this fraction of the state norm are dropped
#: after each operation.
PRUNE_TOLERANCE = 1e-12


class SparseState:
    """A sparse statevector over ``num_qubits`` qubits."""

    def __init__(
        self,
        num_qubits: int,
        amplitudes: Optional[Dict[int, complex]] = None,
    ) -> None:
        self.num_qubits = num_qubits
        if amplitudes is None:
            amplitudes = {0: 1.0 + 0.0j}
        self.amplitudes: Dict[int, complex] = dict(amplitudes)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "SparseState":
        """Basis state ``|bits>``."""
        return cls(len(bits), {bits_to_int(bits): 1.0 + 0.0j})

    @classmethod
    def from_distribution(
        cls, num_qubits: int, probabilities: Dict[int, float]
    ) -> "SparseState":
        """Incoherent stand-in: amplitudes ``sqrt(p)`` (phases dropped).

        Used by segmented execution when a segment is re-initialised from
        measured probabilities — exactly the information the paper says is
        preserved across segments (Section 4.2).
        """
        amplitudes = {
            key: complex(math.sqrt(p)) for key, p in probabilities.items() if p > 0
        }
        state = cls(num_qubits, amplitudes)
        state.normalize()
        return state

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def norm(self) -> float:
        return math.sqrt(sum(abs(a) ** 2 for a in self.amplitudes.values()))

    def normalize(self) -> None:
        norm = self.norm()
        if norm == 0:
            raise SimulationError("cannot normalize the zero state")
        self.amplitudes = {k: a / norm for k, a in self.amplitudes.items()}

    def prune(self, tolerance: float = PRUNE_TOLERANCE) -> None:
        """Drop amplitudes negligible *relative to the current norm*.

        Non-unitary Kraus application and segmented execution leave the
        state unnormalised (callers own renormalisation), so an absolute
        cutoff would drop near-threshold amplitudes that dense simulation
        keeps once the overall norm has been scaled down.  Scaling the
        cutoff by the norm makes pruning invariant under that scaling;
        for a normalised state it reduces to the absolute tolerance.
        """
        norm = self.norm()
        if norm == 0.0:
            self.amplitudes = {}
            return
        cutoff = tolerance * norm
        self.amplitudes = {
            k: a for k, a in self.amplitudes.items() if abs(a) > cutoff
        }

    def probabilities(self) -> Dict[int, float]:
        """Measurement distribution over occupied basis states."""
        return {k: abs(a) ** 2 for k, a in self.amplitudes.items()}

    def support(self) -> Tuple[int, ...]:
        """Occupied basis-state indices, sorted."""
        return tuple(sorted(self.amplitudes))

    def to_dense(self) -> np.ndarray:
        state = np.zeros(1 << self.num_qubits, dtype=np.complex128)
        for key, amp in self.amplitudes.items():
            state[key] = amp
        return state

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_instruction(self, instr: Instruction) -> None:
        name = instr.name
        if name in ("barrier", "measure"):
            return
        if name == "x":
            self._apply_x(instr.qubits[0])
            return
        if name in ("p", "rz", "z", "s", "sdg", "t", "tdg"):
            self._apply_diagonal(instr)
            return
        if name in ("cx", "ccx", "mcx"):
            self._apply_controlled_x(instr)
            return
        if name in ("cz", "cp", "mcp"):
            self._apply_controlled_phase(instr)
            return
        if name in ("crx", "mcrx"):
            self._apply_controlled_rx(instr)
            return
        if name in ("h", "sx", "rx", "ry", "u", "y"):
            self._apply_general_single(instr)
            return
        raise SimulationError(
            f"no sparse application rule for gate {name!r}; "
            "use the dense simulator for general circuits"
        )

    def run(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit/state qubit count mismatch")
        with telemetry.span(
            "sparse.run", qubits=self.num_qubits, gates=len(circuit)
        ) as run_span:
            peak = len(self.amplitudes)
            for instr in circuit:
                self.apply_instruction(instr)
                if len(self.amplitudes) > peak:
                    peak = len(self.amplitudes)
            self.prune()
            if telemetry.enabled():
                telemetry.add("gates.total", len(circuit))
                telemetry.add(
                    "gates.cx",
                    sum(1 for instr in circuit if gate_category(instr) == "2q"),
                )
                telemetry.observe("sparse.amplitudes", peak)
                run_span.set(peak_amplitudes=peak)

    def _apply_x(self, qubit: int) -> None:
        flip = 1 << qubit
        self.amplitudes = {k ^ flip: a for k, a in self.amplitudes.items()}

    def _apply_diagonal(self, instr: Instruction) -> None:
        matrix = single_qubit_matrix(instr.base_name, instr.params)
        phase0, phase1 = matrix[0, 0], matrix[1, 1]
        qubit = instr.qubits[0]
        self.amplitudes = {
            k: a * (phase1 if (k >> qubit) & 1 else phase0)
            for k, a in self.amplitudes.items()
        }

    def _controls_match(self, key: int, instr: Instruction) -> bool:
        return all(
            ((key >> c) & 1) == wanted
            for c, wanted in zip(instr.controls, instr.control_pattern)
        )

    def _apply_controlled_x(self, instr: Instruction) -> None:
        flip = 1 << instr.target
        updated: Dict[int, complex] = {}
        for key, amp in self.amplitudes.items():
            new_key = key ^ flip if self._controls_match(key, instr) else key
            updated[new_key] = updated.get(new_key, 0.0) + amp
        self.amplitudes = updated

    def _apply_controlled_phase(self, instr: Instruction) -> None:
        if instr.name == "cz":
            phase = -1.0 + 0.0j
        else:
            phase = complex(np.exp(1j * instr.params[0]))
        target_bit = 1 << instr.target
        updated: Dict[int, complex] = {}
        for key, amp in self.amplitudes.items():
            hit = self._controls_match(key, instr) and (key & target_bit)
            updated[key] = amp * phase if hit else amp
        self.amplitudes = updated

    def _apply_general_single(self, instr: Instruction) -> None:
        """Apply any 2x2 unitary; support may double on the target qubit.

        Superposition-creating gates (H, SX, RX, ...) appear inside the
        decomposed transition operator only transiently — the ladders
        uncompute them — so support growth is bounded by the operator's
        footprint, keeping the sparse representation viable.
        """
        matrix = single_qubit_matrix(instr.base_name, instr.params)
        self.apply_single_qubit_matrix(matrix, instr.qubits[0])

    def apply_single_qubit_matrix(self, matrix: np.ndarray, qubit: int) -> None:
        """Apply an arbitrary 2x2 operator (not necessarily unitary).

        Non-unitary operators (Kraus operators) leave the state
        unnormalised; callers own renormalisation.
        """
        flip = 1 << qubit
        updated: Dict[int, complex] = {}
        for key, amp in self.amplitudes.items():
            bit = (key >> qubit) & 1
            partner = key ^ flip
            stay = matrix[bit, bit]
            hop = matrix[1 - bit, bit]
            if stay != 0:
                updated[key] = updated.get(key, 0.0) + stay * amp
            if hop != 0:
                updated[partner] = updated.get(partner, 0.0) + hop * amp
        self.amplitudes = updated
        self.prune()

    def _apply_controlled_rx(self, instr: Instruction) -> None:
        theta = instr.params[0]
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        flip = 1 << instr.target
        updated: Dict[int, complex] = {}
        for key, amp in self.amplitudes.items():
            if self._controls_match(key, instr):
                partner = key ^ flip
                updated[key] = updated.get(key, 0.0) + cos * amp
                updated[partner] = updated.get(partner, 0.0) - 1j * sin * amp
            else:
                updated[key] = updated.get(key, 0.0) + amp
        self.amplitudes = updated
        self.prune()

    # ------------------------------------------------------------------
    # Transition-operator fast path
    # ------------------------------------------------------------------
    def apply_transition(self, basis_vector: np.ndarray, time: float) -> None:
        """Apply ``exp(-i H(u) t)`` for a homogeneous basis vector ``u``.

        Implements Equation 6 of the paper directly: for each occupied basis
        state ``x``, if ``x + u`` is binary then the pair mixes with
        ``cos(t)`` / ``-i sin(t)``; if neither ``x + u`` nor ``x - u`` is
        binary the state is left untouched.
        """
        u = np.asarray(basis_vector, dtype=np.int64)
        if u.shape != (self.num_qubits,):
            raise SimulationError("basis vector length mismatch")
        from repro.linalg.moves import move_masks, partner_key_from_masks

        mask_plus, mask_minus = move_masks(u)
        cos = math.cos(time)
        sin = math.sin(time)
        updated: Dict[int, complex] = {}
        for key, amp in self.amplitudes.items():
            partner = (
                partner_key_from_masks(key, mask_plus, mask_minus)
                if (mask_plus or mask_minus)
                else None
            )
            if partner is None:
                updated[key] = updated.get(key, 0.0) + amp
                continue
            updated[key] = updated.get(key, 0.0) + cos * amp
            updated[partner] = updated.get(partner, 0.0) - 1j * sin * amp
        self.amplitudes = updated
        self.prune()
        if telemetry.enabled():
            telemetry.add("sparse.transitions")
            telemetry.observe("sparse.amplitudes", len(self.amplitudes))

    def copy(self) -> "SparseState":
        return SparseState(self.num_qubits, dict(self.amplitudes))
