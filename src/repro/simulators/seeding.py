"""Deterministic seeding for simulators and the execution engine.

Every RNG in the library used to be created ad hoc with
``np.random.default_rng(seed)``; reproducing a run across a process-pool
fan-out needs more structure than that.  This module provides one
:class:`numpy.random.SeedSequence`-based utility:

* :func:`make_rng` — the drop-in replacement for ``default_rng`` (same
  stream for a plain integer seed, so existing seeded runs are unchanged);
* :class:`SeedBank` — a stateful tree of child seeds.  All children are
  spawned *in the parent*, in a deterministic order, and handed to workers
  as picklable :class:`~numpy.random.SeedSequence` objects.  Because a
  worker never spawns from shared state, a parallel run consumes exactly
  the same seed tree as a serial run — which is what makes
  ``--engine-workers N`` bit-identical to ``--engine-workers 0``.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

#: Anything accepted as a seed: ``None``, an int, a ``SeedSequence``, or an
#: existing ``Generator`` (reused as-is by :func:`make_rng`).
SeedLike = Union[None, int, np.integer, np.random.SeedSequence, np.random.Generator]


def as_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Normalise ``seed`` into a ``SeedSequence``.

    A ``Generator`` is consumed for one draw so that handing the same
    generator twice yields independent sequences.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63)))
    if seed is None:
        return np.random.SeedSequence()
    return np.random.SeedSequence(int(seed))


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a ``Generator``; the single place RNGs come from.

    ``make_rng(int)`` produces the same stream as
    ``np.random.default_rng(int)``, so switching call sites to this helper
    does not move any seeded result.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(as_seed_sequence(seed))


class SeedBank:
    """A deterministic tree of child seeds grown from one root seed.

    Each :meth:`child`/:meth:`spawn` call advances the underlying
    ``SeedSequence`` spawn counter, so two banks built from the same root
    hand out identical children in identical order — regardless of which
    process eventually consumes them.  The bank pickles with its counter,
    but the engine's fan-out never relies on that: all children are spawned
    parent-side before dispatch.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._sequence = as_seed_sequence(seed)

    def spawn(self, count: int) -> List[np.random.SeedSequence]:
        """Spawn ``count`` child sequences (one per independent work unit)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._sequence.spawn(count)

    def child(self) -> np.random.SeedSequence:
        """Spawn a single child sequence."""
        return self._sequence.spawn(1)[0]

    def generator(self) -> np.random.Generator:
        """A fresh ``Generator`` seeded from the next child."""
        return np.random.default_rng(self.child())
