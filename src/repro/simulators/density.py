"""Exact density-matrix simulation for small systems.

Used as ground truth: tests compare the trajectory backend's sampled
statistics against exact channel evolution.  Cost is ``O(4**n)`` memory, so
this simulator enforces a small qubit limit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Instruction, gate_category, single_qubit_matrix
from repro.exceptions import SimulationError
from repro.linalg.bitvec import bits_to_int
from repro.simulators.noise import KrausChannel, NoiseModel
from repro.simulators.statevector import apply_controlled, apply_single_qubit

#: Hard qubit limit; 4**10 complex entries is ~16 MiB.
MAX_QUBITS = 10


class DensityMatrixSimulator:
    """Evolve a density matrix through a circuit with exact noise channels."""

    def __init__(self, noise_model: Optional[NoiseModel] = None) -> None:
        self.noise_model = noise_model

    def run(
        self,
        circuit: QuantumCircuit,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Return the final density matrix.

        Gates are applied as ``rho -> U rho U^dag`` by acting with ``U`` on
        the row index (a statevector update over the flattened matrix) and
        ``U*`` on the column index.
        """
        n = circuit.num_qubits
        if n > MAX_QUBITS:
            raise SimulationError(
                f"density-matrix simulation limited to {MAX_QUBITS} qubits"
            )
        dim = 1 << n
        rho = np.zeros((dim, dim), dtype=np.complex128)
        start = bits_to_int(initial_bits) if initial_bits is not None else 0
        rho[start, start] = 1.0
        for instr in circuit:
            rho = self._apply(rho, instr, n)
        return rho

    def probabilities(
        self,
        circuit: QuantumCircuit,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Diagonal of the final density matrix (readout error excluded)."""
        rho = self.run(circuit, initial_bits=initial_bits)
        return np.real(np.diag(rho)).clip(min=0.0)

    # ------------------------------------------------------------------
    def _apply(self, rho: np.ndarray, instr: Instruction, n: int) -> np.ndarray:
        if instr.name in ("barrier", "measure"):
            return rho
        if instr.name == "reset":
            raise SimulationError("reset is not supported")
        rho = _unitary_on_rho(rho, instr, n)
        if self.noise_model is not None and instr.is_unitary:
            width = 1 if gate_category(instr) == "1q" else 2
            for channel in self.noise_model.channels_for(width):
                for qubit in instr.qubits:
                    rho = apply_channel(rho, channel, qubit, n)
        return rho


def _unitary_on_rho(rho: np.ndarray, instr: Instruction, n: int) -> np.ndarray:
    """``rho -> U rho U^dag`` using the statevector kernels column-wise."""
    dim = rho.shape[0]
    # U rho: apply U to each column.
    out = np.empty_like(rho)
    for col in range(dim):
        vec = rho[:, col].copy()
        _apply_vec(vec, instr, n, conjugate=False)
        out[:, col] = vec
    # (U rho) U^dag: apply U* to each row, i.e. to columns of the transpose.
    result = np.empty_like(out)
    for row in range(dim):
        vec = out[row, :].copy()
        _apply_vec(vec, instr, n, conjugate=True)
        result[row, :] = vec
    return result


def _apply_vec(vec: np.ndarray, instr: Instruction, n: int, conjugate: bool) -> None:
    if instr.name == "swap":
        a, b = instr.qubits
        indices = np.arange(vec.shape[0])
        swapped = indices ^ (((indices >> a) & 1) != ((indices >> b) & 1)) * (
            (1 << a) | (1 << b)
        )
        vec[:] = vec[swapped]
        return
    base = single_qubit_matrix(instr.base_name, instr.params)
    if conjugate:
        base = base.conj()
    if instr.num_controls == 0:
        apply_single_qubit(vec, base, instr.qubits[0], n)
    else:
        apply_controlled(
            vec, base, instr.controls, instr.control_pattern, instr.target, n
        )


def apply_channel(
    rho: np.ndarray, channel: KrausChannel, qubit: int, n: int
) -> np.ndarray:
    """``rho -> sum_i K_i rho K_i^dag`` on one qubit."""
    dim = rho.shape[0]
    result = np.zeros_like(rho)
    for op in channel.operators:
        term = np.empty_like(rho)
        for col in range(dim):
            vec = rho[:, col].copy()
            apply_single_qubit(vec, op, qubit, n)
            term[:, col] = vec
        for row in range(dim):
            vec = term[row, :].copy()
            apply_single_qubit(vec, op.conj(), qubit, n)
            term[row, :] = vec
        result += term
    return result
