"""repro.faults — deterministic, seedable fault injection.

The service layer promises crash-safety: a worker that dies, a torn
store write, a runner exception, or a slow disk must never leave a job
stuck in a non-terminal state or brick a restart.  Promises like that
rot unless they are exercised, so this module provides the chaos half of
the contract: named **fault points** threaded through the store, the
worker pool, the execution engine, and the HTTP layer, plus a seeded
**injection plan** that decides — reproducibly — when each point fires
and what it does.

Fault points are free when no plan is installed: ``faults.point(name)``
reads one module attribute and returns, the same no-op fast path
discipline as :mod:`repro.telemetry`.  With a plan installed, a firing
point can

* ``raise`` an :class:`InjectedFault` (a ``RuntimeError``: retryable
  infrastructure failure, *not* a :class:`~repro.exceptions.ReproError`,
  so HTTP maps it to 500 and the worker retry loop treats it like any
  backend exception);
* ``kill`` the calling worker loop with :class:`WorkerCrash` (a
  ``BaseException`` subclass so per-attempt ``except Exception``
  isolation cannot swallow it — it unwinds to the worker loop, exactly
  like a real thread death);
* ``latency`` — sleep ``delay`` seconds before continuing;
* ``truncate`` — return a :class:`TruncateDirective` to cooperating
  call sites (the store's appender) that then write only a prefix of the
  line, simulating a crash mid-``write``.

Determinism: every point name gets its own RNG derived from the plan
seed through :mod:`repro.simulators.seeding`'s ``SeedSequence`` tree, and
its own call counter.  The decision for the *k*-th call to point *P*
under seed *S* is therefore a pure function of ``(S, P, k)`` — thread
interleaving across different points cannot change it — and the injector
keeps a :attr:`FaultInjector.log` of every injection so a chaos run can
assert "same seed, same fault sequence".

Canonical fault points (see ``docs/SERVICE.md`` for the full table)::

    store.append     store.compact     journal.append
    worker.run       engine.execute    http.handler

Typical use::

    from repro import faults

    plan = faults.FaultPlan(
        [faults.FaultRule("engine.execute", "raise", probability=0.2),
         faults.FaultRule("store.append", "truncate", every=3),
         faults.FaultRule("worker.run", "kill", every=7, max_fires=1)],
        seed=11,
    )
    with faults.session(plan) as injector:
        ...  # drive the service; injector.log records what fired
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.simulators.seeding import make_rng

#: Actions a rule may take when its point fires.
ACTIONS = ("raise", "kill", "latency", "truncate", "perturb")


class InjectedFault(RuntimeError):
    """An injected, retryable infrastructure failure."""


class WorkerCrash(BaseException):
    """An injected worker-thread death.

    Derives from ``BaseException`` deliberately: job-level ``except
    Exception`` isolation must not catch it, so it unwinds through the
    attempt loop to the worker loop — the same blast radius as a real
    crash of the thread.
    """


@dataclass(frozen=True)
class TruncateDirective:
    """Returned by :func:`point` to call sites that can tear a write.

    ``fraction`` is the prefix of the payload that should actually reach
    the file before the simulated crash (at least one byte, never the
    whole line).
    """

    point: str
    fraction: float = 0.5

    def cut(self, data: bytes) -> bytes:
        """The torn prefix of ``data``."""
        if not data:
            return data
        keep = int(len(data) * self.fraction)
        return data[: max(1, min(keep, len(data) - 1))]


@dataclass(frozen=True)
class PerturbDirective:
    """Returned by :func:`point` to call sites that can skew a value.

    The numerical counterpart of :class:`TruncateDirective`: cooperating
    call sites (the ``repro.verify`` differential harness) nudge one
    value of their payload by ``scale``, simulating a silent numerical
    divergence between two redundant computation paths.  A verification
    harness that cannot be made to fail proves nothing, so ``verify
    mutate`` installs ``perturb`` rules and asserts every check flips to
    a mismatch.
    """

    point: str
    scale: float = 1e-3


#: Directive types a fault point may hand back to a cooperating caller.
Directive = Union[TruncateDirective, PerturbDirective]


@dataclass
class FaultRule:
    """One injection rule: *when* a matching point fires, *what* happens.

    Args:
        point: fault-point name; a trailing ``*`` matches by prefix
            (``"store.*"``).
        action: one of :data:`ACTIONS`.
        probability: fire chance per call (seeded per point name).
        every: fire on every ``every``-th call to the point (1-based,
            counter-deterministic — no RNG draw).  Exactly one of
            ``probability``/``every`` applies; with neither given the
            rule always fires.
        delay: sleep seconds (``latency`` action).
        fraction: written prefix fraction (``truncate`` action).
        scale: numerical nudge magnitude (``perturb`` action).
        max_fires: stop firing after this many injections (``None`` =
            unlimited).
    """

    point: str
    action: str
    probability: Optional[float] = None
    every: Optional[int] = None
    delay: float = 0.01
    fraction: float = 0.5
    scale: float = 1e-3
    max_fires: Optional[int] = None
    fired: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; choose from {ACTIONS}"
            )
        if self.probability is not None and self.every is not None:
            raise ValueError("give at most one of probability= and every=")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def matches(self, point: str) -> bool:
        if self.point.endswith("*"):
            return point.startswith(self.point[:-1])
        return point == self.point

    @classmethod
    def parse(cls, text: str) -> "FaultRule":
        """Build a rule from a CLI spec string.

        Format: ``point:action[:key=value,key=value...]`` with keys
        ``p``/``probability``, ``every``, ``delay``, ``fraction``,
        ``scale``, ``max`` — e.g. ``engine.execute:raise:p=0.2`` or
        ``store.append:truncate:every=3,max=2``.
        """
        parts = text.split(":", 2)
        if len(parts) < 2:
            raise ValueError(
                f"bad fault rule {text!r}: expected point:action[:options]"
            )
        point, action = parts[0], parts[1]
        kwargs: Dict[str, object] = {}
        if len(parts) == 3 and parts[2]:
            for item in parts[2].split(","):
                key, _, value = item.partition("=")
                key = key.strip()
                if not value:
                    raise ValueError(f"bad fault rule option {item!r}")
                if key in ("p", "probability"):
                    kwargs["probability"] = float(value)
                elif key == "every":
                    kwargs["every"] = int(value)
                elif key == "delay":
                    kwargs["delay"] = float(value)
                elif key == "fraction":
                    kwargs["fraction"] = float(value)
                elif key == "scale":
                    kwargs["scale"] = float(value)
                elif key in ("max", "max_fires"):
                    kwargs["max_fires"] = int(value)
                else:
                    raise ValueError(f"unknown fault rule option {key!r}")
        return cls(point, action, **kwargs)


@dataclass
class FaultPlan:
    """A seeded set of injection rules.

    The seed feeds one ``SeedSequence`` per point name (via
    :mod:`repro.simulators.seeding`), so the probabilistic decisions are
    reproducible per point regardless of thread interleaving.
    """

    rules: Sequence[FaultRule]
    seed: int = 0

    @classmethod
    def parse(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI rule strings (see :meth:`FaultRule.parse`)."""
        return cls([FaultRule.parse(spec) for spec in specs], seed=seed)

    @classmethod
    def smoke(cls, seed: int = 0) -> "FaultPlan":
        """The default chaos-smoke plan used by ``serve --chaos-seed``.

        Moderate, survivable chaos: occasional retryable engine
        failures, a torn store write every few appends, slow appends,
        and a bounded number of worker kills.
        """
        return cls(
            [
                FaultRule("engine.execute", "raise", probability=0.05),
                FaultRule("worker.run", "raise", probability=0.05),
                FaultRule("store.append", "truncate", every=5),
                FaultRule("store.append", "latency", probability=0.2,
                          delay=0.01),
                FaultRule("worker.run", "kill", every=9, max_fires=2),
            ],
            seed=seed,
        )


class FaultInjector:
    """Live injection state for one :class:`FaultPlan`.

    Thread-safe.  Decisions and the :attr:`log` are made under a lock;
    the side effects (sleeping, raising) happen outside it.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # Private copies: per-rule fire counters are injector state, so
        # one FaultPlan can seed any number of independent runs.
        self._rules = [dataclasses.replace(rule) for rule in plan.rules]
        self._lock = threading.Lock()
        self._rngs: Dict[str, np.random.Generator] = {}
        self._calls: Dict[str, int] = {}
        #: Every injection, in decision order: (point, action, call index).
        self.log: List[Tuple[str, str, int]] = []

    def _rng(self, name: str) -> np.random.Generator:
        rng = self._rngs.get(name)
        if rng is None:
            digest = hashlib.sha256(name.encode("utf-8")).digest()
            entropy = [self.plan.seed, int.from_bytes(digest[:8], "big")]
            rng = make_rng(np.random.SeedSequence(entropy))
            self._rngs[name] = rng
        return rng

    def calls(self, name: str) -> int:
        """How many times ``name`` has been reached so far."""
        with self._lock:
            return self._calls.get(name, 0)

    def fire(self, name: str) -> Optional["Directive"]:
        """Evaluate every matching rule for one call to point ``name``.

        Applies latency inline, returns a truncate/perturb directive if
        any, and raises for ``raise``/``kill`` — in that order, so a rule
        set can both delay and fail the same call.
        """
        sleep_for = 0.0
        directive: Optional[Directive] = None
        error: Optional[BaseException] = None
        with self._lock:
            index = self._calls.get(name, 0) + 1
            self._calls[name] = index
            for rule in self._rules:
                if not rule.matches(name):
                    continue
                if rule.max_fires is not None and rule.fired >= rule.max_fires:
                    continue
                if rule.every is not None:
                    hit = index % rule.every == 0
                elif rule.probability is not None:
                    # One draw per (point, call, probabilistic rule):
                    # deterministic given the plan and the call index.
                    hit = bool(self._rng(name).random() < rule.probability)
                else:
                    hit = True
                if not hit:
                    continue
                rule.fired += 1
                self.log.append((name, rule.action, index))
                telemetry.add("service.faults.injected")
                telemetry.add(f"service.faults.{rule.action}")
                if rule.action == "latency":
                    sleep_for += rule.delay
                elif rule.action == "truncate":
                    directive = TruncateDirective(name, rule.fraction)
                elif rule.action == "perturb":
                    directive = PerturbDirective(name, rule.scale)
                elif rule.action == "raise" and error is None:
                    error = InjectedFault(
                        f"injected fault at {name} (call {index})"
                    )
                elif rule.action == "kill" and not isinstance(
                    error, WorkerCrash
                ):
                    error = WorkerCrash(
                        f"injected worker crash at {name} (call {index})"
                    )
        if sleep_for > 0.0:
            time.sleep(sleep_for)
        if error is not None:
            raise error
        return directive


# ----------------------------------------------------------------------
# Module-level switch (the fault points' single indirection)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-wide; returns its live injector."""
    global _ACTIVE
    injector = FaultInjector(plan)
    _ACTIVE = injector
    return injector


def uninstall() -> Optional[FaultInjector]:
    """Remove the active injector (returned for log inspection)."""
    global _ACTIVE
    injector = _ACTIVE
    _ACTIVE = None
    return injector


def active() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None``."""
    return _ACTIVE


@contextmanager
def session(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install ``plan`` for the duration of a ``with`` block."""
    injector = install(plan)
    try:
        yield injector
    finally:
        if _ACTIVE is injector:
            uninstall()


def point(name: str) -> Optional[Directive]:
    """Declare a fault point; no-op unless an injection plan is active.

    Returns a :class:`TruncateDirective` for cooperating writers (or a
    :class:`PerturbDirective` for cooperating numerical paths — check
    the type), raises :class:`InjectedFault`/:class:`WorkerCrash` or
    sleeps when the active plan says so.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.fire(name)


__all__ = [
    "ACTIONS",
    "Directive",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "PerturbDirective",
    "TruncateDirective",
    "WorkerCrash",
    "active",
    "install",
    "point",
    "session",
    "uninstall",
]
