"""Feasible-space coverage tracking (paper, Figure 17).

Measures how fast a transition chain covers the feasible solution space,
as a function of chain position, for the unpruned canonical chain versus
the pruned chain.  The paper reports the chain-length fraction needed to
reach full coverage (e.g. 73.6% unpruned vs 40.7% pruned on the fourth
scale, a 1.8x speedup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.core.hamiltonian import TransitionHamiltonian
from repro.core.prune import build_schedule
from repro.linalg.bitvec import bits_to_int


@dataclass(frozen=True)
class CoverageTimeline:
    """Coverage after each chain position.

    Attributes:
        covered: ``covered[i]`` = number of feasible states reached after
            executing chain position ``i`` (position -1 would be 1, the
            initial state).
        chain_length: total chain length.
        full_coverage_position: first position reaching the final coverage
            value, or ``None`` when the chain never expands.
    """

    covered: Tuple[int, ...]
    chain_length: int

    @property
    def final_coverage(self) -> int:
        return self.covered[-1] if self.covered else 1

    @property
    def full_coverage_position(self) -> int | None:
        target = self.final_coverage
        for position, value in enumerate(self.covered):
            if value == target:
                return position
        return None

    @property
    def full_coverage_fraction(self) -> float:
        """Fraction of the chain needed to reach final coverage."""
        position = self.full_coverage_position
        if position is None or self.chain_length == 0:
            return 1.0
        return (position + 1) / self.chain_length


def coverage_timeline(
    basis: np.ndarray,
    initial_bits: Sequence[int],
    schedule: Sequence[int] | None = None,
) -> CoverageTimeline:
    """Reachable-set size after each position of a transition chain.

    Args:
        basis: ``(m, n)`` homogeneous basis.
        initial_bits: starting feasible solution.
        schedule: chain to trace; defaults to the canonical ``m x m`` chain.
    """
    rows = np.atleast_2d(np.asarray(basis, dtype=np.int64))
    m, n = rows.shape
    if schedule is None:
        schedule = build_schedule(m)
    hamiltonians = [TransitionHamiltonian.from_vector(rows[k]) for k in range(m)]
    reached: Set[int] = {bits_to_int(initial_bits)}
    covered: List[int] = []
    for index in schedule:
        fresh = set()
        for key in reached:
            partner = hamiltonians[index].partner_key(key, n)
            if partner is not None and partner not in reached:
                fresh.add(partner)
        reached |= fresh
        covered.append(len(reached))
    return CoverageTimeline(covered=tuple(covered), chain_length=len(schedule))


def expansion_speedup(
    basis: np.ndarray,
    initial_bits: Sequence[int],
    pruned_schedule: Sequence[int],
) -> float:
    """How much faster the pruned chain reaches full coverage.

    Figure 17 measures both chains against the *total* (unpruned) chain
    length: the unpruned chain needs some prefix to reach full coverage;
    the pruned chain, executing only productive transitions, needs a
    shorter absolute prefix.  The speedup is the ratio of those prefix
    lengths, so values above 1 mean pruning accelerates space expansion
    (1.8x on the paper's fourth scale).
    """
    unpruned = coverage_timeline(basis, initial_bits)
    pruned = coverage_timeline(basis, initial_bits, pruned_schedule)
    unpruned_steps = (unpruned.full_coverage_position or 0) + 1
    pruned_steps = (pruned.full_coverage_position or 0) + 1
    if pruned_steps == 0:
        return float("inf")
    return unpruned_steps / pruned_steps
