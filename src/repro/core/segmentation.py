"""Probability-preserving segmented execution (paper, Section 4.2).

The pruned transition chain is cut into segments small enough to fit NISQ
decoherence budgets.  Each segment is executed once *per input basis
state*, with shots allocated proportionally to the input distribution, and
the merged output distribution feeds the next segment (Figure 7).  With
one transition per segment the two-qubit depth drops from ``34 n m^2`` to
``34 n``.

The segment boundary only needs classical information (measured
probabilities), because the transition chain's job is to *spread
probability over feasible basis states* rather than build up global phase
relationships — that is the property the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple  # noqa: F401 (Tuple in hints)

import numpy as np


@dataclass(frozen=True)
class SegmentPlan:
    """A partition of the transition schedule into executable segments.

    Attributes:
        segments: tuple of segments, each a tuple of schedule positions
            (indices into the *pruned* schedule, not the basis).
    """

    segments: Tuple[Tuple[int, ...], ...]

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)


def plan_segments(
    schedule_length: int,
    transitions_per_segment: int,
) -> SegmentPlan:
    """Cut ``schedule_length`` transitions into fixed-size segments.

    Args:
        schedule_length: number of retained transitions.
        transitions_per_segment: maximum transitions per segment; ``1``
            gives the paper's minimal ``34 n`` two-qubit depth, larger
            values trade depth for fewer segment boundaries.
    """
    if transitions_per_segment < 1:
        raise ValueError("transitions_per_segment must be >= 1")
    positions = list(range(schedule_length))
    segments = tuple(
        tuple(positions[start : start + transitions_per_segment])
        for start in range(0, schedule_length, transitions_per_segment)
    )
    return SegmentPlan(segments=segments)


def plan_segments_by_cost(
    transition_costs: Sequence[int],
    cx_budget: int,
) -> SegmentPlan:
    """Pack consecutive transitions into segments under a CX budget.

    This is how the paper actually deploys segmentation: each segment is
    filled with as many transitions as fit within the device's reliable
    depth (e.g. F1 runs as 3 segments of ~49 depth, Figure 9), rather
    than always one transition per segment.  A transition whose own cost
    exceeds the budget still gets a singleton segment — it cannot be
    split further.

    Args:
        transition_costs: CX cost of each scheduled transition, in order.
        cx_budget: maximum CX cost per segment.
    """
    if cx_budget < 1:
        raise ValueError("cx_budget must be >= 1")
    segments: List[Tuple[int, ...]] = []
    current: List[int] = []
    current_cost = 0
    for position, cost in enumerate(transition_costs):
        if current and current_cost + cost > cx_budget:
            segments.append(tuple(current))
            current = []
            current_cost = 0
        current.append(position)
        current_cost += cost
    if current:
        segments.append(tuple(current))
    return SegmentPlan(segments=tuple(segments))


def allocate_shots(
    distribution: Dict[int, float],
    shots: int,
) -> Dict[int, int]:
    """Allocate segment shots to input states proportionally (Figure 7).

    Uses largest-remainder rounding so the total allocation is exactly
    ``shots`` and every state with positive probability gets its fair
    share.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if not distribution:
        return {}
    total = sum(distribution.values())
    if total <= 0:
        raise ValueError("distribution has no mass")
    keys = sorted(distribution)
    exact = np.array([distribution[k] / total * shots for k in keys])
    floors = np.floor(exact).astype(int)
    remainder = shots - int(floors.sum())
    fractional_order = np.argsort(-(exact - floors))
    allocation = dict(zip(keys, floors))
    for rank in range(remainder):
        allocation[keys[fractional_order[rank]]] += 1
    return {k: v for k, v in allocation.items() if v > 0}


def merge_counts(count_maps: Sequence[Dict[int, int]]) -> Dict[int, int]:
    """Merge per-input-state counts into one segment output distribution."""
    merged: Dict[int, int] = {}
    for counts in count_maps:
        for key, value in counts.items():
            merged[key] = merged.get(key, 0) + value
    return merged
