"""Warm starting: improve the initial feasible solution classically.

Rasengan's circuit starts from *one arbitrary* feasible solution (paper,
Figure 4) — but nothing stops a deployment from spending linear classical
time picking a *good* one.  Since every move vector keeps feasibility,
hill climbing over the move set is a free-lunch preprocessing step: it
shortens the distance between the initial state and the optimum, which in
practice means fewer productive transitions and faster optimizer
convergence.  This is the natural "future work" extension of the paper's
initialization discussion, and the ablation benchmark
``benchmarks/test_ablation_extensions.py`` quantifies it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.linalg.bitvec import bits_to_int, int_to_bits
from repro.linalg.moves import move_masks, partner_key_from_masks
from repro.problems.base import ConstrainedBinaryProblem


def hill_climb_initial_solution(
    problem: ConstrainedBinaryProblem,
    moves: np.ndarray,
    start: Optional[Sequence[int]] = None,
    max_steps: int = 10_000,
) -> np.ndarray:
    """Greedy descent over the feasible space along move vectors.

    Args:
        problem: supplies the objective and the starting construction.
        moves: ``(m, n)`` signed-unit move set (the transition basis).
        start: starting feasible solution (defaults to the problem's
            linear-time construction).
        max_steps: hard cap on improvement steps.

    Returns:
        A feasible solution whose value is a local minimum of the move
        neighbourhood — never worse than the start.
    """
    n = problem.num_variables
    current = np.asarray(
        start if start is not None else problem.initial_feasible_solution(),
        dtype=np.int8,
    )
    key = bits_to_int(current)
    value = problem.value(current)
    masks = [move_masks(np.asarray(u, dtype=np.int64)) for u in np.atleast_2d(moves)]

    for _ in range(max_steps):
        best_key = None
        best_value = value
        for mask_plus, mask_minus in masks:
            if mask_plus == 0 and mask_minus == 0:
                continue
            partner = partner_key_from_masks(key, mask_plus, mask_minus)
            if partner is None:
                continue
            candidate_value = problem.value(int_to_bits(partner, n))
            if candidate_value < best_value - 1e-12:
                best_value = candidate_value
                best_key = partner
        if best_key is None:
            break
        key = best_key
        value = best_value
    return int_to_bits(key, n)
