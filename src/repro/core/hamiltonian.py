"""The transition Hamiltonian (paper, Definition 1).

For a homogeneous basis vector ``u`` in {-1, 0, 1}^n::

    H(u) = ⊗_i sigma(u_i) + ⊗_i sigma(-u_i)

with ``sigma(+1) = sigma^+`` (raising, ``|1><0|``), ``sigma(-1) = sigma^-``
(lowering, ``|0><1|``), and ``sigma(0) = I``.

Acting on a computational basis state ``|x>``, the first term produces
``|x+u>`` when ``x + u`` is binary (every ``u_i = +1`` site has ``x_i = 0``
and every ``u_i = -1`` site has ``x_i = 1``) and zero otherwise; the second
term produces ``|x-u>`` symmetrically.  For ``u != 0`` the two conditions
are mutually exclusive, so ``H(u)`` is a *partial pairing*:
``H|x> = |x±u>`` or ``H|x> = 0``.  On each matched pair it squares to the
identity, which is what makes Equation 6's closed-form evolution
``exp(-iHt) = cos(t) I - i sin(t) H`` hold on the pair subspace.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.linalg.bitvec import bits_to_int, is_signed_unit_vector

_SIGMA_PLUS = np.array([[0, 0], [1, 0]], dtype=complex)  # |1><0|
_SIGMA_MINUS = np.array([[0, 1], [0, 0]], dtype=complex)  # |0><1|
_IDENTITY = np.eye(2, dtype=complex)


@functools.lru_cache(maxsize=4096)
def _cached_masks(basis_vector: Tuple[int, ...]) -> Tuple[int, int]:
    """Memoised +1/-1 bitmasks of a basis vector (see linalg.moves)."""
    mask_plus = 0
    mask_minus = 0
    for index, value in enumerate(basis_vector):
        if value == 1:
            mask_plus |= 1 << index
        elif value == -1:
            mask_minus |= 1 << index
    return mask_plus, mask_minus


def _sigma(value: int) -> np.ndarray:
    if value == 1:
        return _SIGMA_PLUS
    if value == -1:
        return _SIGMA_MINUS
    return _IDENTITY


@dataclass(frozen=True)
class TransitionHamiltonian:
    """One transition Hamiltonian ``H(u)``.

    Attributes:
        basis_vector: the homogeneous basis vector ``u`` (entries -1/0/1).
    """

    basis_vector: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not is_signed_unit_vector(self.basis_vector):
            raise ProblemError(
                f"transition Hamiltonian needs entries in {{-1,0,1}}, "
                f"got {self.basis_vector}"
            )

    @classmethod
    def from_vector(cls, u: np.ndarray) -> "TransitionHamiltonian":
        return cls(tuple(int(v) for v in np.asarray(u)))

    @property
    def num_qubits(self) -> int:
        return len(self.basis_vector)

    @property
    def support(self) -> Tuple[int, ...]:
        """Indices where ``u`` is nonzero (the qubits the operator touches)."""
        return tuple(i for i, v in enumerate(self.basis_vector) if v != 0)

    @property
    def num_nonzero(self) -> int:
        """``k``: drives the CX cost ``34 k`` (paper, Section 3.2)."""
        return len(self.support)

    # ------------------------------------------------------------------
    # Classical pairing action
    # ------------------------------------------------------------------
    def partner_of(self, x: np.ndarray) -> Optional[np.ndarray]:
        """The basis state ``H(u)`` maps ``|x>`` to, or ``None`` if zero.

        ``x + u`` and ``x - u`` cannot both be binary for ``u != 0``, so
        the partner is unique when it exists.
        """
        arr = np.asarray(x, dtype=np.int64)
        u = np.asarray(self.basis_vector, dtype=np.int64)
        plus = arr + u
        if np.all((plus >= 0) & (plus <= 1)):
            return plus.astype(np.int8)
        minus = arr - u
        if np.all((minus >= 0) & (minus <= 1)):
            return minus.astype(np.int8)
        return None

    def partner_key(self, key: int, num_qubits: int) -> Optional[int]:
        """Integer-encoded version of :meth:`partner_of` (O(1) via masks)."""
        mask_plus, mask_minus = _cached_masks(self.basis_vector)
        if mask_plus == 0 and mask_minus == 0:
            return None
        from repro.linalg.moves import partner_key_from_masks

        return partner_key_from_masks(key, mask_plus, mask_minus)

    # ------------------------------------------------------------------
    # Dense matrix (verification / small systems only)
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix of ``H(u)`` (little-endian qubit 0).

        Only for tests and tiny systems; the solver never materialises it.
        """
        matrix_plus = np.array([[1.0 + 0j]])
        matrix_minus = np.array([[1.0 + 0j]])
        # Kron with qubit 0 least significant: later (higher) qubits go on
        # the left of the Kronecker product.
        for value in self.basis_vector:
            matrix_plus = np.kron(_sigma(value), matrix_plus)
            matrix_minus = np.kron(_sigma(-value), matrix_minus)
        return matrix_plus + matrix_minus

    def evolution_matrix(self, time: float) -> np.ndarray:
        """Dense ``exp(-i H(u) t)`` via the pairing structure (exact)."""
        n = self.num_qubits
        dim = 1 << n
        result = np.eye(dim, dtype=complex)
        h = self.to_matrix()
        cos, sin = np.cos(time), np.sin(time)
        for col in range(dim):
            rows = np.nonzero(h[:, col])[0]
            if rows.size == 0:
                continue
            (row,) = rows
            result[col, col] = cos
            result[row, col] = -1j * sin
        return result
