"""Circuit synthesis for transition operators (paper, Figure 4).

The transition operator ``tau(u, t) = exp(-i H(u) t)`` acts as an
``RX(2t)``-style rotation between the two complementary bit patterns of
``u``'s support and as identity elsewhere.  The synthesised circuit is the
symmetric structure the paper describes:

1. a CX ladder from a pivot qubit onto the other support qubits, which
   makes the two patterns differ on the pivot only (the parity
   ``x_j XOR x_pivot`` is equal for both patterns);
2. a multi-controlled ``RX(2t)`` on the pivot, controlled on the ladder
   parities (control pattern derived from ``u``);
3. the inverse ladder.

Cost: ``2(k-1)`` CX for the ladders plus one ``(k-1)``-controlled RX,
linear in ``k`` on hardware with native multi-controlled gates (the
paper's ``34 k`` model, citing [20]).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.core.hamiltonian import TransitionHamiltonian
from repro.exceptions import ProblemError


def _patterns(u: Sequence[int]) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The two complementary support patterns connected by ``H(u)``.

    Pattern ``a`` is the precondition of the ``+u`` term
    (``a_i = 1`` exactly where ``u_i = -1``); pattern ``b`` is its
    complement on the support.
    """
    support = [i for i, v in enumerate(u) if v != 0]
    a = tuple(1 if u[i] == -1 else 0 for i in support)
    b = tuple(1 - bit for bit in a)
    return a, b


def transition_circuit(
    u: np.ndarray,
    time: float,
    num_qubits: int,
) -> QuantumCircuit:
    """Circuit for one transition operator ``tau(u, t)``.

    Args:
        u: homogeneous basis vector with entries in {-1, 0, 1}.
        time: evolution time ``t`` (the variational parameter).
        num_qubits: circuit width ``n``.

    Returns:
        A circuit equal (as a unitary) to ``exp(-i H(u) t)``.
    """
    hamiltonian = TransitionHamiltonian.from_vector(u)
    if hamiltonian.num_qubits != num_qubits:
        raise ProblemError(
            f"basis vector length {hamiltonian.num_qubits} != {num_qubits}"
        )
    support = hamiltonian.support
    if not support:
        raise ProblemError("transition over the zero vector is trivial")
    circuit = QuantumCircuit(num_qubits, name="transition")
    pivot = support[0]
    others = support[1:]
    if not others:
        # Single-bit transition: H(u) = X on the pivot, unconditioned.
        circuit.rx(2.0 * time, pivot)
        return circuit

    a, _ = _patterns(tuple(int(v) for v in u))
    a_pivot = a[0]
    # Control values after the ladder: c_j = a_j XOR a_pivot.
    controls_pattern = tuple(bit ^ a_pivot for bit in a[1:])

    for qubit in others:
        circuit.cx(pivot, qubit)
    circuit.mcrx(2.0 * time, controls=others, target=pivot, ctrl_state=controls_pattern)
    for qubit in others:
        circuit.cx(pivot, qubit)
    return circuit


def transition_cx_exact(num_nonzero: int, num_qubits: int | None = None) -> int:
    """Exact CX count of one decomposed transition operator.

    Counts CX gates in the ancilla-free {1q, CX} decomposition of a
    transition over a basis vector with ``k = num_nonzero`` nonzeros.
    For small ``k`` this is far below the paper's linear ``34 k`` model
    (which budgets for hardware-native multi-qubit gates); for large ``k``
    the ancilla-free recursion grows super-linearly — the honest trade-off
    behind the depth outliers discussed in EXPERIMENTS.md.
    """
    if num_nonzero < 1:
        raise ProblemError("a transition needs at least one nonzero entry")
    n = num_qubits if num_qubits is not None else num_nonzero
    u = np.zeros(n, dtype=np.int64)
    u[:num_nonzero] = 1
    from repro.circuits.decompose import decompose_circuit

    circuit = decompose_circuit(transition_circuit(u, 0.5, n))
    return sum(1 for instr in circuit if instr.name == "cx")


def transition_chain_circuit(
    basis: np.ndarray,
    schedule: Sequence[int],
    times: Sequence[float],
    num_qubits: int,
    initial_bits: Sequence[int] | None = None,
) -> QuantumCircuit:
    """Full (unsegmented) Rasengan circuit: initialization + chain.

    Args:
        basis: homogeneous basis, rows ``u_k``.
        schedule: indices into ``basis`` giving the transition order.
        times: evolution time of each scheduled transition (same length).
        num_qubits: circuit width.
        initial_bits: feasible solution for the X-gate initialization
            (omitted for circuits that continue from a prepared state).
    """
    if len(schedule) != len(times):
        raise ProblemError("schedule and times must have equal length")
    circuit = QuantumCircuit(num_qubits, name="rasengan_chain")
    if initial_bits is not None:
        circuit.prepare_bitstring(initial_bits)
    rows = np.atleast_2d(basis)
    for index, time in zip(schedule, times):
        circuit.compose(transition_circuit(rows[index], time, num_qubits))
    return circuit
