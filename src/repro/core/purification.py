"""Error mitigation by purification (paper, Section 4.3).

Between segments, every measured basis state is checked against the
constraints ``C x = b``; infeasible states (which can only appear through
hardware noise — the noise-free algorithm never leaves the feasible space)
are removed and the remaining distribution is renormalised before it seeds
the next segment (Figure 8).  The check is one integer matrix-vector
product per distinct state, which is why the paper measures its cost at
~0.05 ms per iteration.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import NoFeasibleStateError
from repro.linalg.bitvec import int_to_bits


def purify_counts(
    counts: Dict[int, int],
    constraint_matrix: np.ndarray,
    bound: np.ndarray,
) -> Tuple[Dict[int, int], float]:
    """Remove infeasible outcomes from measured counts.

    Args:
        counts: ``{basis index: shots}``.
        constraint_matrix: ``C``.
        bound: ``b``.

    Returns:
        ``(purified counts, in-constraints rate)`` where the rate is the
        fraction of shots that survived.

    Raises:
        NoFeasibleStateError: when *no* measured state is feasible — the
            failure mode the paper observes past ~2% amplitude damping
            (Section 5.5), which terminates optimization early.
    """
    matrix = np.asarray(constraint_matrix, dtype=np.int64)
    target = np.asarray(bound, dtype=np.int64)
    n = matrix.shape[1]
    total = sum(counts.values())
    if total == 0:
        raise NoFeasibleStateError("no shots to purify")
    purified: Dict[int, int] = {}
    for key, value in counts.items():
        bits = int_to_bits(key, n).astype(np.int64)
        if np.array_equal(matrix @ bits, target):
            purified[key] = value
    kept = sum(purified.values())
    if kept == 0:
        raise NoFeasibleStateError(
            "every measured state violates the constraints; "
            "segment output cannot seed the next segment"
        )
    return purified, kept / total


def purify_probabilities(
    probabilities: Dict[int, float],
    constraint_matrix: np.ndarray,
    bound: np.ndarray,
) -> Tuple[Dict[int, float], float]:
    """Probability-distribution variant of :func:`purify_counts`.

    Returns the renormalised feasible distribution and the feasible mass.
    """
    matrix = np.asarray(constraint_matrix, dtype=np.int64)
    target = np.asarray(bound, dtype=np.int64)
    n = matrix.shape[1]
    feasible: Dict[int, float] = {}
    for key, probability in probabilities.items():
        bits = int_to_bits(key, n).astype(np.int64)
        if np.array_equal(matrix @ bits, target):
            feasible[key] = probability
    # fsum keeps the renormalisation stable when the feasible mass is many
    # tiny contributions (deep noisy chains can underflow a naive sum).
    mass = math.fsum(feasible.values())
    if mass <= 0:
        raise NoFeasibleStateError(
            "purification removed all probability mass"
        )
    return {key: p / mass for key, p in feasible.items()}, mass
