"""Hamiltonian simplification (paper, Algorithm 1).

The CX cost of a transition operator is linear in the number of nonzero
entries of its basis vector, so replacing basis vectors with sparser linear
combinations directly shortens the circuit.  Adding or subtracting one
basis vector to another is an elementary row operation, hence the modified
set still spans the same homogeneous space and still exposes the entire
feasible solution space.

:func:`simplify_basis` is a faithful transcription of Algorithm 1 (one pass
over ordered pairs, greedy replacement when the combination is a valid
signed-unit vector with strictly fewer nonzeros), plus an optional
``iterate`` mode that repeats passes until a fixed point — useful because a
replacement made late in a pass can unlock further reductions.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.bitvec import is_signed_unit_vector


def _non_zero(u: np.ndarray) -> int:
    return int(np.count_nonzero(u))


def simplify_basis(basis: np.ndarray, *, iterate: bool = False) -> np.ndarray:
    """Reconstruct the homogeneous basis with fewer nonzero entries.

    Args:
        basis: ``(m, n)`` signed-unit homogeneous basis (rows ``u_k``).
        iterate: repeat the Algorithm-1 pass until no replacement fires.

    Returns:
        A new ``(m, n)`` basis spanning the same space, with
        ``total nonzeros <= input nonzeros``.
    """
    work = np.array(basis, dtype=np.int64, copy=True)
    m = work.shape[0]
    changed = True
    while changed:
        changed = False
        for i in range(m):
            for j in range(i + 1, m):
                u_add = work[i] + work[j]
                u_sub = work[i] - work[j]
                if is_signed_unit_vector(u_add) and _non_zero(u_add) < _non_zero(work[i]):
                    work[i] = u_add
                    changed = True
                if is_signed_unit_vector(u_sub) and _non_zero(u_sub) < _non_zero(work[i]):
                    work[i] = u_sub
                    changed = True
        if not iterate:
            break
    return work


def total_nonzeros(basis: np.ndarray) -> int:
    """Total nonzero entries across the basis (proxy for chain CX cost)."""
    return int(np.count_nonzero(basis))
