"""Connectivity augmentation of the homogeneous basis.

Re-export of :mod:`repro.linalg.moves`: the search is pure lattice
arithmetic and lives with the integer linear algebra, but conceptually it
belongs to the Rasengan pipeline (it decides which transition Hamiltonians
exist), so the core package exposes it here.

See :func:`repro.linalg.moves.augment_moves_for_connectivity` for why this
step is needed: Theorem 1's "more complex cases" bound silently assumes
every basis round makes progress, which fails when feasible solutions
differ only by combinations of basis vectors with non-binary
intermediates.
"""

from repro.linalg.moves import (
    DEFAULT_MAX_COMBINATION,
    augment_moves_for_connectivity as augment_basis_for_connectivity,
    candidate_combinations,
    expand_closure,
    move_partner_key,
)

__all__ = [
    "DEFAULT_MAX_COMBINATION",
    "augment_basis_for_connectivity",
    "candidate_combinations",
    "expand_closure",
    "move_partner_key",
]
