"""Human-readable diagnostics for a Rasengan solver instance.

Renders the internals a practitioner wants to inspect before paying for a
training run: the move set (with nonzero counts and CX costs), the pruned
schedule and its coverage trajectory, the segment plan against the CX
budget, and one synthesised transition circuit.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.circuits.depth import CX_PER_NONZERO, circuit_depth
from repro.circuits.visualize import draw
from repro.core.solver import RasenganSolver
from repro.core.transition import transition_circuit


def basis_table(solver: RasenganSolver) -> str:
    """One row per move vector: entries, nonzeros, CX cost, usage count."""
    usage = np.zeros(solver.basis.shape[0], dtype=int)
    for index in solver.schedule:
        usage[index] += 1
    lines = [f"{'#':>3} {'vector':<{solver.basis.shape[1] * 3}} {'nnz':>4} {'CX':>5} {'used':>5}"]
    for row_index, row in enumerate(solver.basis):
        entries = " ".join(f"{v:+d}"[0] if v else "." for v in row)
        nnz = int(np.count_nonzero(row))
        lines.append(
            f"{row_index:>3} {entries:<{solver.basis.shape[1] * 3}} "
            f"{nnz:>4} {CX_PER_NONZERO * nnz:>5} {usage[row_index]:>5}"
        )
    return "\n".join(lines)


def schedule_summary(solver: RasenganSolver) -> str:
    """Pruning statistics and the coverage trajectory."""
    pruned = solver.pruned
    lines = [
        f"canonical chain: {pruned.original_length} transitions",
        f"retained:        {len(pruned.schedule)} "
        f"({pruned.num_pruned} pruned"
        + (
            f", early stop at position {pruned.early_stop_position})"
            if pruned.early_stop_position is not None
            else ")"
        ),
        f"feasible states reached: {pruned.total_reachable}",
    ]
    if pruned.coverage_after:
        curve = " -> ".join(str(c) for c in [1] + list(pruned.coverage_after))
        lines.append(f"coverage after each kept transition: {curve}")
    return "\n".join(lines)


def segment_summary(solver: RasenganSolver) -> str:
    """Per-segment transition lists and CX costs."""
    lines = [f"{'seg':>4} {'transitions':<24} {'CX cost':>8}"]
    for index, segment in enumerate(solver.plan):
        indices = [solver.schedule[pos] for pos in segment]
        cost = sum(
            CX_PER_NONZERO * int(np.count_nonzero(solver.basis[i])) for i in indices
        )
        lines.append(f"{index:>4} {str(indices):<24} {cost:>8}")
    return "\n".join(lines)


def example_transition_drawing(solver: RasenganSolver, position: int = 0) -> str:
    """Text drawing of one scheduled transition operator circuit."""
    if not solver.schedule:
        return "(empty schedule)"
    index = solver.schedule[position % len(solver.schedule)]
    circuit = transition_circuit(
        solver.basis[index], solver.config.initial_time, solver.problem.num_variables
    )
    return draw(circuit)


def report(solver: RasenganSolver) -> str:
    """Full pre-flight report for a solver instance."""
    problem = solver.problem
    header = (
        f"Rasengan pre-flight report — {problem.name}\n"
        f"{problem.num_variables} variables, {problem.num_constraints} "
        f"constraints, {problem.num_feasible_solutions} feasible solutions\n"
        f"{solver.num_parameters} parameters over {solver.num_segments} "
        f"segments (max segment CX {solver.segment_two_qubit_cost()})"
    )
    sections = [
        header,
        "— move set " + "—" * 30,
        basis_table(solver),
        "— schedule " + "—" * 30,
        schedule_summary(solver),
        "— segments " + "—" * 30,
        segment_summary(solver),
        "— first transition circuit " + "—" * 14,
        example_transition_drawing(solver),
    ]
    return "\n".join(sections)
