"""Rasengan: the transition-Hamiltonian approximation algorithm.

The paper's primary contribution (Sections 3 and 4):

* :mod:`repro.core.hamiltonian` — the transition Hamiltonian of
  Definition 1 and its pairing action on basis states.
* :mod:`repro.core.transition` — circuit synthesis for the transition
  operator ``exp(-i H(u) t)`` (Figure 4).
* :mod:`repro.core.simplify` — Hamiltonian simplification, Algorithm 1.
* :mod:`repro.core.prune` — transition pruning and early stop (Section 4.1).
* :mod:`repro.core.segmentation` — probability-preserving segmented
  execution (Section 4.2).
* :mod:`repro.core.purification` — constraint-based error mitigation
  (Section 4.3).
* :mod:`repro.core.solver` — the end-to-end variational solver.
* :mod:`repro.core.expansion` — feasible-space coverage tracking
  (Figure 17).
"""

from repro.core.hamiltonian import TransitionHamiltonian
from repro.core.transition import transition_circuit, transition_chain_circuit
from repro.core.simplify import simplify_basis
from repro.core.prune import PruneResult, build_schedule, prune_schedule
from repro.core.segmentation import SegmentPlan, plan_segments
from repro.core.purification import purify_counts, purify_probabilities
from repro.core.solver import RasenganResult, RasenganSolver
from repro.core.expansion import coverage_timeline

__all__ = [
    "TransitionHamiltonian",
    "transition_circuit",
    "transition_chain_circuit",
    "simplify_basis",
    "PruneResult",
    "build_schedule",
    "prune_schedule",
    "SegmentPlan",
    "plan_segments",
    "purify_counts",
    "purify_probabilities",
    "RasenganResult",
    "RasenganSolver",
    "coverage_timeline",
]
