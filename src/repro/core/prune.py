"""Transition schedule construction, pruning, and early stop.

Theorem 1: repeating the ``m`` transition Hamiltonians for ``m`` rounds
(``m^2`` simulations) covers the whole feasible space for totally
unimodular constraints.  :func:`build_schedule` produces that canonical
chain.  :func:`prune_schedule` removes the transitions that contribute no
new feasible basis state (paper, Figure 6a) and stops the chain early once
``m`` consecutive transitions are unproductive (Figure 6b).

Pruning is classical and offline: it tracks the *reachable set* of feasible
basis states exactly (each transition can only map reached states to
``x ± u``), which mirrors the intermediate-measurement procedure the paper
describes without paying for quantum executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.core.hamiltonian import TransitionHamiltonian
from repro.linalg.bitvec import bits_to_int, int_to_bits


def build_schedule(num_basis_vectors: int, rounds: int | None = None) -> List[int]:
    """Canonical chain: ``[0..m-1]`` repeated ``rounds`` (default ``m``) times."""
    m = num_basis_vectors
    if rounds is None:
        rounds = m
    return list(range(m)) * rounds


@dataclass
class PruneResult:
    """Outcome of schedule pruning.

    Attributes:
        schedule: retained transition indices (into the basis), in order.
        kept_positions: positions in the original chain that were kept.
        original_length: length of the unpruned chain.
        coverage_after: number of reachable feasible states after each
            *kept* transition (starts implicitly at 1 for ``x_p``).
        total_reachable: reachable-set size at the end of pruning.
        early_stop_position: original-chain position where the early-stop
            rule fired, or ``None`` if the full chain was scanned.
    """

    schedule: List[int]
    kept_positions: List[int]
    original_length: int
    coverage_after: List[int]
    total_reachable: int
    early_stop_position: int | None = None

    @property
    def num_pruned(self) -> int:
        return self.original_length - len(self.schedule)


def _expand_once(
    reached: Set[int], hamiltonian: TransitionHamiltonian, num_qubits: int
) -> Set[int]:
    """States newly reachable by one application of ``H(u)``."""
    fresh: Set[int] = set()
    for key in reached:
        partner = hamiltonian.partner_key(key, num_qubits)
        if partner is not None and partner not in reached:
            fresh.add(partner)
    return fresh


def prune_schedule(
    basis: np.ndarray,
    initial_bits: Sequence[int],
    schedule: Sequence[int] | None = None,
    *,
    early_stop: bool = True,
) -> PruneResult:
    """Drop unproductive transitions from a chain.

    Args:
        basis: ``(m, n)`` homogeneous basis.
        initial_bits: the feasible solution the chain starts from.
        schedule: chain to prune; defaults to the canonical ``m x m`` chain.
        early_stop: stop after ``m`` consecutive unproductive transitions.

    Returns:
        :class:`PruneResult` with the retained schedule and coverage
        telemetry (consumed by the Figure 17 benchmark).
    """
    rows = np.atleast_2d(np.asarray(basis, dtype=np.int64))
    m, n = rows.shape
    if schedule is None:
        schedule = build_schedule(m)
    hamiltonians = [TransitionHamiltonian.from_vector(rows[k]) for k in range(m)]

    reached: Set[int] = {bits_to_int(initial_bits)}
    kept: List[int] = []
    kept_positions: List[int] = []
    coverage: List[int] = []
    consecutive_unproductive = 0
    early_stop_position: int | None = None

    for position, index in enumerate(schedule):
        fresh = _expand_once(reached, hamiltonians[index], n)
        if fresh:
            reached |= fresh
            kept.append(index)
            kept_positions.append(position)
            coverage.append(len(reached))
            consecutive_unproductive = 0
        else:
            consecutive_unproductive += 1
            if early_stop and consecutive_unproductive >= m:
                early_stop_position = position
                break
    return PruneResult(
        schedule=kept,
        kept_positions=kept_positions,
        original_length=len(schedule),
        coverage_after=coverage,
        total_reachable=len(reached),
        early_stop_position=early_stop_position,
    )


def search_schedule_order(
    basis: np.ndarray,
    initial_bits: Sequence[int],
    *,
    attempts: int = 8,
    seed: int | None = None,
) -> PruneResult:
    """Search over chain orderings for a shorter pruned schedule.

    The canonical chain visits the basis vectors in index order, but
    pruning outcomes depend on ordering: a transition that is redundant
    early may be productive later and vice versa.  This helper prunes the
    canonical order plus ``attempts`` random round-orderings and returns
    the result with the fewest retained transitions (ties broken toward
    the canonical order).  All candidates cover the same reachable set,
    so quality guarantees are unchanged — only circuit length improves.
    """
    rows = np.atleast_2d(np.asarray(basis, dtype=np.int64))
    m = rows.shape[0]
    best = prune_schedule(rows, initial_bits)
    rng = np.random.default_rng(seed)
    for _ in range(attempts):
        order = rng.permutation(m)
        shuffled: List[int] = []
        for _round in range(m):
            shuffled.extend(int(v) for v in order)
        candidate = prune_schedule(rows, initial_bits, shuffled)
        if (
            candidate.total_reachable >= best.total_reachable
            and len(candidate.schedule) < len(best.schedule)
        ):
            best = candidate
    return best


def reachable_states(
    basis: np.ndarray, initial_bits: Sequence[int], schedule: Sequence[int]
) -> Tuple[int, ...]:
    """Reachable feasible basis states after running ``schedule``."""
    rows = np.atleast_2d(np.asarray(basis, dtype=np.int64))
    n = rows.shape[1]
    hamiltonians = {k: TransitionHamiltonian.from_vector(rows[k]) for k in set(schedule)}
    reached: Set[int] = {bits_to_int(initial_bits)}
    for index in schedule:
        reached |= _expand_once(reached, hamiltonians[index], n)
    return tuple(sorted(reached))
