"""End-to-end Rasengan solver.

Pipeline (paper, Sections 3-4):

1. compute the signed-unit homogeneous basis of ``C u = 0``;
2. *simplify* it (Algorithm 1) to reduce per-transition CX cost;
3. build the canonical ``m x m`` transition chain and *prune* it;
4. cut the chain into *segments* and execute them sequentially, seeding
   each segment from the previous segment's measured distribution with
   proportional shot allocation;
5. *purify* every segment output against ``C x = b``;
6. drive the per-transition evolution times with COBYLA to minimise the
   expected objective of the final feasible distribution.

Steps 1-4 (plus circuit synthesis and depth accounting) run as the
staged compilation pipeline of :mod:`repro.pipeline`: each pass produces
an immutable, content-addressed artifact, so a second solver over the
same problem — a service job differing only in backend or shot budget, a
figure sweep, a restart worker — reuses every pre-execution artifact
from the :class:`~repro.pipeline.cache.ArtifactCache` instead of
recomputing it.  :class:`RasenganSolver` is a thin orchestration over
that pipeline; its public API and its results are unchanged.

All execution goes through the unified
:class:`~repro.engine.ExecutionEngine`: ``backend=None`` selects the
exact sparse fast path (the offline counterpart of the artifact's DDSim
path, optionally with shot sampling), any other backend spec runs the
synthesised segment circuits gate-level.  The engine also provides the
compiled-circuit cache (segments are synthesised once and rebound per
COBYLA evaluation) and the optional process-pool fan-out used for
multi-start restarts.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as sciopt

from repro.core.prune import PruneResult
from repro.engine import ExecutionEngine, TransitionChainSpec
from repro.engine.registry import BackendSpec
from repro import telemetry
from repro.exceptions import NoFeasibleStateError, SolverError
from repro.linalg.bitvec import bits_to_int, int_to_bits
from repro.metrics.arg import approximation_ratio_gap
from repro.pipeline import CircuitArtifact, ExecutionStage, SolvePipeline
from repro.pipeline.cache import ArtifactCache
from repro.problems.base import ConstrainedBinaryProblem
from repro.simulators.seeding import SeedBank, make_rng

#: Score assigned when an execution produces no feasible state at all.
_FAILURE_SCORE = 1e9

#: Names importable from this module before the pipeline refactor moved
#: them; kept working for one release via the deprecation shim below.
_MOVED_NAMES = {
    "CX_PER_NONZERO": ("repro.circuits.depth", "CX_PER_NONZERO"),
    "build_schedule": ("repro.core.prune", "build_schedule"),
    "prune_schedule": ("repro.core.prune", "prune_schedule"),
    "purify_probabilities": ("repro.core.purification", "purify_probabilities"),
    "SegmentPlan": ("repro.core.segmentation", "SegmentPlan"),
    "plan_segments": ("repro.core.segmentation", "plan_segments"),
    "plan_segments_by_cost": ("repro.core.segmentation", "plan_segments_by_cost"),
    "simplify_basis": ("repro.core.simplify", "simplify_basis"),
    "augment_moves_for_connectivity": ("repro.linalg.moves", "augment_moves_for_connectivity"),
}


def __getattr__(name: str):
    """Deprecation shim for pre-pipeline imports of stage internals.

    ``repro.core.solver`` used to re-export the stage building blocks it
    imported (``prune_schedule``, ``simplify_basis``, ...); they now live
    behind :mod:`repro.pipeline` stages.  Old imports keep working for
    one release but warn.
    """
    moved = _MOVED_NAMES.get(name)
    if moved is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr = moved
    warnings.warn(
        f"importing {attr!r} from repro.core.solver is deprecated since the "
        f"pipeline refactor; import it from {module_name} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


@dataclass
class RasenganConfig:
    """Solver knobs.

    Attributes:
        shots: measurement shots per segment execution (``None`` with the
            sparse engine means exact probabilities, no sampling).
        max_iterations: COBYLA iteration budget (paper: 300 noise-free,
            100 on hardware).
        transitions_per_segment: chain length per segment (1 = the
            minimal-depth configuration; used when ``max_segment_cx`` is
            ``None``).
        max_segment_cx: when set, segments are packed greedily so each
            stays within this CX budget (the paper's deployment policy —
            e.g. F1 runs as 3 segments of ~49 depth); takes precedence
            over ``transitions_per_segment``.
        enable_simplify: run Algorithm 1 on the basis.
        simplify_iterate: iterate Algorithm 1 to a fixed point.
        enable_prune: prune unproductive transitions / early stop.
        enable_augment: add signed-unit basis combinations when single
            transitions cannot connect the feasible space (see
            :mod:`repro.core.augment`).
        enable_purify: constraint-based purification between segments.
        initial_time: starting evolution time for every transition.
        shots_growth: geometric growth factor of per-segment shots; later
            segments carry the accumulated distribution, so giving them
            more shots preserves probability information better (Figure 7
            boosts the final segment 10x).  1.0 = uniform shots.
        warm_start: hill-climb the initial feasible solution along the
            move set before building the schedule (classical, free, never
            worse than the domain construction).
        restarts: independent COBYLA starts (the first from
            ``initial_time``, the rest from perturbed time vectors); the
            best final score wins.  Multi-start is the standard cure for
            the non-convex time landscape's local optima.
        rhobeg: COBYLA initial trust-region radius.
        seed: RNG seed for sampling.
        min_seed_probability: segment-input states below this probability
            are dropped (emulates finite shot resolution when running with
            exact probabilities).
        engine_workers: process-pool width for the execution engine
            (``None`` = the process-wide default; restarts and noise
            trajectories fan out, bit-identically to a serial run).
    """

    shots: Optional[int] = 1024
    max_iterations: int = 100
    transitions_per_segment: int = 1
    max_segment_cx: Optional[int] = None
    enable_simplify: bool = True
    simplify_iterate: bool = True
    enable_prune: bool = True
    enable_augment: bool = True
    enable_purify: bool = True
    initial_time: float = math.pi / 4
    shots_growth: float = 1.0
    warm_start: bool = False
    restarts: int = 1
    rhobeg: float = 0.4
    seed: Optional[int] = None
    min_seed_probability: float = 1e-4
    engine_workers: Optional[int] = None


@dataclass
class RasenganResult:
    """Outcome of one Rasengan training run."""

    problem_name: str
    best_parameters: np.ndarray
    expectation_value: float
    best_sampled_value: float
    best_sampled_solution: np.ndarray
    optimal_value: float
    arg: float
    in_constraints_rate: float
    final_distribution: Dict[int, float]
    iterations: int
    history: List[float]
    num_parameters: int
    num_segments: int
    schedule: List[int]
    pruned: PruneResult
    basis: np.ndarray
    failed: bool = False

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.problem_name}: ARG={self.arg:.4f} "
            f"E[obj]={self.expectation_value:.3f} (opt={self.optimal_value:.3f}) "
            f"in-constraints={self.in_constraints_rate:.1%} "
            f"segments={self.num_segments} params={self.num_parameters}"
        )

    def to_json_dict(self) -> Dict[str, object]:
        """Deterministic JSON-compatible record of this run.

        The single wire format shared by the ``solve`` CLI subcommand and
        the solve service (``docs/SERVICE.md``): two runs are bit-for-bit
        identical exactly when these dicts are equal.
        """
        return {
            "problem": self.problem_name,
            "arg": self.arg,
            "expectation": self.expectation_value,
            "in_constraints_rate": self.in_constraints_rate,
            "parameters": [float(value) for value in self.best_parameters],
            "distribution": {
                str(key): value
                for key, value in sorted(self.final_distribution.items())
            },
        }


def _run_restart(task) -> Tuple[np.ndarray, List[float]]:
    """One COBYLA restart (module-level so the engine pool can run it).

    The task carries a pre-spawned child seed; reseeding the (worker-local
    or in-process) engine from it makes the restart a pure function of the
    root seed, so parallel and serial runs produce identical candidates.
    """
    solver, start, seed, index = task
    solver.engine.reseed(seed)
    history: List[float] = []

    def objective(times: np.ndarray) -> float:
        telemetry.add("optimizer.iterations")
        try:
            distribution, _ = solver.execute(times)
        except NoFeasibleStateError:
            history.append(_FAILURE_SCORE)
            return _FAILURE_SCORE
        score = solver._score(distribution)
        history.append(score)
        return score

    with telemetry.span("restart", index=index):
        outcome = sciopt.minimize(
            objective,
            start,
            method="COBYLA",
            options={
                "maxiter": solver.config.max_iterations,
                "rhobeg": solver.config.rhobeg,
            },
        )
    return np.asarray(outcome.x, dtype=float), history


class RasenganSolver:
    """Variational solver: thin orchestration over the staged pipeline.

    Construction compiles the problem through the five pre-execution
    passes (basis → hamiltonian → prune → segmentation → circuit) of a
    :class:`~repro.pipeline.SolvePipeline`, reusing any artifact the
    content-addressed cache already holds; :meth:`solve` then trains the
    evolution times through the terminal (uncached) execution stage.

    Args:
        problem: the problem instance.
        backend: backend spec forwarded to the engine (``None`` = exact).
        config: solver knobs (default :class:`RasenganConfig`).
        engine: share an existing engine instead of building one.
        artifact_cache: pipeline artifact cache; ``None`` uses the
            process-wide default (see
            :func:`repro.pipeline.configure_cache`).
    """

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        backend: BackendSpec = None,
        config: Optional[RasenganConfig] = None,
        engine: Optional[ExecutionEngine] = None,
        artifact_cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.problem = problem
        self.config = config or RasenganConfig()
        self._rng = make_rng(self.config.seed)
        self._bank = SeedBank(self.config.seed)
        if engine is None:
            engine = ExecutionEngine(
                backend,
                seed=self._bank.child(),
                workers=self.config.engine_workers,
            )
        self.engine = engine

        self.pipeline = SolvePipeline(
            problem, self.config, cache=artifact_cache
        )
        artifacts = self.pipeline.compile()
        self.initial_bits = artifacts["prune"].initial_bits
        self.basis = artifacts["hamiltonian"].basis
        self.pruned = artifacts["prune"].pruned
        self.schedule: List[int] = list(artifacts["prune"].schedule)
        self.plan = artifacts["segmentation"].plan
        self.circuit_artifact: CircuitArtifact = artifacts["circuit"]
        self.chain = TransitionChainSpec(
            self.basis, self.schedule, problem.num_variables
        )
        self._executor = ExecutionStage(problem, self.config)

    @property
    def backend(self):
        """The engine's backend (``None`` in exact mode)."""
        return self.engine.backend

    # ------------------------------------------------------------------
    # Basis selection (deprecated — lives in the hamiltonian pass now)
    # ------------------------------------------------------------------
    def _choose_basis(self, raw: np.ndarray) -> np.ndarray:
        """Deprecated: use :func:`repro.pipeline.choose_basis`."""
        warnings.warn(
            "RasenganSolver._choose_basis is deprecated; the selection runs "
            "inside the pipeline's hamiltonian stage "
            "(repro.pipeline.choose_basis)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.pipeline import choose_basis

        winner, _, _ = choose_basis(raw, self.initial_bits, self.config)
        return winner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """One evolution time per retained transition."""
        return len(self.schedule)

    @property
    def num_segments(self) -> int:
        return self.plan.num_segments

    def segment_two_qubit_cost(self) -> int:
        """Largest per-segment CX cost under the linear ``34 k`` model."""
        return self.circuit_artifact.max_segment_cx

    def chain_two_qubit_cost(self) -> int:
        """Whole-chain CX cost under the linear model (unsegmented)."""
        return self.circuit_artifact.chain_cx

    def segment_circuit(self, positions: Sequence[int], times: Sequence[float]):
        """Bound gate-level circuit of one segment (engine-cached)."""
        return self.engine.segment_circuit(self.chain, positions, times)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, times: Sequence[float]
    ) -> Tuple[Dict[int, float], float]:
        """Run the segmented pipeline with the given evolution times.

        Returns:
            ``(final distribution, in-constraints rate)`` where the
            distribution is purified when purification is enabled, and the
            rate refers to the *final segment's raw output* (what the
            in-constraints metric of Figure 11b reports).

        Raises:
            NoFeasibleStateError: when purification is enabled and a
                segment output contains no feasible state.
        """
        if len(times) != self.num_parameters:
            raise SolverError(
                f"expected {self.num_parameters} times, got {len(times)}"
            )
        if self.engine.is_exact:
            base_shots = self.config.shots
        else:
            base_shots = self.config.shots or 1024
        return self._executor.run(
            self.engine,
            self.chain,
            self.plan,
            self.initial_bits,
            times,
            base_shots,
        )

    def execute_batch(
        self, batch: Sequence[Sequence[float]]
    ) -> List[Tuple[Dict[int, float], float]]:
        """Execute a batch of time vectors (engine-instrumented)."""
        return self.engine.run_batch(self.execute, batch, label="execute")

    def _segment_shots(self, segment_index: int, base: int) -> int:
        """Shots for one segment under the geometric growth schedule."""
        return self._executor.segment_shots(segment_index, base)

    # ------------------------------------------------------------------
    def _feasible_mass(self, distribution: Dict[int, float]) -> float:
        return self._executor._feasible_mass(distribution)

    def _purify_or_keep(self, raw: Dict[int, float]) -> Dict[int, float]:
        return self._executor._purify_or_keep(raw)

    def _drop_tiny(self, distribution: Dict[int, float]) -> Dict[int, float]:
        return self._executor._drop_tiny(distribution)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _score(self, distribution: Dict[int, float]) -> float:
        """Expected minimization-oriented objective over feasible states."""
        n = self.problem.num_variables
        numerator = 0.0
        mass = 0.0
        for key, probability in distribution.items():
            bits = int_to_bits(key, n)
            if self.problem.is_feasible(bits):
                numerator += probability * self.problem.value(bits)
                mass += probability
        if mass <= 0:
            return _FAILURE_SCORE
        return numerator / mass

    def solve(self) -> RasenganResult:
        """Train the evolution times and return the best result found.

        Restarts are independent work units: each gets a pre-spawned child
        seed and runs through :meth:`ExecutionEngine.map` (in-process by
        default, process-pool when the engine has workers — bit-identical
        either way).  The finishing candidates are then re-scored through
        :meth:`ExecutionEngine.run_batch`.
        """
        history: List[float] = []

        with telemetry.span(
            "solve",
            problem=self.problem.name,
            parameters=self.num_parameters,
            segments=self.num_segments,
        ) as solve_span:
            x0 = np.full(self.num_parameters, self.config.initial_time)
            if self.num_parameters == 0:
                # Degenerate problem: a single feasible solution.
                return self._finalize(x0, history)

            starts = [x0]
            for _ in range(max(self.config.restarts, 1) - 1):
                starts.append(
                    x0
                    + self._rng.uniform(
                        -self.config.initial_time,
                        self.config.initial_time,
                        size=self.num_parameters,
                    )
                )
            for _ in starts:
                telemetry.add("optimizer.restarts")
            restart_seeds = self._bank.spawn(len(starts))
            tasks = [
                (self, start, seed, index)
                for index, (start, seed) in enumerate(zip(starts, restart_seeds))
            ]
            outcomes = self.engine.map(_run_restart, tasks, label="restarts")
            candidates: List[np.ndarray] = []
            for candidate, restart_history in outcomes:
                candidates.append(candidate)
                history.extend(restart_history)

            score_seeds = self._bank.spawn(len(candidates))

            def score_candidate(item) -> float:
                seed, candidate = item
                telemetry.add("optimizer.iterations")
                self.engine.reseed(seed)
                try:
                    distribution, _ = self.execute(candidate)
                except NoFeasibleStateError:
                    history.append(_FAILURE_SCORE)
                    return _FAILURE_SCORE
                score = self._score(distribution)
                history.append(score)
                return score

            scores = self.engine.run_batch(
                score_candidate,
                list(zip(score_seeds, candidates)),
                label="restart-scores",
            )
            best_index = int(np.argmin(scores))
            best = candidates[best_index]
            best_score = scores[best_index]
            solve_span.set(iterations=len(history), best_score=best_score)
            return self._finalize(best, history)

    def _finalize(
        self, best_parameters: np.ndarray, history: List[float]
    ) -> RasenganResult:
        n = self.problem.num_variables
        try:
            distribution, rate = self.execute(best_parameters)
            failed = False
        except NoFeasibleStateError:
            distribution, rate, failed = {}, 0.0, True

        if failed:
            expectation = _FAILURE_SCORE
            best_key = bits_to_int(self.initial_bits)
            best_bits = self.initial_bits
        else:
            expectation = self._score(distribution)
            feasible_items = [
                (key, probability)
                for key, probability in distribution.items()
                if self.problem.is_feasible(int_to_bits(key, n))
            ]
            best_key = min(
                feasible_items,
                key=lambda item: self.problem.value(int_to_bits(item[0], n)),
            )[0]
            best_bits = int_to_bits(best_key, n)

        optimal = self.problem.optimal_value
        return RasenganResult(
            problem_name=self.problem.name,
            best_parameters=np.asarray(best_parameters, dtype=float),
            expectation_value=expectation,
            best_sampled_value=self.problem.value(best_bits),
            best_sampled_solution=best_bits,
            optimal_value=optimal,
            arg=approximation_ratio_gap(optimal, expectation),
            in_constraints_rate=1.0 if (self.config.enable_purify and not failed) else rate,
            final_distribution=distribution,
            iterations=len(history),
            history=history,
            num_parameters=self.num_parameters,
            num_segments=self.num_segments,
            schedule=list(self.schedule),
            pruned=self.pruned,
            basis=self.basis,
            failed=failed,
        )
