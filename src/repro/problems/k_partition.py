"""Balanced k-partition of a weighted graph (KPP).

Assign each of ``e`` elements (graph nodes) to exactly one of ``k`` parts,
with prescribed part sizes, minimising the total weight of edges cut::

    min  sum_{(u,v) in E} w_uv * (1 - sum_p x_up * x_vp)
    s.t. sum_p x_ep = 1          for every element e    (one-hot)
         sum_e x_ep = size_p     for every part p       (balance)

Variable layout: ``x_{e,p}`` in element-major order.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import ProblemError
from repro.problems.base import ConstrainedBinaryProblem


class KPartitionProblem(ConstrainedBinaryProblem):
    """A balanced graph-partitioning instance.

    Args:
        graph: weighted undirected graph on nodes ``0..e-1`` (edge weights
            default to 1 when missing).
        part_sizes: number of elements in each part; must sum to ``e``.
        name: instance name.
    """

    def __init__(
        self,
        graph: nx.Graph,
        part_sizes: Sequence[int],
        name: str = "kpp",
    ) -> None:
        self.graph = graph
        self.part_sizes = tuple(int(s) for s in part_sizes)
        e = graph.number_of_nodes()
        k = len(self.part_sizes)
        if sorted(graph.nodes) != list(range(e)):
            raise ProblemError("graph nodes must be 0..e-1")
        if sum(self.part_sizes) != e:
            raise ProblemError("part sizes must sum to the number of elements")
        self.num_elements = e
        self.num_parts = k

        n = e * k
        m = e + k
        matrix = np.zeros((m, n), dtype=np.int64)
        bound = np.zeros(m, dtype=np.int64)
        for element in range(e):
            for part in range(k):
                matrix[element, self.x_index(element, part)] = 1
            bound[element] = 1
        for part in range(k):
            for element in range(e):
                matrix[e + part, self.x_index(element, part)] = 1
            bound[e + part] = self.part_sizes[part]
        super().__init__(name, matrix, bound, sense="min")

        self._edges: Tuple[Tuple[int, int, float], ...] = tuple(
            (u, v, float(data.get("weight", 1.0)))
            for u, v, data in graph.edges(data=True)
        )

    def x_index(self, element: int, part: int) -> int:
        """Index of the assignment variable ``x_{element,part}``."""
        return element * self.num_parts + part

    def objective(self, x: np.ndarray) -> float:
        arr = np.asarray(x, dtype=np.float64).reshape(
            self.num_elements, self.num_parts
        )
        cut = 0.0
        for u, v, weight in self._edges:
            same_part = float(arr[u] @ arr[v])
            cut += weight * (1.0 - same_part)
        return cut

    def initial_feasible_solution(self) -> np.ndarray:
        """Fill parts to capacity in element order — ``O(e)`` time."""
        solution = np.zeros(self.num_variables, dtype=np.int8)
        part = 0
        used = 0
        for element in range(self.num_elements):
            while used >= self.part_sizes[part]:
                part += 1
                used = 0
            solution[self.x_index(element, part)] = 1
            used += 1
        return solution

    @classmethod
    def random(
        cls,
        num_elements: int,
        num_parts: int,
        seed: Optional[int] = None,
        edge_probability: float = 0.6,
        name: str = "kpp",
    ) -> "KPartitionProblem":
        """Random weighted graph with near-equal part sizes."""
        rng = np.random.default_rng(seed)
        graph = nx.Graph()
        graph.add_nodes_from(range(num_elements))
        for u in range(num_elements):
            for v in range(u + 1, num_elements):
                if rng.random() < edge_probability:
                    graph.add_edge(u, v, weight=int(rng.integers(1, 5)))
        base, extra = divmod(num_elements, num_parts)
        sizes = [base + (1 if p < extra else 0) for p in range(num_parts)]
        return cls(graph, sizes, name=name)
