"""Uncapacitated facility location (FLP).

Decide which facilities to open (``y_i``) and which open facility serves
each demand (``x_ij``), minimising fixed opening costs plus assignment
costs::

    min  sum_i open_cost_i * y_i + sum_ij assign_cost_ij * x_ij
    s.t. sum_i x_ij = 1                      for every demand j
         x_ij - y_i + s_ij = 0               for every pair (i, j)

The linking inequality ``x_ij <= y_i`` is converted to an equality with one
unit slack bit ``s_ij``, keeping the constraint matrix in {-1, 0, 1}.

Variable layout: ``[y_0..y_{f-1}, x_00..x_{f-1,d-1}, s_00..s_{f-1,d-1}]``
with ``x`` and ``s`` in facility-major order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.base import ConstrainedBinaryProblem


class FacilityLocationProblem(ConstrainedBinaryProblem):
    """An FLP instance.

    Args:
        open_costs: length-``f`` fixed cost of opening each facility.
        assign_costs: ``(f, d)`` cost of serving demand ``j`` from
            facility ``i``.
        name: instance name.
    """

    def __init__(
        self,
        open_costs: np.ndarray,
        assign_costs: np.ndarray,
        name: str = "flp",
    ) -> None:
        self.open_costs = np.asarray(open_costs, dtype=np.float64)
        self.assign_costs = np.asarray(assign_costs, dtype=np.float64)
        if self.assign_costs.ndim != 2:
            raise ProblemError("assign_costs must be (facilities, demands)")
        f, d = self.assign_costs.shape
        if self.open_costs.shape != (f,):
            raise ProblemError("open_costs length must equal facility count")
        self.num_facilities = f
        self.num_demands = d

        n = f + 2 * f * d
        m = d + f * d
        matrix = np.zeros((m, n), dtype=np.int64)
        bound = np.zeros(m, dtype=np.int64)
        # Demand coverage: sum_i x_ij = 1.
        for j in range(d):
            for i in range(f):
                matrix[j, self.x_index(i, j)] = 1
            bound[j] = 1
        # Linking: x_ij - y_i + s_ij = 0.
        for i in range(f):
            for j in range(d):
                row = d + i * d + j
                matrix[row, self.x_index(i, j)] = 1
                matrix[row, self.y_index(i)] = -1
                matrix[row, self.s_index(i, j)] = 1
        super().__init__(name, matrix, bound, sense="min")

    # ------------------------------------------------------------------
    # Variable layout
    # ------------------------------------------------------------------
    def y_index(self, facility: int) -> int:
        """Index of the opening variable of ``facility``."""
        return facility

    def x_index(self, facility: int, demand: int) -> int:
        """Index of the assignment variable ``x_{facility,demand}``."""
        return self.num_facilities + facility * self.num_demands + demand

    def s_index(self, facility: int, demand: int) -> int:
        """Index of the slack bit of the linking constraint."""
        offset = self.num_facilities + self.num_facilities * self.num_demands
        return offset + facility * self.num_demands + demand

    # ------------------------------------------------------------------
    def objective(self, x: np.ndarray) -> float:
        arr = np.asarray(x, dtype=np.float64)
        open_part = float(self.open_costs @ arr[: self.num_facilities])
        assignment = arr[
            self.num_facilities : self.num_facilities
            + self.num_facilities * self.num_demands
        ].reshape(self.num_facilities, self.num_demands)
        return open_part + float((self.assign_costs * assignment).sum())

    def initial_feasible_solution(self) -> np.ndarray:
        """Open facility 0 and route every demand to it — ``O(d)`` time."""
        solution = np.zeros(self.num_variables, dtype=np.int8)
        solution[self.y_index(0)] = 1
        for j in range(self.num_demands):
            solution[self.x_index(0, j)] = 1
        # Slacks: s_ij = y_i - x_ij; zero everywhere for this construction.
        return solution

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        num_facilities: int,
        num_demands: int,
        seed: Optional[int] = None,
        name: str = "flp",
    ) -> "FacilityLocationProblem":
        """Random instance with integer costs (opening ≫ assignment)."""
        rng = np.random.default_rng(seed)
        open_costs = rng.integers(3, 10, size=num_facilities)
        assign_costs = rng.integers(1, 6, size=(num_facilities, num_demands))
        return cls(open_costs, assign_costs, name=name)
