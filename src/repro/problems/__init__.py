"""Constrained binary optimization benchmark problems.

The five application domains the paper evaluates (Section 5.1):

* facility location (FLP),
* k-partition / graph partitioning (KPP),
* job scheduling on identical machines (JSP),
* set cover (SCP),
* graph coloring (GCP).

Each problem exposes the canonical form ``min f(x)  s.t.  C x = b,
x in {0,1}^n`` (inequalities already converted to equalities with unit slack
bits so the constraint matrix stays in {-1,0,1}), a *linear-time*
domain-specific feasible initialization (paper, "Complexity of finding a
feasible solution"), and instance generators for randomized cases.
"""

from repro.problems.base import ConstrainedBinaryProblem
from repro.problems.facility_location import FacilityLocationProblem
from repro.problems.k_partition import KPartitionProblem
from repro.problems.job_scheduling import JobSchedulingProblem
from repro.problems.set_cover import SetCoverProblem
from repro.problems.graph_coloring import GraphColoringProblem
from repro.problems.registry import (
    BENCHMARK_IDS,
    BenchmarkSpec,
    benchmark_spec,
    make_benchmark,
    benchmark_suite,
)

__all__ = [
    "ConstrainedBinaryProblem",
    "FacilityLocationProblem",
    "KPartitionProblem",
    "JobSchedulingProblem",
    "SetCoverProblem",
    "GraphColoringProblem",
    "BENCHMARK_IDS",
    "BenchmarkSpec",
    "benchmark_spec",
    "make_benchmark",
    "benchmark_suite",
]
