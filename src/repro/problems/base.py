"""Base class for constrained binary optimization problems.

The canonical form (paper, Equation 1) is::

    min f(x)   s.t.   C x = b,   x in {0,1}^n

Maximization problems store ``sense="max"``; :meth:`value` always returns a
*minimization-oriented* score so that solvers and metrics can treat every
problem uniformly.  The soft (penalty) form of Equation 1 is available as
:meth:`penalty_value`.
"""

from __future__ import annotations

import abc
import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.linalg.bitvec import bits_to_int, int_to_bits
from repro.linalg.feasible import (
    BRUTEFORCE_LIMIT,
    enumerate_feasible_bruteforce,
    enumerate_feasible_by_expansion,
    greedy_particular_solution,
)
from repro.linalg.moves import augment_moves_for_connectivity
from repro.linalg.nullspace import integer_nullspace


class ConstrainedBinaryProblem(abc.ABC):
    """A problem instance ``min/max f(x)  s.t.  C x = b, x binary``.

    Subclasses implement :meth:`objective` (the natural-valued objective)
    and usually override :meth:`initial_feasible_solution` with the paper's
    linear-time domain construction.

    Attributes:
        name: human-readable instance name.
        constraint_matrix: integer matrix ``C`` of shape ``(m, n)``.
        bound: integer vector ``b`` of length ``m``.
        sense: ``"min"`` or ``"max"``.
    """

    def __init__(
        self,
        name: str,
        constraint_matrix: np.ndarray,
        bound: np.ndarray,
        sense: str = "min",
    ) -> None:
        matrix = np.asarray(constraint_matrix, dtype=np.int64)
        target = np.asarray(bound, dtype=np.int64)
        if matrix.ndim != 2:
            raise ProblemError("constraint matrix must be 2-D")
        if target.shape != (matrix.shape[0],):
            raise ProblemError(
                f"bound length {target.shape} does not match "
                f"{matrix.shape[0]} constraints"
            )
        if sense not in ("min", "max"):
            raise ProblemError(f"sense must be 'min' or 'max', got {sense!r}")
        self.name = name
        self.constraint_matrix = matrix
        self.bound = target
        self.sense = sense

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of binary decision variables (= qubits)."""
        return int(self.constraint_matrix.shape[1])

    @property
    def num_constraints(self) -> int:
        return int(self.constraint_matrix.shape[0])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"n={self.num_variables}, m={self.num_constraints})"
        )

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def objective(self, x: np.ndarray) -> float:
        """Natural objective value of an assignment (feasible or not)."""

    def value(self, x: np.ndarray) -> float:
        """Minimization-oriented score (negated objective for max problems)."""
        raw = self.objective(np.asarray(x))
        return -raw if self.sense == "max" else raw

    def penalty_value(self, x: np.ndarray, penalty: float) -> float:
        """Soft-constrained score ``value(x) + penalty * ||C x - b||_1``."""
        arr = np.asarray(x, dtype=np.int64)
        violation = np.abs(self.constraint_matrix @ arr - self.bound).sum()
        return self.value(arr) + penalty * float(violation)

    def constraint_violation(self, x: np.ndarray) -> int:
        """L1 norm of the constraint residual."""
        arr = np.asarray(x, dtype=np.int64)
        return int(np.abs(self.constraint_matrix @ arr - self.bound).sum())

    def is_feasible(self, x: np.ndarray) -> bool:
        return self.constraint_violation(x) == 0

    # ------------------------------------------------------------------
    # Feasible space
    # ------------------------------------------------------------------
    def initial_feasible_solution(self) -> np.ndarray:
        """One feasible solution, used to initialise Rasengan's circuit.

        The generic fallback runs a pruned DFS; subclasses provide the
        linear-time constructions catalogued in Section 5.1 of the paper.
        """
        return greedy_particular_solution(self.constraint_matrix, self.bound)

    @functools.cached_property
    def homogeneous_basis(self) -> np.ndarray:
        """Signed-unit basis of ``C u = 0`` (rows are the vectors ``u_k``)."""
        return integer_nullspace(self.constraint_matrix, require_signed_unit=True)

    @functools.cached_property
    def feasible_solutions(self) -> List[np.ndarray]:
        """Every feasible solution (exact, cached).

        Brute force up to :data:`~repro.linalg.feasible.BRUTEFORCE_LIMIT`
        variables; beyond that, expansion from the initial solution along
        the homogeneous basis (exact for the TU-structured benchmarks).
        """
        if self.num_variables <= BRUTEFORCE_LIMIT:
            return enumerate_feasible_bruteforce(self.constraint_matrix, self.bound)
        initial = self.initial_feasible_solution()
        moves = augment_moves_for_connectivity(self.homogeneous_basis, initial)
        return enumerate_feasible_by_expansion(initial, moves)

    @property
    def num_feasible_solutions(self) -> int:
        return len(self.feasible_solutions)

    @functools.cached_property
    def _optimum(self) -> Tuple[float, np.ndarray]:
        solutions = self.feasible_solutions
        if not solutions:
            raise ProblemError(f"{self.name} has no feasible solution")
        best = min(solutions, key=self.value)
        return self.value(best), best

    @property
    def optimal_value(self) -> float:
        """Minimization-oriented optimum ``E_opt`` (used by ARG)."""
        return self._optimum[0]

    @property
    def optimal_solution(self) -> np.ndarray:
        return self._optimum[1].copy()

    def mean_feasible_value(self) -> float:
        """Average score over the feasible space.

        The paper uses this as the "mean quality of feasible solutions"
        baseline that hardware runs of prior VQAs fail to beat (Section 5.4).
        """
        solutions = self.feasible_solutions
        return float(np.mean([self.value(x) for x in solutions]))

    # ------------------------------------------------------------------
    # Distribution scoring helpers
    # ------------------------------------------------------------------
    def expectation_from_counts(
        self,
        counts: Dict[int, int],
        *,
        penalty: Optional[float] = None,
    ) -> float:
        """Expected score of a measured distribution.

        Args:
            counts: ``{basis index: shots}``.
            penalty: when given, infeasible samples contribute their
                penalty-augmented score (how penalty-based baselines are
                scored); when ``None``, infeasible samples are scored by
                their raw value.
        """
        total = sum(counts.values())
        if total == 0:
            raise ProblemError("empty counts")
        acc = 0.0
        for key, count in counts.items():
            bits = int_to_bits(key, self.num_variables)
            if penalty is not None:
                score = self.penalty_value(bits, penalty)
            else:
                score = self.value(bits)
            acc += score * count
        return acc / total

    def in_constraints_rate(self, counts: Dict[int, int]) -> float:
        """Fraction of measured shots that satisfy ``C x = b``."""
        total = sum(counts.values())
        if total == 0:
            return 0.0
        feasible = sum(
            count
            for key, count in counts.items()
            if self.is_feasible(int_to_bits(key, self.num_variables))
        )
        return feasible / total

    def feasible_keys(self) -> Tuple[int, ...]:
        """Integer encodings of all feasible solutions, sorted."""
        return tuple(sorted(bits_to_int(x) for x in self.feasible_solutions))
