"""Weighted set cover (SCP).

Choose a minimum-cost family of sets covering every element of a universe::

    min  sum_s cost_s * x_s
    s.t. sum_{s : e in s} x_s >= 1      for every element e

Each covering inequality becomes an equality with unit slack bits: if
element ``e`` appears in ``cov_e`` sets, the row reads
``sum_{s ∋ e} x_s - sum_{t=1..cov_e-1} z_{e,t} = 1`` — using ``cov_e - 1``
unit slacks keeps every matrix entry in {-1, 0, 1} (a single weighted slack
would not).

Variable layout: ``[x_0..x_{s-1}]`` then slack bits grouped by element.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.base import ConstrainedBinaryProblem


class SetCoverProblem(ConstrainedBinaryProblem):
    """A weighted set-cover instance.

    Args:
        subsets: the available sets, each a collection of element ids
            ``0..e-1``.
        costs: length-``s`` set costs.
        num_elements: universe size ``e``.
        name: instance name.
    """

    def __init__(
        self,
        subsets: Sequence[Set[int]],
        costs: Sequence[float],
        num_elements: int,
        name: str = "scp",
    ) -> None:
        self.subsets: Tuple[frozenset, ...] = tuple(frozenset(s) for s in subsets)
        self.costs = np.asarray(costs, dtype=np.float64)
        self.num_sets = len(self.subsets)
        self.num_elements = int(num_elements)
        if self.costs.shape != (self.num_sets,):
            raise ProblemError("costs length must equal number of sets")
        coverage = [
            [s for s in range(self.num_sets) if element in self.subsets[s]]
            for element in range(self.num_elements)
        ]
        for element, covering in enumerate(coverage):
            if not covering:
                raise ProblemError(f"element {element} is covered by no set")

        # Slack layout: element e owns cov_e - 1 slack bits.
        self._slack_offsets: List[int] = []
        offset = self.num_sets
        for covering in coverage:
            self._slack_offsets.append(offset)
            offset += len(covering) - 1
        n = offset
        matrix = np.zeros((self.num_elements, n), dtype=np.int64)
        bound = np.ones(self.num_elements, dtype=np.int64)
        for element, covering in enumerate(coverage):
            for s in covering:
                matrix[element, s] = 1
            start = self._slack_offsets[element]
            for t in range(len(covering) - 1):
                matrix[element, start + t] = -1
        super().__init__(name, matrix, bound, sense="min")
        self._coverage = coverage

    def x_index(self, subset: int) -> int:
        """Index of the selection variable of ``subset``."""
        return subset

    def slack_indices(self, element: int) -> range:
        """Indices of the slack bits belonging to ``element``'s row."""
        start = self._slack_offsets[element]
        return range(start, start + len(self._coverage[element]) - 1)

    def objective(self, x: np.ndarray) -> float:
        arr = np.asarray(x, dtype=np.float64)
        return float(self.costs @ arr[: self.num_sets])

    def initial_feasible_solution(self) -> np.ndarray:
        """Select every set — ``O(s)`` time (paper, Section 5.1).

        Every element is then covered ``cov_e`` times, so all its
        ``cov_e - 1`` slack bits are 1.
        """
        solution = np.ones(self.num_variables, dtype=np.int8)
        return solution

    @classmethod
    def random(
        cls,
        num_sets: int,
        num_elements: int,
        seed: Optional[int] = None,
        name: str = "scp",
    ) -> "SetCoverProblem":
        """Random instance where every element is covered 2+ times.

        Coverage multiplicity is what gives SCP its large feasible space
        (the paper's S4 has the most feasible solutions of all benchmarks).
        """
        rng = np.random.default_rng(seed)
        subsets: List[Set[int]] = [set() for _ in range(num_sets)]
        for element in range(num_elements):
            cover_count = int(rng.integers(2, min(num_sets, 4) + 1))
            chosen = rng.choice(num_sets, size=cover_count, replace=False)
            for s in chosen:
                subsets[int(s)].add(element)
        # Ensure no set is empty (an empty set is never useful but keeps
        # the variable count as requested).
        for s, subset in enumerate(subsets):
            if not subset:
                subset.add(int(rng.integers(0, num_elements)))
        costs = rng.integers(1, 8, size=num_sets)
        return cls(subsets, costs, num_elements, name=name)
