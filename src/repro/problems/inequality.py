"""Generic inequality-to-equality conversion with unit slack bits.

The paper's problem form (Equation 1) takes equality constraints only;
"the inequality constraints can be transformed into equality using
auxiliary binary variables" (Section 2.1).  The shipped domains each do
this by hand; this module provides the general transformation for custom
problems:

* ``a.x <= b``  becomes  ``a.x + s_1 + ... + s_k = b``
* ``a.x >= b``  becomes  ``a.x - s_1 - ... - s_k = b``

with ``k`` *unit* slack bits, where ``k`` is the worst-case slack range
of the row over binary ``x``.  Unit bits (rather than one binary-encoded
slack integer) keep every matrix entry in {-1, 0, 1}, which is the
precondition for a signed-unit homogeneous basis and hence for transition
Hamiltonians.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ProblemError

#: Recognised constraint senses.
SENSES = ("<=", ">=", "==")


@dataclass(frozen=True)
class SlackConversion:
    """Result of converting a mixed system to pure equalities.

    Attributes:
        matrix: the widened equality matrix (original variables first,
            slack bits appended in row order).
        bound: unchanged right-hand sides.
        num_original: number of original variables.
        slack_ranges: per-row ``(start, stop)`` slack column ranges in the
            widened matrix (empty range for equality rows).
    """

    matrix: np.ndarray
    bound: np.ndarray
    num_original: int
    slack_ranges: Tuple[Tuple[int, int], ...]

    @property
    def num_slack(self) -> int:
        return int(self.matrix.shape[1]) - self.num_original

    def lift(self, x: np.ndarray) -> np.ndarray:
        """Extend an original-variable assignment with consistent slacks.

        Raises :class:`ProblemError` when ``x`` violates an inequality
        (no binary slack assignment can fix the row).
        """
        x = np.asarray(x, dtype=np.int64)
        if x.shape != (self.num_original,):
            raise ProblemError("assignment length mismatch")
        lifted = np.zeros(self.matrix.shape[1], dtype=np.int8)
        lifted[: self.num_original] = x
        for row, (start, stop) in enumerate(self.slack_ranges):
            residual = int(
                self.bound[row]
                - self.matrix[row, : self.num_original] @ x
            )
            width = stop - start
            if width == 0:
                if residual != 0:
                    raise ProblemError(f"equality row {row} violated")
                continue
            sign = int(self.matrix[row, start])  # +1 for <=, -1 for >=
            needed = residual * sign
            if needed < 0 or needed > width:
                raise ProblemError(
                    f"row {row}: inequality violated (needs {needed} of "
                    f"{width} slack bits)"
                )
            lifted[start : start + needed] = 1
        return lifted


def slack_bound(coefficients: np.ndarray, bound: int, sense: str) -> int:
    """Worst-case number of unit slack bits one inequality row needs."""
    coefficients = np.asarray(coefficients, dtype=np.int64)
    row_min = int(np.minimum(coefficients, 0).sum())
    row_max = int(np.maximum(coefficients, 0).sum())
    if sense == "<=":
        # slack = b - a.x ranges up to b - row_min.
        return max(bound - row_min, 0)
    if sense == ">=":
        return max(row_max - bound, 0)
    raise ProblemError(f"not an inequality sense: {sense!r}")


def to_equalities(
    matrix: np.ndarray,
    bound: Sequence[int],
    senses: Sequence[str],
) -> SlackConversion:
    """Convert a mixed <= / >= / == system into pure equalities.

    Args:
        matrix: ``(m, n)`` integer coefficient matrix with entries in
            {-1, 0, 1}.
        bound: length-``m`` right-hand sides.
        senses: length-``m`` sequence of ``"<="``, ``">="`` or ``"=="``.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    bound_arr = np.asarray(bound, dtype=np.int64)
    if matrix.ndim != 2:
        raise ProblemError("matrix must be 2-D")
    m, n = matrix.shape
    if bound_arr.shape != (m,) or len(senses) != m:
        raise ProblemError("bound/senses length mismatch")
    if np.any(np.abs(matrix) > 1):
        raise ProblemError(
            "entries outside {-1,0,1}: the transition-Hamiltonian framework "
            "requires signed-unit constraint coefficients"
        )
    for sense in senses:
        if sense not in SENSES:
            raise ProblemError(f"unknown sense {sense!r}")

    widths: List[int] = []
    for row in range(m):
        if senses[row] == "==":
            widths.append(0)
        else:
            widths.append(slack_bound(matrix[row], int(bound_arr[row]), senses[row]))
    total_slack = sum(widths)
    widened = np.zeros((m, n + total_slack), dtype=np.int64)
    widened[:, :n] = matrix
    ranges: List[Tuple[int, int]] = []
    cursor = n
    for row in range(m):
        width = widths[row]
        ranges.append((cursor, cursor + width))
        if width:
            sign = 1 if senses[row] == "<=" else -1
            widened[row, cursor : cursor + width] = sign
        cursor += width
    return SlackConversion(
        matrix=widened,
        bound=bound_arr,
        num_original=n,
        slack_ranges=tuple(ranges),
    )
