"""Identical-machines job scheduling (JSP).

Assign each job to exactly one machine, balancing load.  The makespan
objective is min-max and therefore not linear; the standard
binary-optimization surrogate (also used in QUBO formulations of
identical-machines scheduling) is the sum of squared machine loads, which
is minimised exactly when loads are balanced::

    min  sum_m ( sum_j p_j * x_jm )^2
    s.t. sum_m x_jm = 1     for every job j

Variable layout: ``x_{j,m}`` in job-major order.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.base import ConstrainedBinaryProblem


class JobSchedulingProblem(ConstrainedBinaryProblem):
    """A load-balancing instance.

    Args:
        processing_times: length-``j`` job durations.
        num_machines: number of identical machines.
        name: instance name.
    """

    def __init__(
        self,
        processing_times: Sequence[float],
        num_machines: int,
        name: str = "jsp",
    ) -> None:
        self.processing_times = np.asarray(processing_times, dtype=np.float64)
        if self.processing_times.ndim != 1 or self.processing_times.size == 0:
            raise ProblemError("processing_times must be a non-empty vector")
        if num_machines < 1:
            raise ProblemError("need at least one machine")
        self.num_jobs = int(self.processing_times.size)
        self.num_machines = int(num_machines)

        n = self.num_jobs * self.num_machines
        matrix = np.zeros((self.num_jobs, n), dtype=np.int64)
        bound = np.ones(self.num_jobs, dtype=np.int64)
        for job in range(self.num_jobs):
            for machine in range(self.num_machines):
                matrix[job, self.x_index(job, machine)] = 1
        super().__init__(name, matrix, bound, sense="min")

    def x_index(self, job: int, machine: int) -> int:
        """Index of the assignment variable ``x_{job,machine}``."""
        return job * self.num_machines + machine

    def machine_loads(self, x: np.ndarray) -> np.ndarray:
        """Total processing time on each machine under assignment ``x``."""
        arr = np.asarray(x, dtype=np.float64).reshape(
            self.num_jobs, self.num_machines
        )
        return self.processing_times @ arr

    def objective(self, x: np.ndarray) -> float:
        loads = self.machine_loads(x)
        return float((loads**2).sum())

    def makespan(self, x: np.ndarray) -> float:
        """Maximum machine load (reported for interpretability)."""
        return float(self.machine_loads(x).max())

    def initial_feasible_solution(self) -> np.ndarray:
        """Greedy list scheduling (each job to the least-loaded machine).

        ``O(j * m)``, matching the paper's linear-time claim for small
        fixed machine counts.
        """
        solution = np.zeros(self.num_variables, dtype=np.int8)
        loads = np.zeros(self.num_machines)
        for job in range(self.num_jobs):
            machine = int(np.argmin(loads))
            solution[self.x_index(job, machine)] = 1
            loads[machine] += self.processing_times[job]
        return solution

    @classmethod
    def random(
        cls,
        num_jobs: int,
        num_machines: int,
        seed: Optional[int] = None,
        name: str = "jsp",
    ) -> "JobSchedulingProblem":
        """Random durations in [1, 9]."""
        rng = np.random.default_rng(seed)
        times = rng.integers(1, 10, size=num_jobs)
        return cls(times, num_machines, name=name)
