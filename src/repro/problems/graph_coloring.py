"""Graph coloring with color preferences (GCP).

Color every node with exactly one of ``c`` colors such that adjacent nodes
differ, minimising a per-color usage cost (a standard linear objective that
makes some proper colorings better than others)::

    min  sum_{v,c} cost_c * x_vc
    s.t. sum_c x_vc = 1                    for every node v      (one-hot)
         x_uc + x_vc + z_uvc = 1           for every edge (u,v), color c

The conflict inequality ``x_uc + x_vc <= 1`` becomes an equality with one
unit slack bit ``z_uvc``.  This is why GCP instances consume the most
qubits per node of all benchmarks (and why the paper's GCP feasible-space
size shrinks as constraints grow).

Variable layout: ``x_{v,c}`` node-major, then ``z_{edge,c}`` edge-major.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import ProblemError
from repro.problems.base import ConstrainedBinaryProblem


class GraphColoringProblem(ConstrainedBinaryProblem):
    """A graph-coloring instance.

    Args:
        graph: undirected graph on nodes ``0..g-1``.
        num_colors: palette size.
        color_costs: length-``c`` cost of using each color on a node.
        name: instance name.
    """

    def __init__(
        self,
        graph: nx.Graph,
        num_colors: int,
        color_costs: Sequence[float],
        name: str = "gcp",
    ) -> None:
        self.graph = graph
        self.num_colors = int(num_colors)
        self.color_costs = np.asarray(color_costs, dtype=np.float64)
        if self.color_costs.shape != (self.num_colors,):
            raise ProblemError("color_costs length must equal num_colors")
        g = graph.number_of_nodes()
        if sorted(graph.nodes) != list(range(g)):
            raise ProblemError("graph nodes must be 0..g-1")
        self.num_nodes = g
        self.edges: Tuple[Tuple[int, int], ...] = tuple(
            (min(u, v), max(u, v)) for u, v in graph.edges
        )

        n = g * self.num_colors + len(self.edges) * self.num_colors
        m = g + len(self.edges) * self.num_colors
        matrix = np.zeros((m, n), dtype=np.int64)
        bound = np.ones(m, dtype=np.int64)
        for node in range(g):
            for color in range(self.num_colors):
                matrix[node, self.x_index(node, color)] = 1
        for e, (u, v) in enumerate(self.edges):
            for color in range(self.num_colors):
                row = g + e * self.num_colors + color
                matrix[row, self.x_index(u, color)] = 1
                matrix[row, self.x_index(v, color)] = 1
                matrix[row, self.z_index(e, color)] = 1
        super().__init__(name, matrix, bound, sense="min")

    def x_index(self, node: int, color: int) -> int:
        """Index of the node-color variable ``x_{node,color}``."""
        return node * self.num_colors + color

    def z_index(self, edge: int, color: int) -> int:
        """Index of the slack bit of edge ``edge`` at ``color``."""
        return self.num_nodes * self.num_colors + edge * self.num_colors + color

    def objective(self, x: np.ndarray) -> float:
        arr = np.asarray(x, dtype=np.float64)
        assignment = arr[: self.num_nodes * self.num_colors].reshape(
            self.num_nodes, self.num_colors
        )
        return float((assignment @ self.color_costs).sum())

    def coloring_of(self, x: np.ndarray) -> Dict[int, int]:
        """Map node -> color for a feasible assignment."""
        arr = np.asarray(x)
        coloring = {}
        for node in range(self.num_nodes):
            block = arr[self.x_index(node, 0) : self.x_index(node, 0) + self.num_colors]
            coloring[node] = int(np.argmax(block))
        return coloring

    def initial_feasible_solution(self) -> np.ndarray:
        """Greedy proper coloring in node order — ``O(g + |E| c)`` time.

        Raises :class:`ProblemError` when the greedy pass needs more colors
        than the palette provides (choose instances where it succeeds, as
        the paper does by assigning distinct colors).
        """
        colors: Dict[int, int] = {}
        for node in range(self.num_nodes):
            forbidden = {
                colors[neighbor]
                for neighbor in self.graph.neighbors(node)
                if neighbor in colors
            }
            available = [c for c in range(self.num_colors) if c not in forbidden]
            if not available:
                raise ProblemError(
                    f"greedy coloring of {self.name} needs more than "
                    f"{self.num_colors} colors"
                )
            colors[node] = available[0]
        solution = np.zeros(self.num_variables, dtype=np.int8)
        for node, color in colors.items():
            solution[self.x_index(node, color)] = 1
        # Slacks: z_uvc = 1 - x_uc - x_vc.
        for e, (u, v) in enumerate(self.edges):
            for color in range(self.num_colors):
                used = int(colors[u] == color) + int(colors[v] == color)
                solution[self.z_index(e, color)] = 1 - used
        return solution

    @classmethod
    def random(
        cls,
        graph: nx.Graph,
        num_colors: int,
        seed: Optional[int] = None,
        name: str = "gcp",
    ) -> "GraphColoringProblem":
        """Instance on a fixed topology with random color costs."""
        rng = np.random.default_rng(seed)
        costs = rng.integers(1, 6, size=num_colors)
        return cls(graph, num_colors, costs, name=name)
