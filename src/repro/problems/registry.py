"""The 20-benchmark registry (paper, Table 2).

Four scales per application domain: F1–F4 (facility location), K1–K4
(k-partition), J1–J4 (job scheduling), S1–S4 (set cover), G1–G4 (graph
coloring).  The paper's exact instance sizes are not machine-readable from
the source text; these scales match the qubit ranges the paper reports
(single digits up to the high teens) while keeping exact ground truth
(brute-force optimum) computable.  Each benchmark id is a *family*:
``make_benchmark("F2", case=7)`` draws the 7th randomized case, mirroring
the paper's "400 cases per benchmark" protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import networkx as nx

from repro.exceptions import ProblemError
from repro.problems.base import ConstrainedBinaryProblem
from repro.problems.facility_location import FacilityLocationProblem
from repro.problems.graph_coloring import GraphColoringProblem
from repro.problems.job_scheduling import JobSchedulingProblem
from repro.problems.k_partition import KPartitionProblem
from repro.problems.set_cover import SetCoverProblem


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one benchmark family."""

    benchmark_id: str
    domain: str
    description: str
    factory: Callable[[int, str], ConstrainedBinaryProblem]

    def make(self, case: int = 0) -> ConstrainedBinaryProblem:
        """Instantiate the ``case``-th randomized instance."""
        return self.factory(case, f"{self.benchmark_id}-case{case}")


def _flp(facilities: int, demands: int) -> Callable:
    def build(seed: int, name: str) -> ConstrainedBinaryProblem:
        return FacilityLocationProblem.random(facilities, demands, seed=seed, name=name)

    return build


def _kpp(elements: int, parts: int) -> Callable:
    def build(seed: int, name: str) -> ConstrainedBinaryProblem:
        return KPartitionProblem.random(elements, parts, seed=seed, name=name)

    return build


def _jsp(jobs: int, machines: int) -> Callable:
    def build(seed: int, name: str) -> ConstrainedBinaryProblem:
        return JobSchedulingProblem.random(jobs, machines, seed=seed, name=name)

    return build


def _scp(sets: int, elements: int) -> Callable:
    def build(seed: int, name: str) -> ConstrainedBinaryProblem:
        return SetCoverProblem.random(sets, elements, seed=seed, name=name)

    return build


def _gcp(topology: str, colors: int) -> Callable:
    def build(seed: int, name: str) -> ConstrainedBinaryProblem:
        graph = _GCP_TOPOLOGIES[topology]()
        return GraphColoringProblem.random(graph, colors, seed=seed, name=name)

    return build


_GCP_TOPOLOGIES: Dict[str, Callable[[], nx.Graph]] = {
    "path3": lambda: nx.path_graph(3),
    "star3": lambda: nx.star_graph(3),  # one hub + 3 leaves
    "path4": lambda: nx.path_graph(4),
    "cycle4": lambda: nx.cycle_graph(4),
}


_SPECS: Dict[str, BenchmarkSpec] = {}


def _register(benchmark_id: str, domain: str, description: str, factory: Callable) -> None:
    _SPECS[benchmark_id] = BenchmarkSpec(benchmark_id, domain, description, factory)


# Facility location: (facilities, demands).
_register("F1", "flp", "2 facilities, 1 demand (6 qubits)", _flp(2, 1))
_register("F2", "flp", "2 facilities, 2 demands (10 qubits)", _flp(2, 2))
_register("F3", "flp", "2 facilities, 3 demands (14 qubits)", _flp(2, 3))
_register("F4", "flp", "3 facilities, 2 demands (15 qubits)", _flp(3, 2))

# K-partition: (elements, parts).
_register("K1", "kpp", "3 elements, 2 parts (6 qubits)", _kpp(3, 2))
_register("K2", "kpp", "4 elements, 2 parts (8 qubits)", _kpp(4, 2))
_register("K3", "kpp", "4 elements, 3 parts (12 qubits)", _kpp(4, 3))
_register("K4", "kpp", "5 elements, 3 parts (15 qubits)", _kpp(5, 3))

# Job scheduling: (jobs, machines).
_register("J1", "jsp", "3 jobs, 2 machines (6 qubits)", _jsp(3, 2))
_register("J2", "jsp", "4 jobs, 2 machines (8 qubits)", _jsp(4, 2))
_register("J3", "jsp", "4 jobs, 3 machines (12 qubits)", _jsp(4, 3))
_register("J4", "jsp", "5 jobs, 3 machines (15 qubits)", _jsp(5, 3))

# Set cover: (sets, elements); slack bits push qubits above the set count.
_register("S1", "scp", "4 sets, 3 elements", _scp(4, 3))
_register("S2", "scp", "5 sets, 4 elements", _scp(5, 4))
_register("S3", "scp", "6 sets, 4 elements", _scp(6, 4))
_register("S4", "scp", "7 sets, 5 elements", _scp(7, 5))

# Graph coloring: (topology, colors).
_register("G1", "gcp", "path P3, 2 colors (10 qubits)", _gcp("path3", 2))
_register("G2", "gcp", "star K1,3, 2 colors (14 qubits)", _gcp("star3", 2))
_register("G3", "gcp", "path P3, 3 colors (15 qubits)", _gcp("path3", 3))
_register("G4", "gcp", "cycle C4, 2 colors (16 qubits)", _gcp("cycle4", 2))

#: All benchmark ids, in Table 2 order.
BENCHMARK_IDS: Tuple[str, ...] = tuple(_SPECS)


def benchmark_spec(benchmark_id: str) -> BenchmarkSpec:
    """Look up a benchmark family by id (e.g. ``"F1"``)."""
    try:
        return _SPECS[benchmark_id]
    except KeyError:
        raise ProblemError(
            f"unknown benchmark {benchmark_id!r}; known: {sorted(_SPECS)}"
        ) from None


def make_benchmark(benchmark_id: str, case: int = 0) -> ConstrainedBinaryProblem:
    """Instantiate one randomized case of a benchmark family."""
    return benchmark_spec(benchmark_id).make(case)


def benchmark_suite(cases: int = 1) -> Dict[str, Tuple[ConstrainedBinaryProblem, ...]]:
    """Instantiate ``cases`` instances of every benchmark family."""
    return {
        benchmark_id: tuple(spec.make(case) for case in range(cases))
        for benchmark_id, spec in _SPECS.items()
    }
