"""Problem instance serialization.

Round-trips every shipped problem type through plain JSON-compatible
dictionaries, so randomized benchmark cases can be pinned, shared, and
replayed — the reproducibility counterpart of the paper's "400 cases per
benchmark" protocol.

>>> from repro.problems import make_benchmark
>>> from repro.problems.io import problem_to_dict, problem_from_dict
>>> problem = make_benchmark("F1", 0)
>>> clone = problem_from_dict(problem_to_dict(problem))
>>> clone.optimal_value == problem.optimal_value
True

:func:`problem_fingerprint` derives a canonical content hash from the
same serialization — the identity key the solve service's deduplication
is built on (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Union

import networkx as nx
import numpy as np

from repro.exceptions import ProblemError
from repro.problems.base import ConstrainedBinaryProblem
from repro.problems.facility_location import FacilityLocationProblem
from repro.problems.graph_coloring import GraphColoringProblem
from repro.problems.job_scheduling import JobSchedulingProblem
from repro.problems.k_partition import KPartitionProblem
from repro.problems.set_cover import SetCoverProblem


def problem_to_dict(problem: ConstrainedBinaryProblem) -> Dict[str, Any]:
    """Serialise a shipped problem instance to a JSON-compatible dict."""
    if isinstance(problem, FacilityLocationProblem):
        return {
            "type": "facility_location",
            "name": problem.name,
            "open_costs": problem.open_costs.tolist(),
            "assign_costs": problem.assign_costs.tolist(),
        }
    if isinstance(problem, KPartitionProblem):
        # Serialise the instance's own edge tuple (captured at
        # construction) rather than re-iterating the caller's graph: the
        # edge *order* fixes the objective's floating-point summation
        # order, so this is what a bit-for-bit round-trip must preserve —
        # and it stays correct even if the graph is mutated afterwards.
        return {
            "type": "k_partition",
            "name": problem.name,
            "num_elements": problem.num_elements,
            "edges": [
                [int(u), int(v), float(weight)]
                for u, v, weight in problem._edges
            ],
            "part_sizes": list(problem.part_sizes),
        }
    if isinstance(problem, JobSchedulingProblem):
        return {
            "type": "job_scheduling",
            "name": problem.name,
            "processing_times": problem.processing_times.tolist(),
            "num_machines": problem.num_machines,
        }
    if isinstance(problem, SetCoverProblem):
        return {
            "type": "set_cover",
            "name": problem.name,
            "subsets": [sorted(subset) for subset in problem.subsets],
            "costs": problem.costs.tolist(),
            "num_elements": problem.num_elements,
        }
    if isinstance(problem, GraphColoringProblem):
        return {
            "type": "graph_coloring",
            "name": problem.name,
            "num_nodes": problem.num_nodes,
            "edges": [[int(u), int(v)] for u, v in problem.edges],
            "num_colors": problem.num_colors,
            "color_costs": problem.color_costs.tolist(),
        }
    raise ProblemError(
        f"cannot serialise problem type {type(problem).__name__}"
    )


def problem_from_dict(payload: Dict[str, Any]) -> ConstrainedBinaryProblem:
    """Inverse of :func:`problem_to_dict`."""
    kind = payload.get("type")
    name = payload.get("name", kind or "problem")
    if kind == "facility_location":
        return FacilityLocationProblem(
            payload["open_costs"], payload["assign_costs"], name=name
        )
    if kind == "k_partition":
        graph = nx.Graph()
        graph.add_nodes_from(range(payload["num_elements"]))
        for u, v, weight in payload["edges"]:
            graph.add_edge(u, v, weight=weight)
        return KPartitionProblem(graph, payload["part_sizes"], name=name)
    if kind == "job_scheduling":
        return JobSchedulingProblem(
            payload["processing_times"], payload["num_machines"], name=name
        )
    if kind == "set_cover":
        return SetCoverProblem(
            [set(subset) for subset in payload["subsets"]],
            payload["costs"],
            payload["num_elements"],
            name=name,
        )
    if kind == "graph_coloring":
        graph = nx.Graph()
        graph.add_nodes_from(range(payload["num_nodes"]))
        graph.add_edges_from(payload["edges"])
        return GraphColoringProblem(
            graph, payload["num_colors"], payload["color_costs"], name=name
        )
    raise ProblemError(f"unknown problem type {kind!r}")


def problem_to_json(problem: ConstrainedBinaryProblem) -> str:
    """JSON string form of :func:`problem_to_dict`."""
    return json.dumps(problem_to_dict(problem), sort_keys=True)


def problem_from_json(text: str) -> ConstrainedBinaryProblem:
    """Inverse of :func:`problem_to_json`."""
    return problem_from_dict(json.loads(text))


def _plain(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays to plain Python values."""
    if isinstance(value, np.ndarray):
        return [_plain(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_plain(item) for item in value)
    return value


def canonical_problem_payload(
    problem: Union[ConstrainedBinaryProblem, Dict[str, Any]]
) -> Dict[str, Any]:
    """The canonical serialized form of a problem (instance or payload).

    Payload dicts are round-tripped through the problem constructor, so
    any two payloads describing the same instance — regardless of dict
    key order, numpy dtypes, int-vs-float cost literals, or ``set`` vs
    sorted-list subsets — normalise to an identical dict.  Edge *order*
    is deliberately preserved: for the graph problems it determines the
    variable layout, so reordering edges yields a semantically distinct
    (bit-level incompatible) instance.
    """
    if not isinstance(problem, ConstrainedBinaryProblem):
        problem = problem_from_dict(_plain(dict(problem)))
    return _plain(problem_to_dict(problem))


def problem_fingerprint(
    problem: Union[ConstrainedBinaryProblem, Dict[str, Any]]
) -> str:
    """Stable SHA-256 content hash of a problem instance.

    Built on :func:`canonical_problem_payload` + key-sorted compact JSON,
    so the hash is invariant to serialization noise but distinguishes any
    change that could alter solver output (costs, structure, edge order,
    name — the name is embedded in result records).

    >>> from repro.problems import make_benchmark
    >>> a = problem_fingerprint(make_benchmark("F1", 0))
    >>> b = problem_fingerprint(problem_to_dict(make_benchmark("F1", 0)))
    >>> a == b and len(a) == 64
    True
    """
    text = json.dumps(
        canonical_problem_payload(problem),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
