"""Problem instance serialization.

Round-trips every shipped problem type through plain JSON-compatible
dictionaries, so randomized benchmark cases can be pinned, shared, and
replayed — the reproducibility counterpart of the paper's "400 cases per
benchmark" protocol.

>>> from repro.problems import make_benchmark
>>> from repro.problems.io import problem_to_dict, problem_from_dict
>>> problem = make_benchmark("F1", 0)
>>> clone = problem_from_dict(problem_to_dict(problem))
>>> clone.optimal_value == problem.optimal_value
True
"""

from __future__ import annotations

import json
from typing import Any, Dict

import networkx as nx
import numpy as np

from repro.exceptions import ProblemError
from repro.problems.base import ConstrainedBinaryProblem
from repro.problems.facility_location import FacilityLocationProblem
from repro.problems.graph_coloring import GraphColoringProblem
from repro.problems.job_scheduling import JobSchedulingProblem
from repro.problems.k_partition import KPartitionProblem
from repro.problems.set_cover import SetCoverProblem


def problem_to_dict(problem: ConstrainedBinaryProblem) -> Dict[str, Any]:
    """Serialise a shipped problem instance to a JSON-compatible dict."""
    if isinstance(problem, FacilityLocationProblem):
        return {
            "type": "facility_location",
            "name": problem.name,
            "open_costs": problem.open_costs.tolist(),
            "assign_costs": problem.assign_costs.tolist(),
        }
    if isinstance(problem, KPartitionProblem):
        return {
            "type": "k_partition",
            "name": problem.name,
            "num_elements": problem.num_elements,
            "edges": [
                [int(u), int(v), float(data.get("weight", 1.0))]
                for u, v, data in problem.graph.edges(data=True)
            ],
            "part_sizes": list(problem.part_sizes),
        }
    if isinstance(problem, JobSchedulingProblem):
        return {
            "type": "job_scheduling",
            "name": problem.name,
            "processing_times": problem.processing_times.tolist(),
            "num_machines": problem.num_machines,
        }
    if isinstance(problem, SetCoverProblem):
        return {
            "type": "set_cover",
            "name": problem.name,
            "subsets": [sorted(subset) for subset in problem.subsets],
            "costs": problem.costs.tolist(),
            "num_elements": problem.num_elements,
        }
    if isinstance(problem, GraphColoringProblem):
        return {
            "type": "graph_coloring",
            "name": problem.name,
            "num_nodes": problem.num_nodes,
            "edges": [[int(u), int(v)] for u, v in problem.edges],
            "num_colors": problem.num_colors,
            "color_costs": problem.color_costs.tolist(),
        }
    raise ProblemError(
        f"cannot serialise problem type {type(problem).__name__}"
    )


def problem_from_dict(payload: Dict[str, Any]) -> ConstrainedBinaryProblem:
    """Inverse of :func:`problem_to_dict`."""
    kind = payload.get("type")
    name = payload.get("name", kind or "problem")
    if kind == "facility_location":
        return FacilityLocationProblem(
            payload["open_costs"], payload["assign_costs"], name=name
        )
    if kind == "k_partition":
        graph = nx.Graph()
        graph.add_nodes_from(range(payload["num_elements"]))
        for u, v, weight in payload["edges"]:
            graph.add_edge(u, v, weight=weight)
        return KPartitionProblem(graph, payload["part_sizes"], name=name)
    if kind == "job_scheduling":
        return JobSchedulingProblem(
            payload["processing_times"], payload["num_machines"], name=name
        )
    if kind == "set_cover":
        return SetCoverProblem(
            [set(subset) for subset in payload["subsets"]],
            payload["costs"],
            payload["num_elements"],
            name=name,
        )
    if kind == "graph_coloring":
        graph = nx.Graph()
        graph.add_nodes_from(range(payload["num_nodes"]))
        graph.add_edges_from(payload["edges"])
        return GraphColoringProblem(
            graph, payload["num_colors"], payload["color_costs"], name=name
        )
    raise ProblemError(f"unknown problem type {kind!r}")


def problem_to_json(problem: ConstrainedBinaryProblem) -> str:
    """JSON string form of :func:`problem_to_dict`."""
    return json.dumps(problem_to_dict(problem), sort_keys=True)


def problem_from_json(text: str) -> ConstrainedBinaryProblem:
    """Inverse of :func:`problem_to_json`."""
    return problem_from_dict(json.loads(text))
