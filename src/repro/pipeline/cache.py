"""Content-addressed artifact cache: in-memory LRU + optional npz spill.

The cache is keyed purely by stage fingerprint — a hash of the problem
fingerprint, every upstream stage fingerprint, and the stage's config
slice — so a lookup either misses or returns an artifact that is
interchangeable with what the stage would have computed.  Sharing one
cache across solvers, threads, or service jobs therefore never changes
results; it only skips recomputation (the same argument as the engine's
:class:`~repro.engine.cache.CircuitCache`, and the same thread-safety
contract: all bookkeeping happens under an internal lock, and artifacts
are immutable values).

With a ``spill_dir`` the cache additionally persists every stored
artifact as ``<fingerprint>.npz`` (arrays + a JSON meta record) and
falls back to disk on a memory miss — restarts, sibling processes
(``engine.map`` workers), and later CLI invocations pick artifacts up by
content address.  Telemetry: ``pipeline.cache.hits`` / ``.misses`` /
``.evictions`` / ``.spill_hits`` / ``.spill_writes`` (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zipfile
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro import telemetry
from repro.pipeline.artifacts import Artifact, artifact_from_payload

_UNSET = object()


class ArtifactCache:
    """Thread-safe LRU of pipeline artifacts, optionally spilling to disk.

    Args:
        max_entries: in-memory LRU capacity.
        spill_dir: directory for ``<fingerprint>.npz`` persistence;
            created on first write.  ``None`` keeps the cache memory-only.
    """

    def __init__(
        self, max_entries: int = 128, spill_dir: Optional[str] = None
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.spill_dir = spill_dir
        self._entries: "OrderedDict[str, Artifact]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_hits = 0
        self.spill_writes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[Artifact]:
        """The cached artifact for ``fingerprint``, or ``None`` on miss.

        Checks the in-memory LRU first, then the spill directory; a
        spill hit is promoted back into memory.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                telemetry.add("pipeline.cache.hits")
                return entry
            entry = self._load_spilled(fingerprint)
            if entry is not None:
                self.hits += 1
                self.spill_hits += 1
                telemetry.add("pipeline.cache.hits")
                telemetry.add("pipeline.cache.spill_hits")
                self._insert(fingerprint, entry)
                return entry
            self.misses += 1
            telemetry.add("pipeline.cache.misses")
            return None

    def put(self, artifact: Artifact) -> None:
        """Store ``artifact`` under its own fingerprint (and spill it)."""
        with self._lock:
            self._insert(artifact.fingerprint, artifact)
            self._spill(artifact)

    def _insert(self, fingerprint: str, artifact: Artifact) -> None:
        self._entries[fingerprint] = artifact
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.add("pipeline.cache.evictions")

    # ------------------------------------------------------------------
    # Spill
    # ------------------------------------------------------------------
    def _spill_path(self, fingerprint: str) -> Optional[str]:
        if self.spill_dir is None:
            return None
        return os.path.join(self.spill_dir, f"{fingerprint}.npz")

    def _spill(self, artifact: Artifact) -> None:
        path = self._spill_path(artifact.fingerprint)
        if path is None or os.path.exists(path):
            return
        meta, arrays = artifact.to_payload()
        os.makedirs(self.spill_dir, exist_ok=True)
        # Write-temp + rename so a concurrent reader never sees a torn
        # file (same discipline as the service store's compaction).
        fd, tmp = tempfile.mkstemp(
            dir=self.spill_dir, suffix=".tmp", prefix="artifact-"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    __meta__=np.frombuffer(
                        json.dumps(meta, sort_keys=True).encode("utf-8"),
                        dtype=np.uint8,
                    ),
                    **arrays,
                )
            os.replace(tmp, path)
        except OSError:
            telemetry.add("pipeline.cache.spill_errors")
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.spill_writes += 1
        telemetry.add("pipeline.cache.spill_writes")

    def _load_spilled(self, fingerprint: str) -> Optional[Artifact]:
        path = self._spill_path(fingerprint)
        if path is None or not os.path.exists(path):
            return None
        try:
            with np.load(path) as payload:
                meta = json.loads(bytes(payload["__meta__"]).decode("utf-8"))
                arrays = {
                    name: payload[name]
                    for name in payload.files
                    if name != "__meta__"
                }
        except (
            OSError,
            ValueError,
            KeyError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
        ):
            # A torn or foreign file is a miss, never a crash.
            telemetry.add("pipeline.cache.spill_errors")
            return None
        return artifact_from_payload(fingerprint, meta, arrays)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counter snapshot (the ``inspect`` CLI's ``cache`` block)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "spill_hits": self.spill_hits,
                "spill_writes": self.spill_writes,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # Unpicklable lock + shared entries stay process-local; a worker that
    # unpickles a pipeline rebuilds against its own (default) cache.
    def __getstate__(self):
        raise TypeError("ArtifactCache is process-local and not picklable")


# ----------------------------------------------------------------------
# Process-wide default cache
# ----------------------------------------------------------------------
_default_cache = ArtifactCache()
_default_lock = threading.Lock()


def get_default_cache() -> ArtifactCache:
    """The process-wide artifact cache used when none is given."""
    return _default_cache


def configure_cache(
    cache=_UNSET, *, max_entries=_UNSET, spill_dir=_UNSET
) -> ArtifactCache:
    """Replace the process-wide default cache; returns the previous one.

    Either pass a ready-made ``cache``, or ``max_entries``/``spill_dir``
    to build a fresh one.  The solve service installs a larger cache for
    its lifetime and restores the previous default on close.
    """
    global _default_cache
    with _default_lock:
        previous = _default_cache
        if cache is not _UNSET and cache is not None:
            _default_cache = cache
        else:
            _default_cache = ArtifactCache(
                max_entries=(
                    previous.max_entries if max_entries is _UNSET else max_entries
                ),
                spill_dir=None if spill_dir is _UNSET else spill_dir,
            )
        return previous
