"""The pass manager: fingerprint, look up, compute, record.

:class:`SolvePipeline` drives the staged compilation of one
(problem, config) pair.  For every stage it

1. derives the stage fingerprint — SHA-256 over the stage name, the
   fingerprints of its input artifacts (rooted at
   :func:`repro.problems.io.problem_fingerprint`), and the stage's
   config slice;
2. consults the :class:`~repro.pipeline.cache.ArtifactCache` (in-memory
   LRU, then the spill directory);
3. on a miss, runs the pass and stores the artifact.

Each pass — hit or miss — emits one ``pipeline.<stage>`` telemetry span
tagged with the fingerprint and the artifact source, so a Chrome trace
shows the stage waterfall and which passes were skipped; per-stage
``pipeline.computed.<stage>`` counters let tests assert exactly which
stages re-ran after a config change.  The per-run stage report also
feeds the service's job timeline (:func:`capture_report`) and the
``inspect`` CLI.

The same machinery compiles the variational baselines' encode/ansatz
phases (:func:`compile_ansatz`): the ansatz identity becomes a content
address instead of a process-unique counter, so identical baseline
instances share one synthesized circuit template.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from repro import telemetry
from repro.exceptions import ProblemError
from repro.pipeline.artifacts import AnsatzArtifact, Artifact, PipelineError
from repro.pipeline.cache import ArtifactCache, get_default_cache
from repro.pipeline.stages import SOLVE_STAGES, Stage
from repro.problems.io import problem_fingerprint

#: Bump when a stage's output format changes incompatibly: old spill
#: files then simply miss instead of deserializing into the wrong shape.
PIPELINE_VERSION = 1


def stage_fingerprint(
    stage: str, inputs: Sequence[str], config_slice: Dict[str, Any]
) -> str:
    """Content address of one stage invocation.

    A pure function of the stage name, the input artifact fingerprints
    (transitively rooted at the problem fingerprint), and the stage's
    config slice — stable across processes, dict ordering, and runs.
    """
    payload = {
        "v": PIPELINE_VERSION,
        "stage": stage,
        "inputs": list(inputs),
        "config": config_slice,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_INSTANCE_FP_ATTR = "_pipeline_instance_fingerprint"
_INSTANCE_FP_COUNTER = itertools.count()


def resolve_problem_fingerprint(problem) -> str:
    """Root fingerprint of ``problem``, tolerant of custom types.

    Registry problems hash their canonical JSON payload
    (:func:`~repro.problems.io.problem_fingerprint`).  Custom
    ``ConstrainedBinaryProblem`` subclasses that ``problems/io`` cannot
    serialize get a process-unique fallback fingerprint, cached on the
    instance: repeated compiles of the *same* instance still coalesce in
    the in-memory cache, while distinct instances can never collide.
    Fallback fingerprints are not stable across processes, so spill-dir
    reuse only applies to serializable problems.
    """
    try:
        return problem_fingerprint(problem)
    except ProblemError:
        token = getattr(problem, _INSTANCE_FP_ATTR, None)
        if token is None:
            payload = {
                "fallback": next(_INSTANCE_FP_COUNTER),
                "type": type(problem).__name__,
                "name": str(getattr(problem, "name", "")),
                "num_variables": int(problem.num_variables),
            }
            text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            token = hashlib.sha256(text.encode("utf-8")).hexdigest()
            try:
                setattr(problem, _INSTANCE_FP_ATTR, token)
            except (AttributeError, TypeError):
                pass
        return token


# ----------------------------------------------------------------------
# Per-thread stage-report capture (service job timelines)
# ----------------------------------------------------------------------
_capture = threading.local()


@contextmanager
def capture_report():
    """Collect every stage resolution on this thread into one list.

    The solve service wraps each job's runner in this so the job's
    flight-recorder timeline reports which artifacts were cache hits.
    """
    buffer: List[Dict[str, Any]] = []
    stack = getattr(_capture, "stack", None)
    if stack is None:
        stack = _capture.stack = []
    stack.append(buffer)
    try:
        yield buffer
    finally:
        stack.pop()


def _record_capture(entry: Dict[str, Any]) -> None:
    stack = getattr(_capture, "stack", None)
    if stack:
        stack[-1].append(entry)


# ----------------------------------------------------------------------
# The pass manager
# ----------------------------------------------------------------------
class SolvePipeline:
    """Staged compilation of one (problem, config) pair.

    Args:
        problem: the problem instance (its
            :func:`~repro.problems.io.problem_fingerprint` roots every
            stage fingerprint).
        config: a :class:`~repro.core.solver.RasenganConfig`-shaped
            object; stages read only their declared config slice.
        cache: artifact cache; ``None`` uses the process-wide default
            (:func:`repro.pipeline.cache.get_default_cache`).
        stages: pass sequence; defaults to the five solve passes.
    """

    def __init__(
        self,
        problem,
        config,
        *,
        cache: Optional[ArtifactCache] = None,
        stages: Optional[Sequence[Stage]] = None,
    ) -> None:
        self.problem = problem
        self.config = config
        self._cache = cache
        self._stages: Dict[str, Stage] = {
            stage.name: stage for stage in (stages or SOLVE_STAGES)
        }
        self._order = [stage.name for stage in (stages or SOLVE_STAGES)]
        self.problem_fingerprint = resolve_problem_fingerprint(problem)
        self._artifacts: Dict[str, Artifact] = {}
        #: Stage resolutions of this pipeline, oldest first:
        #: ``{"stage", "fingerprint", "source"}``.
        self.report: List[Dict[str, Any]] = []

    @property
    def cache(self) -> ArtifactCache:
        return self._cache if self._cache is not None else get_default_cache()

    # ------------------------------------------------------------------
    def fingerprint(self, name: str) -> str:
        """The stage fingerprint of ``name`` (computing upstream ones)."""
        stage = self._stage(name)
        inputs = [self.fingerprint(dep) for dep in stage.inputs]
        if not stage.inputs:
            inputs = [self.problem_fingerprint]
        return stage_fingerprint(
            name, inputs, stage.config_slice(self.config)
        )

    def artifact(self, name: str) -> Artifact:
        """The artifact of stage ``name``, computing or reusing as needed."""
        cached = self._artifacts.get(name)
        if cached is not None:
            return cached
        stage = self._stage(name)
        inputs = {dep: self.artifact(dep) for dep in stage.inputs}
        input_fps = [artifact.fingerprint for artifact in inputs.values()]
        if not stage.inputs:
            input_fps = [self.problem_fingerprint]
        fingerprint = stage_fingerprint(
            name, input_fps, stage.config_slice(self.config)
        )
        with telemetry.span(
            f"pipeline.{name}", fingerprint=fingerprint[:12]
        ) as span:
            artifact = self.cache.get(fingerprint)
            source = "cache"
            if artifact is None:
                artifact = stage.compute(self, inputs, fingerprint)
                telemetry.add(f"pipeline.computed.{name}")
                self.cache.put(artifact)
                source = "computed"
            span.set(source=source)
        entry = {"stage": name, "fingerprint": fingerprint, "source": source}
        self.report.append(entry)
        _record_capture(entry)
        self._artifacts[name] = artifact
        return artifact

    def compile(self) -> Dict[str, Artifact]:
        """Run (or reuse) every pass; returns artifacts by stage name."""
        return {name: self.artifact(name) for name in self._order}

    def _stage(self, name: str) -> Stage:
        stage = self._stages.get(name)
        if stage is None:
            raise PipelineError(
                f"unknown stage {name!r} (have: {', '.join(self._order)})"
            )
        return stage

    # ------------------------------------------------------------------
    # Pickling: artifacts travel, the cache stays process-local.
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache"] = None
        return state


# ----------------------------------------------------------------------
# Baseline encode/ansatz passes
# ----------------------------------------------------------------------
def compile_ansatz(
    problem,
    algorithm: str,
    num_parameters: int,
    structure: Dict[str, Any],
    *,
    penalty: float,
    cache: Optional[ArtifactCache] = None,
) -> AnsatzArtifact:
    """Compile a baseline's encode + ansatz phases into an identity.

    Two passes through the same fingerprint machinery as the solve
    pipeline: ``encode`` (the penalty encoding of the constraints —
    config slice: the penalty coefficient) feeds ``ansatz`` (the circuit
    structure — config slice: everything structural, e.g. layer count,
    frozen qubits, Trotterisation).  The resulting
    :class:`~repro.pipeline.artifacts.AnsatzArtifact` carries the
    content-addressed compiled-circuit cache key.
    """
    cache = cache if cache is not None else get_default_cache()
    problem_fp = resolve_problem_fingerprint(problem)
    encode_fp = stage_fingerprint(
        "encode", [problem_fp], {"penalty": float(penalty)}
    )
    with telemetry.span("pipeline.encode", fingerprint=encode_fp[:12]):
        pass  # the encoding itself is cheap; the fingerprint is the value
    slice_payload = dict(structure)
    slice_payload["algorithm"] = algorithm
    ansatz_fp = stage_fingerprint("ansatz", [encode_fp], slice_payload)
    with telemetry.span(
        f"pipeline.ansatz", fingerprint=ansatz_fp[:12]
    ) as span:
        artifact = cache.get(ansatz_fp)
        source = "cache"
        if artifact is None:
            artifact = AnsatzArtifact(
                fingerprint=ansatz_fp,
                algorithm=algorithm,
                num_parameters=int(num_parameters),
            )
            telemetry.add("pipeline.computed.ansatz")
            cache.put(artifact)
            source = "computed"
        span.set(source=source)
    _record_capture(
        {"stage": "ansatz", "fingerprint": ansatz_fp, "source": source}
    )
    return artifact


# ----------------------------------------------------------------------
# Cross-process helpers
# ----------------------------------------------------------------------
def fingerprint_report(
    problem_payload: Dict[str, Any], config: Optional[Dict[str, Any]] = None
) -> Dict[str, str]:
    """Stage-name -> fingerprint map for a serialized problem + config.

    Module-level and built from plain dicts, so it can be shipped to
    ``engine.map`` pool workers to assert that stage fingerprints are
    identical across processes.
    """
    from repro.core.solver import RasenganConfig
    from repro.problems.io import problem_from_dict

    problem = problem_from_dict(problem_payload)
    pipeline = SolvePipeline(
        problem,
        RasenganConfig(**(config or {})),
        cache=ArtifactCache(),
    )
    return {name: pipeline.fingerprint(name) for name in pipeline._order}
