"""The compilation passes of the Rasengan solve path.

Each stage is a *pure function* of its input artifacts and a named slice
of the solver configuration — that purity is what makes the stage
fingerprint (input fingerprints + config slice, rooted at the problem
fingerprint) a sound cache key:

========== =============================== ===============================
stage      inputs                          config slice
========== =============================== ===============================
basis      problem                         —
hamiltonian basis                          enable_simplify,
                                           simplify_iterate, enable_augment
prune      basis, hamiltonian              enable_prune, warm_start
segmentation hamiltonian, prune            transitions_per_segment,
                                           max_segment_cx
circuit    hamiltonian, prune, segmentation —
execution  (terminal; never cached)        shots, seeds, backend, times
========== =============================== ===============================

The execution stage is deliberately *not* fingerprinted: its output
depends on evolution times, shot sampling, and backend noise, so it runs
through :class:`~repro.engine.ExecutionEngine` every time.  Everything
above it is content-addressed and reused via the
:class:`~repro.pipeline.cache.ArtifactCache`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.decompose import decompose_circuit
from repro.circuits.depth import CX_PER_NONZERO, circuit_depth, two_qubit_depth
from repro.core.prune import PruneResult, build_schedule, prune_schedule
from repro.core.purification import purify_probabilities
from repro.core.segmentation import plan_segments, plan_segments_by_cost
from repro.core.simplify import simplify_basis
from repro.core.transition import transition_chain_circuit
from repro.linalg.bitvec import bits_to_int, int_to_bits
from repro.linalg.moves import augment_moves_for_connectivity
from repro.pipeline.artifacts import (
    Artifact,
    BasisArtifact,
    CircuitArtifact,
    HamiltonianArtifact,
    PruneArtifact,
    SegmentationArtifact,
)


class Stage:
    """One compilation pass: named, fingerprintable, cacheable.

    Attributes:
        name: stage identifier (also the telemetry span suffix).
        inputs: upstream stage names whose artifact fingerprints feed
            this stage's fingerprint (the basis stage's sole input is the
            problem itself).
        config_fields: solver-config attributes forming the config slice;
            changing any of them invalidates this stage and everything
            downstream, and nothing else.
    """

    name: str = "stage"
    inputs: Tuple[str, ...] = ()
    config_fields: Tuple[str, ...] = ()

    def config_slice(self, config) -> Dict[str, object]:
        return {field: getattr(config, field) for field in self.config_fields}

    def compute(
        self, context, inputs: Dict[str, Artifact], fingerprint: str
    ) -> Artifact:
        raise NotImplementedError


class BasisStage(Stage):
    """Nullspace basis (Def. 1) + the linear-time feasible construction."""

    name = "basis"
    inputs = ()
    config_fields = ()

    def compute(self, context, inputs, fingerprint):
        problem = context.problem
        return BasisArtifact(
            fingerprint=fingerprint,
            basis=problem.homogeneous_basis,
            initial_bits=problem.initial_feasible_solution(),
            num_variables=problem.num_variables,
        )


def choose_basis(
    raw: np.ndarray, initial_bits: np.ndarray, config
) -> Tuple[np.ndarray, int, Optional[PruneResult]]:
    """Pick the cheapest connected move set (Algorithm 1 + augmentation).

    Simplification lowers per-transition cost but can disconnect the
    feasible space, forcing connectivity augmentation to add back wide
    vectors; occasionally the raw basis ends up cheaper overall.  When
    both knobs are on, every candidate is evaluated by its pruned-chain
    CX cost and the cheapest wins (first wins ties, so the simplified
    candidate is preferred).

    Returns ``(winner, num_candidates, winner_prune)`` where
    ``winner_prune`` is the winner's :class:`PruneResult` from the cost
    evaluation (``None`` when only one candidate existed and no
    evaluation was needed) — the prune stage reuses it instead of
    re-deriving the identical schedule.
    """
    candidates: List[np.ndarray] = []
    if config.enable_simplify:
        candidates.append(simplify_basis(raw, iterate=config.simplify_iterate))
    if not config.enable_simplify or config.enable_augment:
        candidates.append(raw)
    if config.enable_augment:
        candidates = [
            augment_moves_for_connectivity(basis, initial_bits)
            for basis in candidates
        ]
    if len(candidates) == 1:
        return candidates[0], 1, None

    evaluations = []
    for basis in candidates:
        pruned = prune_schedule(basis, initial_bits)
        cost = sum(
            int(np.count_nonzero(basis[index])) for index in pruned.schedule
        )
        evaluations.append((cost, basis, pruned))
    best_cost, winner, winner_prune = min(evaluations, key=lambda item: item[0])
    return winner, len(candidates), winner_prune


class HamiltonianStage(Stage):
    """Transition-Hamiltonian move set: simplify, augment, pick cheapest."""

    name = "hamiltonian"
    inputs = ("basis",)
    config_fields = ("enable_simplify", "simplify_iterate", "enable_augment")

    def compute(self, context, inputs, fingerprint):
        basis_artifact: BasisArtifact = inputs["basis"]
        winner, count, winner_prune = choose_basis(
            basis_artifact.basis, basis_artifact.initial_bits, context.config
        )
        return HamiltonianArtifact(
            fingerprint=fingerprint,
            basis=winner,
            candidates=count,
            candidate_prune=winner_prune,
        )


class PruneStage(Stage):
    """Warm start (optional) + chain pruning / full-schedule fallback."""

    name = "prune"
    inputs = ("basis", "hamiltonian")
    config_fields = ("enable_prune", "warm_start")

    def compute(self, context, inputs, fingerprint):
        config = context.config
        hamiltonian: HamiltonianArtifact = inputs["hamiltonian"]
        initial_bits = inputs["basis"].initial_bits
        if config.warm_start:
            from repro.core.warmstart import hill_climb_initial_solution

            # Hill climbing moves along the move set, so the improved
            # start stays in the same connected component and coverage
            # guarantees are unaffected.
            from repro import telemetry

            with telemetry.span("warm_start"):
                initial_bits = hill_climb_initial_solution(
                    context.problem, hamiltonian.basis, start=initial_bits
                )
        if not config.enable_prune:
            full = build_schedule(hamiltonian.basis.shape[0])
            pruned = PruneResult(
                schedule=list(full),
                kept_positions=list(range(len(full))),
                original_length=len(full),
                coverage_after=[],
                total_reachable=-1,
            )
        elif hamiltonian.candidate_prune is not None and not config.warm_start:
            # The candidate evaluation already pruned the winning basis
            # against these exact initial bits — reuse, don't re-derive.
            pruned = hamiltonian.candidate_prune
        else:
            pruned = prune_schedule(hamiltonian.basis, initial_bits)
        return PruneArtifact(
            fingerprint=fingerprint,
            initial_bits=initial_bits,
            pruned=pruned,
            schedule=tuple(pruned.schedule),
        )


class SegmentationStage(Stage):
    """Cut the pruned chain into executable segments (§4.2)."""

    name = "segmentation"
    inputs = ("hamiltonian", "prune")
    config_fields = ("transitions_per_segment", "max_segment_cx")

    def compute(self, context, inputs, fingerprint):
        config = context.config
        basis = inputs["hamiltonian"].basis
        schedule = inputs["prune"].schedule
        if config.max_segment_cx is not None:
            costs = [
                CX_PER_NONZERO * int(np.count_nonzero(basis[index]))
                for index in schedule
            ]
            plan = plan_segments_by_cost(costs, config.max_segment_cx)
        else:
            plan = plan_segments(len(schedule), config.transitions_per_segment)
        return SegmentationArtifact(fingerprint=fingerprint, plan=plan)


class CircuitStage(Stage):
    """Synthesize each segment once; record decomposed depth accounting.

    Depth is a property of the circuit *structure*, not of the evolution
    times (decomposition never elides a rotation by its angle), so the
    segments are synthesized at a fixed reference time and the recorded
    depths hold for every binding.
    """

    name = "circuit"
    inputs = ("hamiltonian", "prune", "segmentation")
    config_fields = ()

    #: Reference evolution time used for structural synthesis.
    REFERENCE_TIME = 1.0

    def compute(self, context, inputs, fingerprint):
        basis = inputs["hamiltonian"].basis
        schedule = inputs["prune"].schedule
        plan = inputs["segmentation"].plan
        num_qubits = context.problem.num_variables
        depths: List[int] = []
        depths_2q: List[int] = []
        cx_costs: List[int] = []
        for segment in plan:
            rows = [schedule[position] for position in segment]
            circuit = transition_chain_circuit(
                basis, rows, [self.REFERENCE_TIME] * len(rows), num_qubits
            )
            flat = decompose_circuit(circuit)
            depths.append(circuit_depth(flat, decompose=False))
            depths_2q.append(two_qubit_depth(flat, decompose=False))
            cx_costs.append(
                sum(
                    CX_PER_NONZERO * int(np.count_nonzero(basis[row]))
                    for row in rows
                )
            )
        return CircuitArtifact(
            fingerprint=fingerprint,
            num_qubits=num_qubits,
            num_parameters=len(schedule),
            segment_depths=tuple(depths),
            segment_depths_2q=tuple(depths_2q),
            segment_cx_costs=tuple(cx_costs),
        )


#: The solve path's compilation passes, in dependency order.
SOLVE_STAGES: Tuple[Stage, ...] = (
    BasisStage(),
    HamiltonianStage(),
    PruneStage(),
    SegmentationStage(),
    CircuitStage(),
)


class ExecutionStage:
    """Terminal pass: run the segmented chain through the engine.

    Never cached — the output depends on evolution times, shot sampling
    randomness, and backend noise.  The segment loop seeds each segment
    from the previous segment's (purified) output with proportional shot
    allocation, exactly the paper's deployment protocol.
    """

    name = "execution"

    def __init__(self, problem, config) -> None:
        self.problem = problem
        self.config = config

    def run(
        self,
        engine,
        chain,
        plan,
        initial_bits: np.ndarray,
        times: Sequence[float],
        base_shots: Optional[int],
    ) -> Tuple[Dict[int, float], float]:
        """Execute every segment; returns ``(distribution, raw rate)``.

        Raises:
            NoFeasibleStateError: when purification is enabled and a
                segment output contains no feasible state.
        """
        distribution: Dict[int, float] = {bits_to_int(initial_bits): 1.0}
        rate = 1.0
        for index, segment in enumerate(plan):
            times_slice = [times[position] for position in segment]
            shots = (
                None
                if base_shots is None
                else self.segment_shots(index, base_shots)
            )
            raw = engine.run_segment(
                chain,
                segment,
                times_slice,
                distribution,
                shots,
                segment_index=index,
            )
            rate = self._feasible_mass(raw)
            distribution = self._purify_or_keep(raw)
            distribution = self._drop_tiny(distribution)
        return distribution, rate

    def segment_shots(self, segment_index: int, base: int) -> int:
        """Shots for one segment under the geometric growth schedule."""
        growth = self.config.shots_growth
        if growth == 1.0:
            return base
        return max(1, int(round(base * growth**segment_index)))

    def _feasible_mass(self, distribution: Dict[int, float]) -> float:
        mass = 0.0
        n = self.problem.num_variables
        for key, probability in distribution.items():
            if self.problem.is_feasible(int_to_bits(key, n)):
                mass += probability
        return mass

    def _purify_or_keep(self, raw: Dict[int, float]) -> Dict[int, float]:
        if not self.config.enable_purify:
            return raw
        purified, _ = purify_probabilities(
            raw, self.problem.constraint_matrix, self.problem.bound
        )
        return purified

    def _drop_tiny(self, distribution: Dict[int, float]) -> Dict[int, float]:
        threshold = self.config.min_seed_probability
        kept = {k: p for k, p in distribution.items() if p >= threshold}
        if not kept:
            kept = distribution
        mass = sum(kept.values())
        return {k: p / mass for k, p in kept.items()}
