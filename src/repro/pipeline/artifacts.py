"""Immutable, fingerprintable intermediate artifacts of the solve path.

Each compilation pass (:mod:`repro.pipeline.stages`) consumes and
produces one of the frozen dataclasses below.  An artifact is a *value*:
its :attr:`fingerprint` is a content address derived from the problem
fingerprint plus every upstream stage's fingerprint and config slice
(:func:`repro.pipeline.manager.stage_fingerprint`), so two artifacts with
equal fingerprints are interchangeable by construction.  Numpy arrays
held by an artifact are marked read-only — a consumer that tries to
mutate a shared artifact fails loudly instead of corrupting the cache.

Every artifact round-trips through ``(meta, arrays)`` payloads
(:meth:`to_payload` / :func:`artifact_from_payload`) so the
:class:`~repro.pipeline.cache.ArtifactCache` can spill it to an ``.npz``
file and a different process can pick it up by fingerprint alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.prune import PruneResult
from repro.core.segmentation import SegmentPlan
from repro.exceptions import ReproError


class PipelineError(ReproError):
    """Raised for malformed pipeline configuration or artifacts."""


def _frozen(array: np.ndarray, dtype=None) -> np.ndarray:
    """A read-only copy of ``array`` (artifact arrays are immutable)."""
    out = np.array(array, dtype=dtype, copy=True)
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class Artifact:
    """Base class: every pipeline artifact carries its content address."""

    fingerprint: str

    #: Registry key; set per subclass, used by the spill codec.
    kind = "artifact"

    def to_payload(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """``(JSON-compatible meta, named arrays)`` for spill/transport."""
        raise NotImplementedError

    @classmethod
    def from_payload(
        cls,
        fingerprint: str,
        meta: Dict[str, Any],
        arrays: Dict[str, np.ndarray],
    ) -> "Artifact":
        raise NotImplementedError

    def nbytes(self) -> int:
        """Approximate serialized size (meta JSON + array bytes)."""
        meta, arrays = self.to_payload()
        return len(json.dumps(meta, sort_keys=True)) + sum(
            int(a.nbytes) for a in arrays.values()
        )


@dataclass(frozen=True)
class BasisArtifact(Artifact):
    """Output of the basis pass: nullspace basis + feasible start.

    Attributes:
        basis: raw signed-unit homogeneous basis of ``C u = 0`` (Def. 1).
        initial_bits: the problem's linear-time feasible construction.
        num_variables: register width ``n``.
    """

    basis: np.ndarray
    initial_bits: np.ndarray
    num_variables: int

    kind = "basis"

    def __post_init__(self) -> None:
        object.__setattr__(self, "basis", _frozen(self.basis))
        object.__setattr__(self, "initial_bits", _frozen(self.initial_bits))

    def to_payload(self):
        return (
            {"kind": self.kind, "num_variables": int(self.num_variables)},
            {"basis": self.basis, "initial_bits": self.initial_bits},
        )

    @classmethod
    def from_payload(cls, fingerprint, meta, arrays):
        return cls(
            fingerprint=fingerprint,
            basis=arrays["basis"],
            initial_bits=arrays["initial_bits"],
            num_variables=int(meta["num_variables"]),
        )


@dataclass(frozen=True)
class HamiltonianArtifact(Artifact):
    """Output of the transition-Hamiltonian pass: the chosen move set.

    Holds the simplified (Algorithm 1) and/or connectivity-augmented
    basis that the transition Hamiltonian is built from, after the
    cheapest-candidate selection by pruned-chain CX cost.

    Attributes:
        basis: the winning move set.
        candidates: number of candidate bases that were evaluated.
        candidate_prune: the winner's :class:`PruneResult` from candidate
            evaluation, when one was computed — the prune pass reuses it
            instead of re-deriving the identical schedule (the evaluation
            is hoisted here so every later consumer shares it).
    """

    basis: np.ndarray
    candidates: int
    candidate_prune: Optional[PruneResult] = field(default=None, compare=False)

    kind = "hamiltonian"

    def __post_init__(self) -> None:
        object.__setattr__(self, "basis", _frozen(self.basis))

    def to_payload(self):
        meta: Dict[str, Any] = {
            "kind": self.kind,
            "candidates": int(self.candidates),
            "candidate_prune": _prune_to_meta(self.candidate_prune),
        }
        return meta, {"basis": self.basis}

    @classmethod
    def from_payload(cls, fingerprint, meta, arrays):
        return cls(
            fingerprint=fingerprint,
            basis=arrays["basis"],
            candidates=int(meta["candidates"]),
            candidate_prune=_prune_from_meta(meta.get("candidate_prune")),
        )


@dataclass(frozen=True)
class PruneArtifact(Artifact):
    """Output of the prune pass: retained schedule + (warm) start.

    Attributes:
        initial_bits: the feasible start actually used downstream (the
            warm-started solution when ``warm_start`` is enabled).
        pruned: full pruning outcome (coverage counts, early stop, ...).
        schedule: retained transition indices, in execution order.
    """

    initial_bits: np.ndarray
    pruned: PruneResult
    schedule: Tuple[int, ...]

    kind = "prune"

    def __post_init__(self) -> None:
        object.__setattr__(self, "initial_bits", _frozen(self.initial_bits))
        object.__setattr__(self, "schedule", tuple(int(i) for i in self.schedule))

    def to_payload(self):
        meta = {
            "kind": self.kind,
            "schedule": [int(i) for i in self.schedule],
            "pruned": _prune_to_meta(self.pruned),
        }
        return meta, {"initial_bits": self.initial_bits}

    @classmethod
    def from_payload(cls, fingerprint, meta, arrays):
        return cls(
            fingerprint=fingerprint,
            initial_bits=arrays["initial_bits"],
            pruned=_prune_from_meta(meta["pruned"]),
            schedule=tuple(meta["schedule"]),
        )


@dataclass(frozen=True)
class SegmentationArtifact(Artifact):
    """Output of the segmentation pass: the executable segment plan."""

    plan: SegmentPlan

    kind = "segmentation"

    def to_payload(self):
        meta = {
            "kind": self.kind,
            "segments": [list(segment) for segment in self.plan.segments],
        }
        return meta, {}

    @classmethod
    def from_payload(cls, fingerprint, meta, arrays):
        plan = SegmentPlan(
            segments=tuple(tuple(int(p) for p in seg) for seg in meta["segments"])
        )
        return cls(fingerprint=fingerprint, plan=plan)


@dataclass(frozen=True)
class CircuitArtifact(Artifact):
    """Output of the circuit pass: synthesis-derived depth accounting.

    The gate-level segment circuits themselves stay in the engine's
    compiled-circuit cache (they embed builder closures); this artifact
    records what downstream consumers actually read off them — per-segment
    decomposed depth, decomposed two-qubit depth, and the linear
    ``34 k`` CX-cost model — all independent of the evolution times.

    Attributes:
        num_qubits: register width.
        num_parameters: one evolution time per retained transition.
        segment_depths: decomposed circuit depth per segment.
        segment_depths_2q: decomposed two-qubit (CX) depth per segment.
        segment_cx_costs: linear-model CX cost per segment.
    """

    num_qubits: int
    num_parameters: int
    segment_depths: Tuple[int, ...]
    segment_depths_2q: Tuple[int, ...]
    segment_cx_costs: Tuple[int, ...]

    kind = "circuit"

    @property
    def max_depth(self) -> int:
        """Depth of the deepest executed segment (0 when degenerate)."""
        return max(self.segment_depths, default=0)

    @property
    def max_depth_2q(self) -> int:
        return max(self.segment_depths_2q, default=0)

    @property
    def max_segment_cx(self) -> int:
        return max(self.segment_cx_costs, default=0)

    @property
    def chain_cx(self) -> int:
        """Whole-chain CX cost under the linear model (unsegmented)."""
        return sum(self.segment_cx_costs)

    def to_payload(self):
        meta = {
            "kind": self.kind,
            "num_qubits": int(self.num_qubits),
            "num_parameters": int(self.num_parameters),
            "segment_depths": [int(d) for d in self.segment_depths],
            "segment_depths_2q": [int(d) for d in self.segment_depths_2q],
            "segment_cx_costs": [int(c) for c in self.segment_cx_costs],
        }
        return meta, {}

    @classmethod
    def from_payload(cls, fingerprint, meta, arrays):
        return cls(
            fingerprint=fingerprint,
            num_qubits=int(meta["num_qubits"]),
            num_parameters=int(meta["num_parameters"]),
            segment_depths=tuple(meta["segment_depths"]),
            segment_depths_2q=tuple(meta["segment_depths_2q"]),
            segment_cx_costs=tuple(meta["segment_cx_costs"]),
        )


@dataclass(frozen=True)
class AnsatzArtifact(Artifact):
    """Output of the baseline ansatz pass: a content-addressed identity.

    The baselines' engine work description
    (:class:`~repro.engine.AnsatzSpec`) historically used a process-unique
    counter as its compiled-circuit cache key, so two identical baseline
    instances never shared a synthesized ansatz.  This artifact replaces
    the counter with a fingerprint of (problem, algorithm, structural
    config), making the cache key a pure function of the ansatz structure.

    Attributes:
        algorithm: baseline identifier (``hea`` / ``pqaoa`` / ``chocoq``).
        num_parameters: variational parameter count.
        cache_key: the engine compiled-circuit cache key.
    """

    algorithm: str
    num_parameters: int

    kind = "ansatz"

    @property
    def cache_key(self) -> Tuple[str, str]:
        return ("ansatz", self.fingerprint)

    def to_payload(self):
        meta = {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "num_parameters": int(self.num_parameters),
        }
        return meta, {}

    @classmethod
    def from_payload(cls, fingerprint, meta, arrays):
        return cls(
            fingerprint=fingerprint,
            algorithm=meta["algorithm"],
            num_parameters=int(meta["num_parameters"]),
        )


# ----------------------------------------------------------------------
# PruneResult <-> JSON meta
# ----------------------------------------------------------------------
def _prune_to_meta(pruned: Optional[PruneResult]) -> Optional[Dict[str, Any]]:
    if pruned is None:
        return None
    return {
        "schedule": [int(i) for i in pruned.schedule],
        "kept_positions": [int(i) for i in pruned.kept_positions],
        "original_length": int(pruned.original_length),
        "coverage_after": [int(i) for i in pruned.coverage_after],
        "total_reachable": int(pruned.total_reachable),
        "early_stop_position": (
            None
            if pruned.early_stop_position is None
            else int(pruned.early_stop_position)
        ),
    }


def _prune_from_meta(meta: Optional[Dict[str, Any]]) -> Optional[PruneResult]:
    if meta is None:
        return None
    return PruneResult(
        schedule=list(meta["schedule"]),
        kept_positions=list(meta["kept_positions"]),
        original_length=int(meta["original_length"]),
        coverage_after=list(meta["coverage_after"]),
        total_reachable=int(meta["total_reachable"]),
        early_stop_position=meta.get("early_stop_position"),
    )


#: Spill-codec registry: meta ``kind`` -> artifact class.
ARTIFACT_KINDS = {
    cls.kind: cls
    for cls in (
        BasisArtifact,
        HamiltonianArtifact,
        PruneArtifact,
        SegmentationArtifact,
        CircuitArtifact,
        AnsatzArtifact,
    )
}


def artifact_from_payload(
    fingerprint: str, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> Artifact:
    """Reconstruct any registered artifact from its spill payload."""
    kind = meta.get("kind")
    cls = ARTIFACT_KINDS.get(kind)
    if cls is None:
        raise PipelineError(f"unknown artifact kind {kind!r}")
    return cls.from_payload(fingerprint, meta, arrays)
