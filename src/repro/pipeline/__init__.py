"""repro.pipeline — staged compilation of the solve path.

The Rasengan solve path is structurally a compiler::

    problem ──▶ basis ──▶ hamiltonian ──▶ prune ──▶ segmentation ──▶ circuit ──▶ execution

This package factors it into exactly those passes.  Every pass consumes
and produces immutable artifact dataclasses
(:mod:`repro.pipeline.artifacts`) whose fingerprints are content
addresses rooted at :func:`repro.problems.io.problem_fingerprint`; the
:class:`ArtifactCache` (in-memory LRU + optional ``.npz`` spill
directory) then lets restarts, candidate re-scoring, experiment sweeps,
and service jobs that differ only in backend/shots/optimizer settings
reuse every pre-execution artifact instead of recomputing it.

:class:`~repro.core.solver.RasenganSolver` is a thin orchestration over
:class:`SolvePipeline`; the variational baselines route their
encode/ansatz phases through :func:`compile_ansatz`.  See
``docs/ARCHITECTURE.md`` for the stage/fingerprint table and
``docs/OBSERVABILITY.md`` for the ``pipeline.*`` spans and counters.
"""

from repro.pipeline.artifacts import (
    AnsatzArtifact,
    Artifact,
    BasisArtifact,
    CircuitArtifact,
    HamiltonianArtifact,
    PipelineError,
    PruneArtifact,
    SegmentationArtifact,
    artifact_from_payload,
)
from repro.pipeline.cache import (
    ArtifactCache,
    configure_cache,
    get_default_cache,
)
from repro.pipeline.manager import (
    PIPELINE_VERSION,
    SolvePipeline,
    capture_report,
    compile_ansatz,
    fingerprint_report,
    resolve_problem_fingerprint,
    stage_fingerprint,
)
from repro.pipeline.stages import (
    SOLVE_STAGES,
    BasisStage,
    CircuitStage,
    ExecutionStage,
    HamiltonianStage,
    PruneStage,
    SegmentationStage,
    Stage,
    choose_basis,
)

__all__ = [
    "AnsatzArtifact",
    "Artifact",
    "ArtifactCache",
    "BasisArtifact",
    "BasisStage",
    "CircuitArtifact",
    "CircuitStage",
    "ExecutionStage",
    "HamiltonianArtifact",
    "HamiltonianStage",
    "PIPELINE_VERSION",
    "PipelineError",
    "PruneArtifact",
    "PruneStage",
    "SOLVE_STAGES",
    "SegmentationArtifact",
    "SegmentationStage",
    "SolvePipeline",
    "Stage",
    "capture_report",
    "choose_basis",
    "compile_ansatz",
    "configure_cache",
    "fingerprint_report",
    "get_default_cache",
    "resolve_problem_fingerprint",
    "stage_fingerprint",
]
