"""``python -m repro`` — regenerate paper tables/figures from the CLI."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
