"""``python -m repro`` — tables/figures, one-shot solves, and the service.

Same entry point as the ``repro`` console script: experiment names
regenerate paper tables/figures, ``solve`` runs one benchmark, ``serve``
starts the solve service, and ``--version`` reports the package version.
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
