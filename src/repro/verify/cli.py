"""``python -m repro verify`` — run the differential correctness checks.

Usage::

    python -m repro verify list
    python -m repro verify run --suite quick --seed 7
    python -m repro verify run --check sparse-vs-dense --json
    python -m repro verify run --suite full --out verdicts.json
    python -m repro verify mutate --seed 7 --scale 1e-3

``run`` executes the selected checks and prints one verdict line per
check; exit code 0 when every check matched (or skipped), 1 on any
mismatch, 2 on argument errors.  ``--json`` prints the full structured
report instead, ``--out PATH`` writes it to a file either way, and the
report is deterministic for a given seed (no timestamps), so CI can
diff two runs byte-for-byte.

``mutate`` runs the same checks under a seeded perturbation plan: the
fault point ``verify.<check>`` nudges one leaf of every path-B payload,
so on a healthy tree *every* check must flip to mismatch and the
command must exit 1.  A ``mutate`` invocation that exits 0 means the
harness has gone vacuous — ``tools/verify_smoke.py`` gates CI on
exactly that property.

``--trace`` renders the telemetry span tree / counters to stderr after
the run (the checks reuse ``repro.telemetry`` spans), keeping stdout
clean for report JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import faults, telemetry
from repro.verify.harness import (
    VerifyError,
    checks_for,
    exit_code,
    mutation_plan,
    run_checks,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Differential correctness checks: each verifies two "
        "redundant paths agree within a stated tolerance.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list registered checks")
    for name, help_text in (
        ("run", "run checks and report verdicts (exit 1 on mismatch)"),
        (
            "mutate",
            "run checks under a seeded perturbation; a healthy harness "
            "flips every check to mismatch and exits 1",
        ),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument(
            "--suite",
            choices=("quick", "full"),
            default="quick",
            help="check suite (full raises per-check case counts)",
        )
        sub.add_argument(
            "--check",
            action="append",
            default=None,
            metavar="NAME",
            help="run only the named check (repeatable; overrides --suite "
            "selection)",
        )
        sub.add_argument(
            "--seed", type=int, default=0, help="root seed for every check"
        )
        sub.add_argument(
            "--json",
            action="store_true",
            help="print the full JSON report instead of verdict lines",
        )
        sub.add_argument(
            "--out",
            default=None,
            metavar="PATH",
            help="additionally write the JSON report to PATH",
        )
        sub.add_argument(
            "--trace",
            action="store_true",
            help="render the telemetry span tree + counters to stderr",
        )
        if name == "mutate":
            sub.add_argument(
                "--scale",
                type=float,
                default=1e-3,
                help="perturbation magnitude (must exceed every tolerance)",
            )
    return parser


def _list_checks() -> int:
    for check in checks_for():
        suites = ",".join(check.suites)
        tolerance = (
            "bit-exact" if check.tolerance == 0.0 else f"{check.tolerance:.0e}"
        )
        print(f"{check.name:<28} [{suites}] tol={tolerance:<10} "
              f"{check.description}")
    return 0


def _run(args: argparse.Namespace, *, mutated: bool) -> int:
    try:
        checks = checks_for(suite=args.suite, names=args.check)
    except VerifyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    collector = telemetry.enable() if args.trace else None
    injector = None
    if mutated:
        plan = mutation_plan(
            scale=args.scale,
            seed=args.seed,
            names=[check.name for check in checks],
        )
        injector = faults.install(plan)
    try:
        report = run_checks(
            checks,
            seed=args.seed,
            suite=args.suite,
            thorough=args.suite == "full",
            mutated=mutated,
        )
    finally:
        if injector is not None:
            faults.uninstall()
        if collector is not None:
            telemetry.disable()
            print(telemetry.render_tree(collector, max_children=8),
                  file=sys.stderr)
            print(telemetry.render_summary(collector), file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        for entry in report["checks"]:
            marker = {"match": "ok", "mismatch": "FAIL", "skipped": "skip"}[
                entry["verdict"]
            ]
            line = f"{marker:<5} {entry['name']:<28} tol={entry['tolerance']:g}"
            if entry["max_abs_deviation"] is not None:
                line += f" max|delta|={entry['max_abs_deviation']:.3e}"
            if entry["reason"]:
                line += f"  ({entry['reason']})"
            print(line)
        summary = report["summary"]
        print(
            f"{summary['match']} match, {summary['mismatch']} mismatch, "
            f"{summary['skipped']} skipped"
            + (" [mutation mode]" if mutated else "")
        )
        if mutated:
            print(
                "mutation mode: a nonzero exit proves the harness detects "
                "injected divergence"
            )
    return exit_code(report)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _list_checks()
    return _run(args, mutated=args.command == "mutate")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
