"""Differential correctness harness: registry, verdicts, mutation hook.

The repository promises several *redundant paths* to the same answer —
a dense statevector and the sparse amplitude map, a cold compile and a
cache-served one, a serial engine and a process pool, an in-memory
result store and its reloaded twin.  Those equivalences are the
strongest correctness oracles the codebase has, and this module turns
them into executable checks: each :class:`Check` produces the same
payload through two independent paths and the harness judges whether
they agree within the check's stated tolerance (``0.0`` means the
payloads must be *bit-identical*, compared by canonical-JSON
fingerprint).

A harness that cannot fail is worthless, so every check routes its
second path through the fault point ``verify.<check name>``.  Under a
:func:`mutation_plan` (``python -m repro verify mutate``) that point
returns a :class:`repro.faults.PerturbDirective` and the harness nudges
one leaf of the path-B payload before judging — a healthy harness must
then report a mismatch for every check, proving the comparisons are
live rather than vacuous.

Verdicts are structured (:class:`CheckResult`): ``match`` /
``mismatch`` / ``skipped``, with per-path payload fingerprints, the
maximum absolute deviation, and a human-readable reason.  The report
returned by :func:`run_checks` is deterministic for a given seed — no
timestamps, no durations — so running the quick suite twice and
diffing the JSON is itself a determinism check (``tools/verify_smoke.py``
does exactly that).

See ``docs/VERIFICATION.md`` for the check catalog and how to add one.
"""

from __future__ import annotations

import hashlib
import json
import math
import numbers
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import faults, telemetry
from repro.exceptions import ReproError

#: Schema tag of the report dict produced by :func:`run_checks`.
REPORT_VERSION = "repro.verify/v1"

#: Known suite names: ``quick`` is the CI set, ``full`` additionally
#: raises per-check case counts (``CheckContext.thorough``).
SUITES = ("quick", "full")

#: Verdicts a check can produce.
VERDICTS = ("match", "mismatch", "skipped")


class VerifyError(ReproError):
    """Harness misuse: unknown check, bad suite, duplicate registration."""


class CheckSkipped(Exception):
    """Raised by a check body to report a ``skipped`` verdict.

    Reserved for genuinely inapplicable situations (a missing optional
    dependency, an instance too large for brute force) — never for a
    disagreement, which must surface as ``mismatch``.
    """


@dataclass(frozen=True)
class Check:
    """One registered differential check.

    Attributes:
        name: unique kebab-case identifier (also names the fault point
            ``verify.<name>`` used by mutation mode).
        description: one-line human description of the two paths.
        suites: suite names this check belongs to.
        tolerance: maximum allowed absolute deviation between the two
            payloads; ``0.0`` demands bit-identical canonical-JSON
            fingerprints.
        func: the check body, ``func(ctx) -> CheckOutput``.
    """

    name: str
    description: str
    suites: Tuple[str, ...]
    tolerance: float
    func: Callable[["CheckContext"], "CheckOutput"]


@dataclass
class CheckOutput:
    """What a check body returns: one payload per redundant path.

    Payloads may be any JSON-encodable composition of dicts, sequences,
    numbers, strings and numpy arrays.  ``payload_b`` is the path the
    harness perturbs in mutation mode, so by convention path A is the
    reference implementation and path B the optimised/cached/parallel
    one under test.
    """

    label_a: str
    payload_a: Any
    label_b: str
    payload_b: Any
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CheckResult:
    """Structured verdict of one executed check."""

    name: str
    verdict: str
    tolerance: float
    max_abs_deviation: float
    fingerprints: Dict[str, str]
    details: Dict[str, Any]
    reason: str = ""

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe record (non-finite deviations become ``None``)."""
        deviation: Optional[float] = self.max_abs_deviation
        if deviation is not None and not math.isfinite(deviation):
            deviation = None
        return {
            "name": self.name,
            "verdict": self.verdict,
            "tolerance": self.tolerance,
            "max_abs_deviation": deviation,
            "fingerprints": dict(self.fingerprints),
            "details": _plain(self.details),
            "reason": self.reason,
        }


#: Registered checks in registration order (name -> Check).
REGISTRY: "OrderedDict[str, Check]" = OrderedDict()


def register_check(
    name: str,
    description: str,
    *,
    suites: Sequence[str] = ("quick", "full"),
    tolerance: float = 0.0,
) -> Callable[[Callable[["CheckContext"], CheckOutput]], Callable]:
    """Decorator: add a check body to :data:`REGISTRY`."""
    for suite in suites:
        if suite not in SUITES:
            raise VerifyError(
                f"unknown suite {suite!r} for check {name!r}; "
                f"choose from {SUITES}"
            )

    def decorator(func: Callable[["CheckContext"], CheckOutput]):
        if name in REGISTRY:
            raise VerifyError(f"check {name!r} registered twice")
        REGISTRY[name] = Check(
            name=name,
            description=description,
            suites=tuple(suites),
            tolerance=float(tolerance),
            func=func,
        )
        return func

    return decorator


def checks_for(
    suite: Optional[str] = None, names: Optional[Sequence[str]] = None
) -> List[Check]:
    """Resolve a suite name and/or explicit check names to Check objects.

    Explicit ``names`` win over ``suite``; an unknown name or suite
    raises :class:`VerifyError`.
    """
    _ensure_builtin_checks()
    if names:
        unknown = [name for name in names if name not in REGISTRY]
        if unknown:
            raise VerifyError(
                f"unknown check(s): {', '.join(unknown)} "
                f"(have: {', '.join(REGISTRY)})"
            )
        return [REGISTRY[name] for name in names]
    if suite is None:
        return list(REGISTRY.values())
    if suite not in SUITES:
        raise VerifyError(f"unknown suite {suite!r}; choose from {SUITES}")
    return [check for check in REGISTRY.values() if suite in check.suites]


def _ensure_builtin_checks() -> None:
    """Populate :data:`REGISTRY` with the built-in checks (idempotent)."""
    from repro.verify import checks as _checks  # noqa: F401  (registers)


@dataclass
class CheckContext:
    """Per-check execution context handed to every check body.

    Attributes:
        check: the check being run.
        seed: root seed of the verify invocation; derive per-purpose
            streams with :meth:`rng` / :meth:`derived_seed` so checks
            stay independent of registration order.
        suite: suite name the run was invoked with.
        thorough: ``True`` for the ``full`` suite — checks should raise
            their case counts / instance sizes.
    """

    check: Check
    seed: int = 0
    suite: str = "quick"
    thorough: bool = False

    def derived_seed(self, salt: str = "") -> int:
        """Deterministic child seed, independent of other checks."""
        digest = hashlib.sha256(
            f"{REPORT_VERSION}:{self.seed}:{self.check.name}:{salt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % (2**31 - 1)

    def rng(self, salt: str = "") -> np.random.Generator:
        """A fresh generator seeded from :meth:`derived_seed`."""
        return np.random.default_rng(self.derived_seed(salt))


# ----------------------------------------------------------------------
# Canonical payloads: fingerprints and deviations
# ----------------------------------------------------------------------
def _plain(obj: Any) -> Any:
    """Recursively convert a payload to canonical JSON-encodable form.

    Numpy scalars/arrays become native numbers/lists, complex numbers a
    tagged ``{"__complex__": [re, im]}`` mapping, tuples lists, and all
    mapping keys strings — so two payloads fingerprint equal exactly
    when every leaf is bit-equal.
    """
    if isinstance(obj, np.ndarray):
        return [_plain(value) for value in obj.tolist()]
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (complex, np.complexfloating)):
        value = complex(obj)
        return {"__complex__": [value.real, value.imag]}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, Mapping):
        return {str(key): _plain(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(value) for value in obj]
    return obj


def fingerprint_payload(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    Floats serialize through :func:`repr`-style shortest round-trip, so
    equal fingerprints mean bit-equal leaves — the comparison used by
    tolerance-0 (bit-identity) checks.
    """
    text = json.dumps(_plain(payload), sort_keys=True, allow_nan=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def max_deviation(a: Any, b: Any) -> float:
    """Maximum absolute numeric deviation between two aligned payloads.

    Structural disagreements — different keys, lengths, or non-numeric
    leaves that differ — count as ``inf`` so they can never sneak under
    a tolerance.
    """
    if a is None and b is None:
        return 0.0
    if isinstance(a, (bool, np.bool_)) or isinstance(b, (bool, np.bool_)):
        return 0.0 if bool(a) == bool(b) else math.inf
    if isinstance(a, (numbers.Number, np.number)) and isinstance(
        b, (numbers.Number, np.number)
    ):
        return float(abs(complex(a) - complex(b)))
    if isinstance(a, str) or isinstance(b, str):
        return 0.0 if a == b else math.inf
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        keys_a = {str(key): key for key in a}
        keys_b = {str(key): key for key in b}
        if set(keys_a) != set(keys_b):
            return math.inf
        if not keys_a:
            return 0.0
        return max(
            max_deviation(a[keys_a[key]], b[keys_b[key]]) for key in keys_a
        )
    if isinstance(a, (list, tuple, np.ndarray)) and isinstance(
        b, (list, tuple, np.ndarray)
    ):
        items_a = list(a) if not isinstance(a, np.ndarray) else list(a.tolist())
        items_b = list(b) if not isinstance(b, np.ndarray) else list(b.tolist())
        if len(items_a) != len(items_b):
            return math.inf
        if not items_a:
            return 0.0
        return max(
            max_deviation(va, vb) for va, vb in zip(items_a, items_b)
        )
    return 0.0 if a == b else math.inf


# ----------------------------------------------------------------------
# Mutation: nudge the first perturbable leaf of a payload
# ----------------------------------------------------------------------
def perturb_payload(payload: Any, scale: float) -> Tuple[Any, bool]:
    """Return a copy of ``payload`` with its first numeric leaf nudged.

    Traversal is deterministic (mapping keys in sorted order, sequences
    in order) and tiered: the first float/complex leaf gets ``+scale``;
    if the payload holds no float at all, the first integer leaf gets
    ``+max(1, round(scale))``; failing that, the first string gets a
    marker appended.  Returns ``(perturbed, hit)`` — ``hit`` is False
    only for payloads with no scalar leaf at all.
    """
    for tier in ("float", "int", "str"):
        perturbed, hit = _perturb(payload, scale, tier)
        if hit:
            return perturbed, True
    return payload, False


def _perturb(obj: Any, scale: float, tier: str) -> Tuple[Any, bool]:
    if isinstance(obj, np.ndarray):
        if obj.size and tier == "float" and obj.dtype.kind in "fc":
            out = obj.copy()
            out.flat[0] = out.flat[0] + scale
            return out, True
        if obj.size and tier == "int" and obj.dtype.kind in "iu":
            out = obj.copy()
            out.flat[0] = out.flat[0] + max(1, round(scale))
            return out, True
        return obj, False
    if isinstance(obj, (bool, np.bool_)):
        return obj, False
    if tier == "float" and isinstance(
        obj, (float, complex, np.floating, np.complexfloating)
    ):
        return obj + scale, True
    if tier == "int" and isinstance(obj, (int, np.integer)):
        return obj + max(1, round(scale)), True
    if tier == "str" and isinstance(obj, str):
        return obj + "≠", True
    if isinstance(obj, Mapping):
        for key in sorted(obj, key=repr):
            value, hit = _perturb(obj[key], scale, tier)
            if hit:
                out = dict(obj)
                out[key] = value
                return out, True
        return obj, False
    if isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            value, hit = _perturb(item, scale, tier)
            if hit:
                out = list(obj)
                out[index] = value
                return type(obj)(out) if isinstance(obj, tuple) else out, True
        return obj, False
    return obj, False


def mutation_plan(
    *, scale: float = 1e-3, seed: int = 0, names: Optional[Sequence[str]] = None
) -> faults.FaultPlan:
    """A fault plan that perturbs every (or each named) verify point.

    The default scale (``1e-3``) sits far above every registered
    tolerance, so under this plan a healthy harness must flip every
    executed check to ``mismatch``.
    """
    if names:
        rules = [
            faults.FaultRule(f"verify.{name}", "perturb", scale=scale)
            for name in names
        ]
    else:
        rules = [faults.FaultRule("verify.*", "perturb", scale=scale)]
    return faults.FaultPlan(rules, seed=seed)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _judge(ctx: CheckContext, output: CheckOutput) -> CheckResult:
    """Compare the two payloads of one check output into a verdict."""
    payload_b = output.payload_b
    details = dict(output.details)
    directive = faults.point(f"verify.{ctx.check.name}")
    if isinstance(directive, faults.PerturbDirective):
        payload_b, hit = perturb_payload(payload_b, directive.scale)
        details["mutation"] = {"applied": hit, "scale": directive.scale}
    fingerprints = {
        output.label_a: fingerprint_payload(output.payload_a),
        output.label_b: fingerprint_payload(payload_b),
    }
    deviation = max_deviation(output.payload_a, payload_b)
    if ctx.check.tolerance == 0.0:
        agree = fingerprints[output.label_a] == fingerprints[output.label_b]
        reason = (
            ""
            if agree
            else f"payload fingerprints differ ({output.label_a} vs "
            f"{output.label_b}); max |delta| = {deviation:.3e}"
        )
    else:
        agree = deviation <= ctx.check.tolerance
        reason = (
            ""
            if agree
            else f"max |delta| = {deviation:.3e} exceeds tolerance "
            f"{ctx.check.tolerance:.1e}"
        )
    return CheckResult(
        name=ctx.check.name,
        verdict="match" if agree else "mismatch",
        tolerance=ctx.check.tolerance,
        max_abs_deviation=deviation,
        fingerprints=fingerprints,
        details=details,
        reason=reason,
    )


def run_check(check: Check, ctx: CheckContext) -> CheckResult:
    """Execute one check under telemetry; exceptions become verdicts."""
    with telemetry.span("verify.check", check=check.name) as span:
        telemetry.add("verify.checks")
        try:
            output = check.func(ctx)
            result = _judge(ctx, output)
        except CheckSkipped as exc:
            result = CheckResult(
                name=check.name,
                verdict="skipped",
                tolerance=check.tolerance,
                max_abs_deviation=0.0,
                fingerprints={},
                details={},
                reason=str(exc),
            )
        except Exception as exc:  # noqa: BLE001 — a crashing check is a
            # correctness finding, not infrastructure noise: report it as
            # a mismatch so the run exits nonzero.
            telemetry.add("verify.errors")
            result = CheckResult(
                name=check.name,
                verdict="mismatch",
                tolerance=check.tolerance,
                max_abs_deviation=math.inf,
                fingerprints={},
                details={},
                reason=f"check raised {type(exc).__name__}: {exc}",
            )
        span.set(verdict=result.verdict)
        telemetry.add(f"verify.{result.verdict}")
    return result


def run_checks(
    checks: Sequence[Check],
    *,
    seed: int = 0,
    suite: str = "quick",
    thorough: bool = False,
    mutated: bool = False,
) -> Dict[str, Any]:
    """Run ``checks`` and return the deterministic verdict report.

    The report carries no timestamps or durations: two runs with the
    same seed over the same tree are byte-identical, which is itself
    part of the determinism contract (see ``tools/verify_smoke.py``).
    """
    results: List[CheckResult] = []
    with telemetry.span(
        "verify.run", suite=suite, seed=seed, checks=len(checks)
    ):
        for check in checks:
            ctx = CheckContext(
                check=check, seed=seed, suite=suite, thorough=thorough
            )
            results.append(run_check(check, ctx))
    summary = {verdict: 0 for verdict in VERDICTS}
    for result in results:
        summary[result.verdict] += 1
    return {
        "version": REPORT_VERSION,
        "seed": seed,
        "suite": suite,
        "mutated": mutated,
        "checks": [result.to_json_dict() for result in results],
        "summary": summary,
    }


def exit_code(report: Mapping[str, Any]) -> int:
    """CLI exit code for a report: 1 on any mismatch, else 0."""
    return 1 if report["summary"]["mismatch"] else 0
