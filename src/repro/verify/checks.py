"""Built-in differential checks: the redundant paths the repo promises.

Each check here computes the same answer twice through genuinely
independent machinery and returns both payloads for the harness to
judge (see :mod:`repro.verify.harness` for verdict semantics and the
mutation hook).  The catalog — paths, tolerances, rationale — is
documented in ``docs/VERIFICATION.md``.

All checks are deterministic functions of the verify seed: instance
choices, random circuits and synthetic records derive from
``ctx.rng(...)`` / ``ctx.derived_seed(...)``, never from global RNG
state or wall-clock.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.verify.harness import (
    CheckContext,
    CheckOutput,
    CheckSkipped,
    register_check,
)

#: Benchmark instances small enough for the brute-force oracle.
_ARG_INSTANCES_QUICK = ("F1", "K1")
_ARG_INSTANCES_FULL = ("F1", "K1", "G1")


def _solve_benchmark(
    benchmark_id: str,
    *,
    seed: int,
    shots=None,
    max_iterations: int = 12,
    restarts: int = 1,
    engine_workers: int = 0,
):
    """Run one solver with a private artifact cache; returns the result.

    A private cache keeps checks independent of each other and of the
    process-wide default cache state.
    """
    from repro.core.solver import RasenganConfig, RasenganSolver
    from repro.pipeline.cache import ArtifactCache
    from repro.problems.registry import make_benchmark

    problem = make_benchmark(benchmark_id)
    config = RasenganConfig(
        shots=shots,
        max_iterations=max_iterations,
        restarts=restarts,
        seed=seed,
        engine_workers=engine_workers,
    )
    solver = RasenganSolver(
        problem, config=config, artifact_cache=ArtifactCache()
    )
    try:
        result = solver.solve()
    finally:
        solver.engine.close()
    return problem, result


# ----------------------------------------------------------------------
# 1. Dense statevector vs sparse amplitude map
# ----------------------------------------------------------------------
def _random_chain(
    rng: np.random.Generator, num_qubits: int
) -> Tuple[np.ndarray, List[int], np.ndarray, np.ndarray]:
    """A random signed-unit transition chain over ``num_qubits`` qubits.

    The initial bits are chosen compatible with the first scheduled
    transition (``x + u`` binary: 0 under every ``+1`` of ``u``, 1 under
    every ``-1``), so the chain provably mixes the state instead of
    degenerating into an identity — a vacuous case would compare two
    untouched basis states and verify nothing.
    """
    num_rows = int(rng.integers(2, 4))
    rows = []
    for _ in range(num_rows):
        support = int(rng.integers(1, min(3, num_qubits) + 1))
        positions = rng.choice(num_qubits, size=support, replace=False)
        vector = np.zeros(num_qubits, dtype=np.int64)
        for position in positions:
            vector[position] = int(rng.choice([-1, 1]))
        rows.append(vector)
    basis = np.stack(rows)
    length = int(rng.integers(3, 6))
    schedule = [int(value) for value in rng.integers(0, num_rows, size=length)]
    times = rng.uniform(0.05, 1.5, size=length)
    initial_bits = rng.integers(0, 2, size=num_qubits).astype(np.int8)
    first = basis[schedule[0]]
    initial_bits[first == 1] = 0
    initial_bits[first == -1] = 1
    return basis, schedule, times, initial_bits


def _chain_amplitudes(
    basis: np.ndarray,
    schedule: Sequence[int],
    times: Sequence[float],
    num_qubits: int,
    initial_bits: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """(dense, sparse) final amplitudes of one transition chain."""
    from repro.core.transition import transition_chain_circuit
    from repro.simulators.sparsestate import SparseState
    from repro.simulators.statevector import simulate_statevector

    circuit = transition_chain_circuit(
        basis, schedule, times, num_qubits, initial_bits
    )
    dense = simulate_statevector(circuit)
    state = SparseState.from_bits(initial_bits)
    rows = np.atleast_2d(basis)
    for index, time in zip(schedule, times):
        state.apply_transition(rows[index], time)
    return dense, state.to_dense()


@register_check(
    "sparse-vs-dense",
    "dense statevector vs sparse amplitude-map simulation of the same "
    "Rasengan transition chains",
    tolerance=1e-10,
)
def check_sparse_vs_dense(ctx: CheckContext) -> CheckOutput:
    """Gate-level dense simulation and the Equation-6 sparse fast path.

    Path A synthesises the full transition-chain circuit and runs it
    through the dense statevector simulator; path B applies the sparse
    transition operator directly.  Agreement to 1e-10 (the sparse prune
    threshold sits at 1e-12 of the norm) on the paper's F1 chain plus
    seeded random signed-unit chains.
    """
    from repro.core.solver import RasenganConfig
    from repro.pipeline import SolvePipeline
    from repro.pipeline.cache import ArtifactCache
    from repro.problems.registry import make_benchmark

    cases: Dict[str, Tuple[np.ndarray, List[int], np.ndarray, np.ndarray]] = {}
    problem = make_benchmark("F1")
    pipeline = SolvePipeline(
        problem, RasenganConfig(), cache=ArtifactCache()
    )
    artifacts = pipeline.compile()
    schedule = list(artifacts["prune"].schedule)
    times = ctx.rng("times").uniform(0.1, 1.3, size=len(schedule))
    cases["F1"] = (
        artifacts["hamiltonian"].basis,
        schedule,
        times,
        artifacts["prune"].initial_bits,
    )
    num_random = 6 if ctx.thorough else 3
    for index in range(num_random):
        width = 4 + index % 3
        cases[f"random-{index}"] = _random_chain(
            ctx.rng(f"chain-{index}"), width
        )

    dense_payload: Dict[str, np.ndarray] = {}
    sparse_payload: Dict[str, np.ndarray] = {}
    support_sizes: Dict[str, int] = {}
    for name in sorted(cases):
        basis, case_schedule, case_times, initial_bits = cases[name]
        num_qubits = int(np.atleast_2d(basis).shape[1])
        dense, sparse = _chain_amplitudes(
            basis, case_schedule, case_times, num_qubits, initial_bits
        )
        dense_payload[name] = dense
        sparse_payload[name] = sparse
        # A chain that never mixed would compare two untouched basis
        # states — record the support so vacuous cases are visible.
        support_sizes[name] = int(np.count_nonzero(np.abs(dense) > 1e-12))
    return CheckOutput(
        "statevector",
        dense_payload,
        "sparsestate",
        sparse_payload,
        details={"cases": sorted(cases), "support": support_sizes},
    )


# ----------------------------------------------------------------------
# 2. Cold pipeline compile vs cache/spill-served compile
# ----------------------------------------------------------------------
def _pipeline_payload(pipeline, artifacts) -> Dict[str, Any]:
    """Fingerprints + full artifact payloads of one compile."""
    payload: Dict[str, Any] = {
        "fingerprints": {
            entry["stage"]: entry["fingerprint"] for entry in pipeline.report
        },
        "artifacts": {},
    }
    for name, artifact in artifacts.items():
        meta, arrays = artifact.to_payload()
        payload["artifacts"][name] = {
            "meta": meta,
            "arrays": {key: arrays[key] for key in sorted(arrays)},
        }
    return payload


@register_check(
    "pipeline-cold-vs-cached",
    "cold pipeline compile vs ArtifactCache-served and spill-dir-served "
    "compiles of the same problem",
    tolerance=0.0,
)
def check_pipeline_cold_vs_cached(ctx: CheckContext) -> CheckOutput:
    """Content-addressed caching must be invisible to artifact content.

    Path A compiles F1 cold; path B re-compiles through the same cache
    (every stage must be cache-served) and again through a *fresh*
    cache backed only by the spill directory, so the payloads also
    round-trip the ``.npz`` persistence format.  Bit-identity required.
    """
    from repro.core.solver import RasenganConfig
    from repro.pipeline import SolvePipeline
    from repro.pipeline.cache import ArtifactCache
    from repro.problems.registry import make_benchmark

    problem = make_benchmark("F1")
    config = RasenganConfig(max_segment_cx=150)
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as spill_dir:
        cold_cache = ArtifactCache(spill_dir=spill_dir)
        cold_pipeline = SolvePipeline(problem, config, cache=cold_cache)
        cold_artifacts = cold_pipeline.compile()
        num_stages = len(cold_pipeline.report)

        warm_pipeline = SolvePipeline(problem, config, cache=cold_cache)
        warm_pipeline.compile()
        warm_sources = [entry["source"] for entry in warm_pipeline.report]

        spill_cache = ArtifactCache(spill_dir=spill_dir)
        spill_pipeline = SolvePipeline(problem, config, cache=spill_cache)
        spill_artifacts = spill_pipeline.compile()
        spill_sources = [entry["source"] for entry in spill_pipeline.report]
        spill_hits = spill_cache.stats()["spill_hits"]

        payload_a = _pipeline_payload(cold_pipeline, cold_artifacts)
        payload_a["serving"] = {
            "warm_sources": ["cache"] * num_stages,
            "spill_sources": ["cache"] * num_stages,
            "spill_hits": num_stages,
        }
        payload_b = _pipeline_payload(spill_pipeline, spill_artifacts)
        payload_b["serving"] = {
            "warm_sources": warm_sources,
            "spill_sources": spill_sources,
            "spill_hits": spill_hits,
        }
    return CheckOutput(
        "cold-compile",
        payload_a,
        "cache-served",
        payload_b,
        details={"stages": num_stages, "problem": problem.name},
    )


# ----------------------------------------------------------------------
# 3. Serial engine vs process-pool engine
# ----------------------------------------------------------------------
@register_check(
    "engine-serial-vs-parallel",
    "RasenganSolver with engine_workers=0 vs engine_workers=2 on the "
    "same seed (bit-identical wire records promised)",
    tolerance=0.0,
)
def check_engine_serial_vs_parallel(ctx: CheckContext) -> CheckOutput:
    """The engine promises pool fan-out is bit-identical to serial.

    Both paths solve F1 with sampling enabled (shots exercise the
    seeded RNG fan-out) and two restarts (so ``engine.map`` actually
    distributes work); the ``to_json_dict()`` wire records must be
    byte-for-byte equal.
    """
    seed = ctx.derived_seed("engine")
    _, serial = _solve_benchmark(
        "F1",
        seed=seed,
        shots=96,
        max_iterations=5,
        restarts=2,
        engine_workers=0,
    )
    _, parallel = _solve_benchmark(
        "F1",
        seed=seed,
        shots=96,
        max_iterations=5,
        restarts=2,
        engine_workers=2,
    )
    return CheckOutput(
        "serial",
        serial.to_json_dict(),
        "workers-2",
        parallel.to_json_dict(),
        details={"seed": seed, "restarts": 2, "shots": 96},
    )


# ----------------------------------------------------------------------
# 4. ResultStore in-memory vs reloaded-from-disk
# ----------------------------------------------------------------------
@register_check(
    "result-store-reload",
    "ResultStore in-memory state vs a fresh store reloaded from the "
    "JSONL persistence file",
    tolerance=0.0,
)
def check_result_store_reload(ctx: CheckContext) -> CheckOutput:
    """Persistence replay must reproduce the live store exactly.

    Path A is a store after a deterministic sequence of puts (including
    one overwrite, exercising last-record-wins); path B is a second
    store constructed over the same file.  Every record must round-trip
    bit-identically through the JSONL encoding.
    """
    from repro.service.store import ResultStore

    rng = ctx.rng("records")
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as root:
        path = os.path.join(root, "results.jsonl")
        store = ResultStore(capacity=8, path=path)
        fingerprints = [f"fp-{index:02d}" for index in range(6)]
        for index, fingerprint in enumerate(fingerprints):
            store.put(fingerprint, _synthetic_record(rng, index))
        # Overwrite one record: reload must keep the *last* version.
        store.put(fingerprints[2], _synthetic_record(rng, 99))
        snapshot_a = {fp: store.get(fp) for fp in fingerprints}
        reloaded = ResultStore(capacity=8, path=path)
        snapshot_b = {fp: reloaded.get(fp) for fp in fingerprints}
    return CheckOutput(
        "in-memory",
        snapshot_a,
        "reloaded",
        snapshot_b,
        details={"records": len(fingerprints), "overwrites": 1},
    )


def _synthetic_record(rng: np.random.Generator, index: int) -> Dict[str, Any]:
    """A result-shaped record with awkward float values."""
    return {
        "problem": f"case-{index}",
        "arg": float(rng.uniform()),
        "expectation": float(rng.normal(scale=10.0)),
        "distribution": {
            str(key): float(rng.uniform()) for key in range(3)
        },
    }


# ----------------------------------------------------------------------
# 5. RasenganResult wire-format round trip
# ----------------------------------------------------------------------
@register_check(
    "result-json-roundtrip",
    "RasenganResult.to_json_dict() vs the same record after a "
    "serialize/parse round trip",
    tolerance=0.0,
)
def check_result_json_roundtrip(ctx: CheckContext) -> CheckOutput:
    """The wire format must be lossless.

    ``to_json_dict()`` is the single record format shared by the solve
    CLI and the service; ``json.dumps`` → ``json.loads`` must be the
    identity on it (floats survive via shortest-round-trip repr).
    """
    _, result = _solve_benchmark(
        "K1", seed=ctx.derived_seed("roundtrip"), max_iterations=4
    )
    record = result.to_json_dict()
    wire = json.loads(json.dumps(record, sort_keys=True))
    return CheckOutput(
        "result",
        record,
        "round-trip",
        wire,
        details={"problem": record["problem"]},
    )


# ----------------------------------------------------------------------
# 6. Solver-level ARG vs independent brute force
# ----------------------------------------------------------------------
@register_check(
    "arg-vs-bruteforce",
    "solver-reported optimum/expectation/ARG vs an independent "
    "brute-force enumeration of the feasible space",
    tolerance=1e-9,
)
def check_arg_vs_bruteforce(ctx: CheckContext) -> CheckOutput:
    """The reported metrics must be consistent with exhaustive search.

    For each small instance, path B re-derives the optimum by direct
    enumeration (:func:`enumerate_feasible_bruteforce`), recomputes the
    expectation from the reported final distribution with compensated
    summation, and re-applies the Equation-9 ARG formula inline.
    """
    from repro.linalg.bitvec import bits_to_int, int_to_bits
    from repro.linalg.feasible import (
        BRUTEFORCE_LIMIT,
        enumerate_feasible_bruteforce,
    )

    instances = (
        _ARG_INSTANCES_FULL if ctx.thorough else _ARG_INSTANCES_QUICK
    )
    payload_a: Dict[str, Any] = {}
    payload_b: Dict[str, Any] = {}
    for benchmark_id in instances:
        problem, result = _solve_benchmark(
            benchmark_id,
            seed=ctx.derived_seed(f"arg-{benchmark_id}"),
            max_iterations=12,
        )
        if result.failed:
            raise CheckSkipped(
                f"solver failed on {benchmark_id}; no distribution to audit"
            )
        n = problem.num_variables
        if n > BRUTEFORCE_LIMIT:
            raise CheckSkipped(
                f"{benchmark_id} has {n} variables, beyond the brute-force "
                f"limit {BRUTEFORCE_LIMIT}"
            )
        solutions = enumerate_feasible_bruteforce(
            problem.constraint_matrix, problem.bound
        )
        feasible_keys = {bits_to_int(solution) for solution in solutions}
        optimum = min(problem.value(solution) for solution in solutions)
        terms = [
            (probability, problem.value(int_to_bits(key, n)))
            for key, probability in sorted(result.final_distribution.items())
            if key in feasible_keys
        ]
        mass = math.fsum(probability for probability, _ in terms)
        if mass <= 0.0:
            raise CheckSkipped(
                f"{benchmark_id} distribution carries no feasible mass"
            )
        expectation = (
            math.fsum(probability * value for probability, value in terms)
            / mass
        )
        # Equation 9 inline (floor the denominator for a zero optimum,
        # mirroring repro.metrics.arg._ZERO_OPT_FLOOR).
        denominator = abs(optimum) if optimum != 0 else 1.0
        arg = abs((optimum - expectation) / denominator)
        best_bits = result.best_sampled_solution
        payload_a[benchmark_id] = {
            "optimal": float(result.optimal_value),
            "expectation": float(result.expectation_value),
            "arg": float(result.arg),
            "best_value": float(result.best_sampled_value),
            "best_is_feasible": True,
            "best_at_least_optimal": True,
        }
        payload_b[benchmark_id] = {
            "optimal": float(optimum),
            "expectation": float(expectation),
            "arg": float(arg),
            "best_value": float(problem.value(best_bits)),
            "best_is_feasible": bool(problem.is_feasible(best_bits)),
            "best_at_least_optimal": bool(
                problem.value(best_bits) >= optimum - 1e-12
            ),
        }
    return CheckOutput(
        "solver-reported",
        payload_a,
        "brute-force",
        payload_b,
        details={"instances": list(instances)},
    )
