"""repro.verify — differential correctness harness.

A registry of seeded checks, each asserting that two redundant paths
through the codebase produce the same answer within a stated tolerance
(or bit-identically, where the repo promises determinism): dense vs
sparse simulation, cold vs cache-served compilation, serial vs
process-pool execution, in-memory vs reloaded persistence, the JSON
wire format, and solver metrics vs brute force.

Run via ``python -m repro verify {list,run,mutate}``; ``mutate``
injects a seeded perturbation through :mod:`repro.faults` to prove the
harness actually catches divergence.  See ``docs/VERIFICATION.md``.
"""

from repro.verify.harness import (
    REGISTRY,
    REPORT_VERSION,
    SUITES,
    Check,
    CheckContext,
    CheckOutput,
    CheckResult,
    CheckSkipped,
    VerifyError,
    checks_for,
    exit_code,
    fingerprint_payload,
    max_deviation,
    mutation_plan,
    perturb_payload,
    register_check,
    run_check,
    run_checks,
)

__all__ = [
    "REGISTRY",
    "REPORT_VERSION",
    "SUITES",
    "Check",
    "CheckContext",
    "CheckOutput",
    "CheckResult",
    "CheckSkipped",
    "VerifyError",
    "checks_for",
    "exit_code",
    "fingerprint_payload",
    "max_deviation",
    "mutation_plan",
    "perturb_payload",
    "register_check",
    "run_check",
    "run_checks",
]
