"""Table 1: design-space summary on a 12-qubit set covering problem.

Reproduces the two quantitative columns of Table 1 — ARG and end-to-end
training latency — for HEA, P-QAOA (with FrozenQubits + Red-QAOA),
Choco-Q, and Rasengan, on a set covering instance sized near the paper's
12-qubit example.  The expected shape: Rasengan has the lowest ARG (a
basis-state output) and the lowest latency (shallow segments), Choco-Q is
second on ARG but pays a deep-mixer latency, penalty methods trail badly
on ARG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.runner import ALGORITHMS, AlgorithmRun, run_algorithm
from repro.metrics.latency import algorithm_latency
from repro.problems import SetCoverProblem


@dataclass
class Table1Row:
    algorithm: str
    arg: float
    latency_seconds: float  # per optimizer iteration, like the paper's ms
    output_is_basis_state: bool


def table1_problem(seed: int = 3) -> SetCoverProblem:
    """The summary-comparison workload: a ~12-qubit set covering instance.

    Seed 3 yields 13 qubits with 150 feasible solutions — the closest
    match in our generator to the paper's 12-qubit / 72-feasible example.
    """
    return SetCoverProblem.random(6, 4, seed=seed, name="table1-scp")


def run_table1(
    *,
    max_iterations: int = 200,
    seed: int = 3,
    algorithms: Optional[List[str]] = None,
) -> List[Table1Row]:
    """Run the four algorithms and assemble Table 1 rows."""
    problem = table1_problem(seed)
    rows: List[Table1Row] = []
    for name in algorithms or ALGORITHMS:
        run = run_algorithm(
            name,
            problem,
            max_iterations=max_iterations,
            seed=seed,
            segment_cx_budget=210,
        )
        latency = algorithm_latency(
            name,
            iterations=run.iterations,
            shots=1024,
            depth_1q=run.executed_depth,
            depth_2q=run.executed_depth_2q,
            num_parameters=run.num_parameters,
            segments=run.num_segments,
            distinct_states=len(run.final_distribution),
        )
        # Rasengan can concentrate all probability on one basis state;
        # superposition methods cannot.
        top = max(run.final_distribution.values(), default=0.0)
        rows.append(
            Table1Row(
                algorithm=name,
                arg=run.arg,
                latency_seconds=latency.total / max(run.iterations, 1),
                output_is_basis_state=top > 0.99,
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    lines = [f"{'method':<10} {'ARG':>10} {'latency/iter(s)':>16} {'basis-state?':>13}"]
    for row in rows:
        lines.append(
            f"{row.algorithm:<10} {row.arg:>10.3f} {row.latency_seconds:>16.3f} "
            f"{str(row.output_is_basis_state):>13}"
        )
    return "\n".join(lines)
