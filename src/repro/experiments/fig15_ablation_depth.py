"""Figure 15: ablation of the optimization strategies on circuit depth.

Cumulative application of the three techniques, measured as the two-qubit
cost (linear ``34 k`` model) of the longest circuit that must be executed
in one shot:

* baseline — raw basis, full ``m^2`` chain, unsegmented;
* + opt 1  — Hamiltonian simplification (Algorithm 1);
* + opt 2  — pruning and early stop;
* + opt 3  — segmented execution (depth = deepest single segment).

The paper's averages: 9.8%, 67% and 82% cumulative reductions, with opt 1
ineffective on constraint systems that are already sparsest (F1/K1/G1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.prune import build_schedule, prune_schedule
from repro.core.simplify import simplify_basis
from repro.linalg.moves import augment_moves_for_connectivity
from repro.problems import make_benchmark


@dataclass
class AblationDepthRow:
    benchmark_id: str
    baseline: int
    with_simplify: int
    with_prune: int
    with_segment: int

    def reduction(self, stage: str) -> float:
        value = getattr(self, stage)
        return 1.0 - value / self.baseline if self.baseline else 0.0


def _chain_cost(basis: np.ndarray, schedule: Sequence[int]) -> int:
    return sum(34 * int(np.count_nonzero(basis[index])) for index in schedule)


def _segment_cost(basis: np.ndarray, schedule: Sequence[int]) -> int:
    if not schedule:
        return 0
    return max(34 * int(np.count_nonzero(basis[index])) for index in schedule)


def run_fig15(
    *,
    benchmark_ids: Sequence[str] = ("F1", "F2", "K1", "K2", "J1", "S1", "G1", "G3"),
) -> List[AblationDepthRow]:
    """Cumulative depth ablation across benchmarks."""
    rows: List[AblationDepthRow] = []
    for benchmark_id in benchmark_ids:
        problem = make_benchmark(benchmark_id, 0)
        initial = problem.initial_feasible_solution()
        raw = problem.homogeneous_basis
        baseline = _chain_cost(raw, build_schedule(raw.shape[0]))

        # Opt 1 is measured on Algorithm 1's own terms (pre-augmentation):
        # it can only keep per-vector nonzeros the same or lower.
        simplified = simplify_basis(raw, iterate=True)
        with_simplify = _chain_cost(simplified, build_schedule(simplified.shape[0]))

        # Opts 2 and 3 operate on the move set that actually executes
        # (connectivity-augmented where Theorem 1's assumption fails).
        moves = augment_moves_for_connectivity(simplified, initial)
        pruned = prune_schedule(moves, initial)
        with_prune = _chain_cost(moves, pruned.schedule)

        with_segment = _segment_cost(moves, pruned.schedule)
        rows.append(
            AblationDepthRow(
                benchmark_id=benchmark_id,
                baseline=baseline,
                with_simplify=with_simplify,
                with_prune=with_prune,
                with_segment=with_segment,
            )
        )
    return rows


def mean_reductions(rows: List[AblationDepthRow]) -> Dict[str, float]:
    """Average cumulative reduction of each stage."""
    return {
        stage: float(np.mean([row.reduction(stage) for row in rows]))
        for stage in ("with_simplify", "with_prune", "with_segment")
    }


def format_fig15(rows: List[AblationDepthRow]) -> str:
    lines = [
        f"{'bench':<6} {'baseline':>9} {'+opt1':>8} {'+opt2':>8} {'+opt3':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark_id:<6} {row.baseline:>9} {row.with_simplify:>8} "
            f"{row.with_prune:>8} {row.with_segment:>8}"
        )
    means = mean_reductions(rows)
    lines.append(
        "mean reductions: "
        + ", ".join(f"{k.split('_')[1]}={v:.1%}" for k, v in means.items())
    )
    return "\n".join(lines)
