"""Figure 9: ARG versus QAOA layer count on the F1 benchmark.

The paper's finding: Choco-Q needs ~14 layers (circuit depth ~1419) to
approach Rasengan's quality, P-QAOA barely improves with depth, and
Rasengan's quality is layer-free (its chain length is fixed by the pruned
schedule, executed as shallow segments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.baselines import ChocoQ, PenaltyQAOA
from repro.circuits.depth import circuit_depth
from repro.experiments.runner import run_algorithm
from repro.problems import make_benchmark


@dataclass
class LayerSweepPoint:
    layers: int
    arg: float
    depth: int


@dataclass
class Fig9Result:
    pqaoa: List[LayerSweepPoint]
    chocoq: List[LayerSweepPoint]
    rasengan_arg: float
    rasengan_segment_depth: int
    rasengan_segments: int


def run_fig9(
    *,
    layer_counts: Sequence[int] = (1, 2, 4, 6, 8, 10, 12, 14),
    max_iterations: int = 150,
    seed: int = 0,
) -> Fig9Result:
    """Sweep layers for the QAOA variants against fixed-depth Rasengan."""
    problem = make_benchmark("F1", 0)
    pqaoa_points: List[LayerSweepPoint] = []
    chocoq_points: List[LayerSweepPoint] = []
    for layers in layer_counts:
        pqaoa = PenaltyQAOA(
            problem, layers=layers, shots=None, max_iterations=max_iterations,
            seed=seed,
        )
        result = pqaoa.solve()
        depth = circuit_depth(
            pqaoa.build_circuit(result.best_parameters), decompose=True
        )
        pqaoa_points.append(LayerSweepPoint(layers, result.arg, depth))

        chocoq = ChocoQ(
            problem, layers=layers, shots=None, max_iterations=max_iterations
        )
        result = chocoq.solve()
        depth = circuit_depth(
            chocoq.build_circuit(result.best_parameters), decompose=True
        )
        chocoq_points.append(LayerSweepPoint(layers, result.arg, depth))

    rasengan = run_algorithm(
        "rasengan", problem, max_iterations=max_iterations, seed=seed
    )
    return Fig9Result(
        pqaoa=pqaoa_points,
        chocoq=chocoq_points,
        rasengan_arg=rasengan.arg,
        rasengan_segment_depth=rasengan.executed_depth,
        rasengan_segments=rasengan.num_segments,
    )


def format_fig9(result: Fig9Result) -> str:
    lines = [f"{'layers':>6} {'P-QAOA ARG':>12} {'Choco-Q ARG':>12} {'Choco-Q depth':>14}"]
    for p, c in zip(result.pqaoa, result.chocoq):
        lines.append(f"{p.layers:>6} {p.arg:>12.3f} {c.arg:>12.3f} {c.depth:>14}")
    lines.append(
        f"Rasengan: ARG={result.rasengan_arg:.3f} with "
        f"{result.rasengan_segments} segments of depth "
        f"{result.rasengan_segment_depth} (layer-free)"
    )
    return "\n".join(lines)
