"""Experiment harness: one module per table/figure of the evaluation.

Each module exposes a ``run_*`` function returning structured results and a
``format_*`` helper rendering the same rows/series the paper reports.  The
``benchmarks/`` directory drives these functions under pytest-benchmark;
``examples/`` reuses some of them for narrative walkthroughs.

| Paper artifact | Module |
|---|---|
| Table 1  | :mod:`repro.experiments.table1` |
| Table 2  | :mod:`repro.experiments.table2` |
| Figure 9 | :mod:`repro.experiments.fig09_layers` |
| Figure 10| :mod:`repro.experiments.fig10_scalability` |
| Figure 11| :mod:`repro.experiments.fig11_hardware` |
| Figure 12| :mod:`repro.experiments.fig12_latency` |
| Figure 13| :mod:`repro.experiments.fig13_segments` |
| Figure 14| :mod:`repro.experiments.fig14_noise` |
| Figure 15| :mod:`repro.experiments.fig15_ablation_depth` |
| Figure 16| :mod:`repro.experiments.fig16_ablation_quality` |
| Figure 17| :mod:`repro.experiments.fig17_pruning` |
"""

from repro.experiments.runner import AlgorithmRun, run_algorithm

__all__ = ["AlgorithmRun", "run_algorithm"]
