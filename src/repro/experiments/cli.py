"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro table1
    python -m repro fig15 fig17
    python -m repro --list
    python -m repro all --quick
    python -m repro fig13 --quick --trace
    python -m repro fig13 --quick --trace-out trace.jsonl
    python -m repro table2 --engine-workers 4
    python -m repro solve F1 --seed 7 --shots 256 --restarts 2
    python -m repro solve F1 --timeout 30
    python -m repro solve F1 --spill-dir .artifacts
    python -m repro inspect F1
    python -m repro inspect F1 --config '{"max_segment_cx": 150}'
    python -m repro serve --port 8042 --service-workers 4
    python -m repro serve --store results.jsonl --journal journal.jsonl
    python -m repro serve --chaos-seed 7
    python -m repro bench list
    python -m repro bench run --suite quick --repeats 3 --json
    python -m repro bench compare BENCH_a.json BENCH_b.json
    python -m repro bench gate --against benchmarks/baselines/BENCH_quick.json
    python -m repro verify list
    python -m repro verify run --suite quick --seed 7
    python -m repro verify mutate --seed 7
    python -m repro --version

Each experiment prints the same rows/series the paper reports.  The
``--quick`` flag shrinks iteration budgets for smoke runs; benchmark-grade
budgets are the defaults (and ``pytest benchmarks/ --benchmark-only``
additionally asserts the paper's qualitative shapes).

``--trace`` enables the telemetry layer for the whole invocation and
prints the span tree plus counter summary afterwards; ``--trace-out PATH``
additionally writes the trace (implies ``--trace``) in the format chosen
by ``--trace-format``: ``jsonl`` (default, round-trips through
``telemetry.read_jsonl``) or ``chrome`` (Chrome trace-event JSON,
loadable in Perfetto / ``chrome://tracing``).  The ``solve`` subcommand
takes the same three flags and keeps stdout pure JSON by routing trace
chatter to stderr.  See ``docs/OBSERVABILITY.md``.

``--engine-workers`` and ``--backend`` set the process-wide execution
engine defaults (see ``docs/ARCHITECTURE.md``): every solver built during
the invocation fans restarts/trajectories out over N worker processes
(bit-identical to a serial run) and/or routes execution through the named
backend.

``solve`` is a single-solver subcommand that runs Rasengan on one
benchmark and prints a deterministic JSON record; CI diffs its output
across ``--engine-workers`` settings.  ``--timeout`` enforces a
wall-clock limit through the service's job-deadline machinery (exit
code 3 on expiry).

``inspect`` compiles one benchmark through the staged pipeline without
executing anything and prints deterministic JSON: per-stage fingerprints,
artifact sizes, sources, and the ``pipeline.cache.*`` statistics (see
``docs/ARCHITECTURE.md``).  ``--spill-dir`` (on ``solve``, ``serve`` and
``inspect``) persists pipeline artifacts as content-addressed ``.npz``
files so later invocations skip the pre-execution stages.

``bench`` hosts the deterministic performance-benchmark suites and the
statistical regression gate (``list`` / ``run`` / ``compare`` / ``gate``
— see ``docs/BENCHMARKS.md``); ``gate`` exits 4 on statistically
significant regressions against a committed baseline.

``verify`` hosts the differential correctness harness: seeded checks
asserting that redundant paths agree (dense vs sparse simulation, cold
vs cached compile, serial vs parallel execution, persistence reload,
wire-format round trip, solver metrics vs brute force — see
``docs/VERIFICATION.md``).  ``verify run`` exits 1 on any mismatch;
``verify mutate`` injects a seeded perturbation through
:mod:`repro.faults` and must *fail* on a healthy tree, proving the
checks are live.

``serve`` starts the long-running solve service (job queue, dedup,
worker pool, JSON/HTTP API — see ``docs/SERVICE.md``) and blocks until
interrupted; shutdown drains in-flight jobs.  ``--store`` persists
results across restarts, ``--journal`` records job lifecycle events so a
restart reports what a crash interrupted, and ``--chaos-seed`` /
``--chaos-plan`` run the service under deterministic fault injection
(see the "Failure semantics & chaos testing" section of
``docs/SERVICE.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Tuple

from repro import __version__, telemetry
from repro.engine import configure_defaults

_VERSION_TEXT = f"repro {__version__}"


def _table1(quick: bool) -> str:
    from repro.experiments.table1 import format_table1, run_table1

    return format_table1(run_table1(max_iterations=40 if quick else 120))


def _table2(quick: bool) -> str:
    from repro.experiments.table2 import format_table2, run_table2

    ids = ("F1", "K1", "J1", "S1", "G1") if quick else None
    return format_table2(
        run_table2(benchmark_ids=ids, cases=1, max_iterations=60 if quick else 150)
    )


def _fig9(quick: bool) -> str:
    from repro.experiments.fig09_layers import format_fig9, run_fig9

    layers = (1, 4, 8) if quick else (1, 2, 4, 6, 8, 10, 12, 14)
    return format_fig9(run_fig9(layer_counts=layers,
                                max_iterations=60 if quick else 150))


def _fig10(quick: bool) -> str:
    from repro.experiments.fig10_scalability import format_fig10, run_fig10

    sizes = ((2, 1), (2, 2), (2, 3)) if quick else (
        (2, 1), (2, 2), (2, 3), (3, 3), (3, 4), (4, 4)
    )
    return format_fig10(run_fig10(sizes=sizes, max_iterations=60 if quick else 120))


def _fig11(quick: bool) -> str:
    from repro.experiments.fig11_hardware import format_fig11, run_fig11

    return format_fig11(
        run_fig11(
            max_iterations=10 if quick else 25,
            shots=256 if quick else 512,
            max_trajectories=8 if quick else 24,
        )
    )


def _fig12(quick: bool) -> str:
    from repro.experiments.fig12_latency import format_fig12, run_fig12

    return format_fig12(run_fig12(max_iterations=40 if quick else 100))


def _fig13(quick: bool) -> str:
    from repro.experiments.fig13_segments import format_fig13, run_fig13

    return format_fig13(run_fig13(max_iterations=40 if quick else 100))


def _fig14(quick: bool) -> str:
    from repro.experiments.fig14_noise import format_fig14, run_fig14a, run_fig14b

    panel_a = run_fig14a(
        benchmark_ids=("F1",) if quick else ("F1", "K1"),
        max_iterations=8 if quick else 20,
        shots=256,
        max_trajectories=8,
    )
    panel_b = run_fig14b(
        max_iterations=8 if quick else 15,
        shots=256,
        max_trajectories=8,
    )
    return (
        format_fig14(panel_a, "error rate")
        + "\n\n"
        + format_fig14(panel_b, "damping")
    )


def _fig15(quick: bool) -> str:
    from repro.experiments.fig15_ablation_depth import format_fig15, run_fig15

    return format_fig15(run_fig15())


def _fig16(quick: bool) -> str:
    from repro.experiments.fig16_ablation_quality import format_fig16, run_fig16

    return format_fig16(
        run_fig16(
            max_iterations_exact=40 if quick else 120,
            max_iterations_noisy=8 if quick else 20,
            shots=256 if quick else 512,
            max_trajectories=8 if quick else 16,
        )
    )


def _fig17(quick: bool) -> str:
    from repro.experiments.fig17_pruning import format_fig17, run_fig17

    domains = ("flp", "kpp") if quick else ("flp", "kpp", "scp", "gcp")
    return format_fig17(run_fig17(domains=domains))


EXPERIMENTS: Dict[str, Tuple[str, Callable[[bool], str]]] = {
    "table1": ("Table 1: ARG + latency summary", _table1),
    "table2": ("Table 2: 20 benchmarks x 4 algorithms", _table2),
    "fig9": ("Figure 9: ARG vs QAOA layers", _fig9),
    "fig10": ("Figure 10: FLP scalability", _fig10),
    "fig11": ("Figure 11: fake-hardware ARG + in-constraints", _fig11),
    "fig12": ("Figure 12: latency breakdown", _fig12),
    "fig13": ("Figure 13: shots/latency vs segments", _fig13),
    "fig14": ("Figure 14: noise sensitivity", _fig14),
    "fig15": ("Figure 15: depth ablation", _fig15),
    "fig16": ("Figure 16: quality ablation", _fig16),
    "fig17": ("Figure 17: pruning expansion speed", _fig17),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--version", action="version", version=_VERSION_TEXT)
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (e.g. table1 fig15), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--quick", action="store_true", help="shrink budgets for a smoke run"
    )
    _add_trace_arguments(parser)
    _add_engine_arguments(parser)
    return parser


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable telemetry; print the span tree + counter summary",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the telemetry trace to PATH (implies --trace)",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="--trace-out format: jsonl (round-trip) or chrome "
        "(trace-event JSON for Perfetto / chrome://tracing)",
    )


def _write_trace(collector, args, stream) -> None:
    """Write ``collector`` to ``args.trace_out`` in the chosen format."""
    if args.trace_format == "chrome":
        telemetry.write_chrome_trace(collector, args.trace_out)
    else:
        telemetry.write_jsonl(collector, args.trace_out)
    print(
        f"\ntrace ({args.trace_format}) written to {args.trace_out}",
        file=stream,
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine-workers",
        type=int,
        default=None,
        metavar="N",
        help="fan independent work (restarts, noise trajectories) out over "
        "N worker processes; results are bit-identical to a serial run",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend name (e.g. ideal, fake_kyiv, sparse_noisy); "
        "default is the exact simulation fast path",
    )


def build_solve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro solve",
        description="Run the Rasengan solver on one benchmark and print a "
        "deterministic JSON record.",
    )
    parser.add_argument("benchmark", help="benchmark id (e.g. F1, K2, S1)")
    parser.add_argument("--case", type=int, default=0, help="benchmark case")
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--shots", type=int, default=None, help="shots per segment (default: exact)"
    )
    parser.add_argument(
        "--iterations", type=int, default=50, help="COBYLA iteration budget"
    )
    parser.add_argument(
        "--restarts", type=int, default=1, help="independent optimizer starts"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit enforced through the service job-deadline "
        "machinery; exit code 3 on expiry",
    )
    _add_spill_argument(parser)
    _add_trace_arguments(parser)
    _add_engine_arguments(parser)
    return parser


def _add_spill_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="persist pipeline artifacts as content-addressed .npz files "
        "in DIR; later invocations reuse them and skip the "
        "pre-execution stages",
    )


def _solve_main(argv: List[str]) -> int:
    from repro.core.solver import RasenganConfig, RasenganSolver
    from repro.problems.registry import make_benchmark
    from repro.service.jobs import JobTimeoutError, run_with_deadline

    args = build_solve_parser().parse_args(argv)
    if args.spill_dir is not None:
        from repro.pipeline import configure_cache

        configure_cache(spill_dir=args.spill_dir)
    config = RasenganConfig(
        shots=args.shots,
        max_iterations=args.iterations,
        restarts=args.restarts,
        seed=args.seed,
        engine_workers=args.engine_workers,
    )
    problem = make_benchmark(args.benchmark, case=args.case)
    solver = RasenganSolver(problem, backend=args.backend, config=config)
    trace = args.trace or args.trace_out is not None
    collector = telemetry.enable() if trace else None
    try:
        result = run_with_deadline(
            solver.solve, args.timeout, label=f"solve {args.benchmark}"
        )
    except JobTimeoutError as exc:
        print(json.dumps({"error": str(exc)}), file=sys.stderr)
        return 3
    finally:
        solver.engine.close()
        if collector is not None:
            telemetry.disable()
            # stderr keeps stdout pure JSON for CI diffing.
            print(telemetry.render_summary(collector), file=sys.stderr)
            if args.trace_out is not None:
                _write_trace(collector, args, sys.stderr)
    print(json.dumps(result.to_json_dict(), sort_keys=True))
    return 0


def build_inspect_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro inspect",
        description="Compile one benchmark through the staged pipeline "
        "(without executing) and print per-stage fingerprints, artifact "
        "sizes, and cache statistics as deterministic JSON.",
    )
    parser.add_argument("benchmark", help="benchmark id (e.g. F1, K2, S1)")
    parser.add_argument("--case", type=int, default=0, help="benchmark case")
    parser.add_argument(
        "--config",
        default=None,
        metavar="JSON",
        help="solver config overrides as a JSON object "
        '(e.g. \'{"max_segment_cx": 150}\')',
    )
    _add_spill_argument(parser)
    return parser


def _inspect_main(argv: List[str]) -> int:
    from repro.pipeline import ArtifactCache, SolvePipeline
    from repro.problems.registry import make_benchmark
    from repro.service.jobs import ServiceError, solver_config_from_dict

    args = build_inspect_parser().parse_args(argv)
    try:
        overrides = json.loads(args.config) if args.config else {}
        if not isinstance(overrides, dict):
            raise ServiceError("--config must be a JSON object")
        config = solver_config_from_dict(overrides)
    except (json.JSONDecodeError, ServiceError) as exc:
        print(json.dumps({"error": str(exc)}), file=sys.stderr)
        return 2
    problem = make_benchmark(args.benchmark, case=args.case)
    cache = ArtifactCache(spill_dir=args.spill_dir)
    pipeline = SolvePipeline(problem, config, cache=cache)
    artifacts = pipeline.compile()
    record = {
        "problem": problem.name,
        "fingerprint": pipeline.problem_fingerprint,
        "stages": [
            {
                "name": entry["stage"],
                "fingerprint": entry["fingerprint"],
                "source": entry["source"],
                "size_bytes": artifacts[entry["stage"]].nbytes(),
            }
            for entry in pipeline.report
        ],
        "cache": cache.stats(),
    }
    print(json.dumps(record, sort_keys=True, indent=2))
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the long-running solve service with a JSON/HTTP "
        "API (see docs/SERVICE.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8042, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker threads draining the job queue",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="JSONL result-store persistence file (replayed on startup)",
    )
    parser.add_argument(
        "--store-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="in-memory result store LRU capacity",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="JSONL job-event journal; on restart the service reports "
        "jobs a previous process left unfinished",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="enable deterministic fault injection seeded with N "
        "(default rules: repro.faults.FaultPlan.smoke)",
    )
    parser.add_argument(
        "--chaos-plan",
        action="append",
        default=None,
        metavar="RULE",
        help="replace the smoke rules with point:action[:k=v,...] specs "
        "(repeatable; e.g. engine.execute:raise:p=0.2 or "
        "store.append:truncate:every=5); implies --chaos-seed 0 when "
        "no seed is given",
    )
    parser.add_argument(
        "--slow-job-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="log a warning and count service.jobs.slow for jobs whose "
        "execution takes at least SECONDS",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    _add_spill_argument(parser)
    _add_engine_arguments(parser)
    return parser


def _serve_main(argv: List[str]) -> int:
    from repro import faults
    from repro.service.http import ServiceServer
    from repro.service.journal import JobJournal
    from repro.service.store import ResultStore
    from repro.service.workers import SolverService

    args = build_serve_parser().parse_args(argv)
    engine_overrides = {}
    if args.engine_workers is not None:
        engine_overrides["workers"] = args.engine_workers
    if args.backend is not None:
        engine_overrides["backend"] = args.backend
    if engine_overrides:
        configure_defaults(**engine_overrides)
    # The service's /metrics endpoint renders the active collector, so
    # serving always runs under telemetry.
    telemetry.enable()
    injector = None
    if args.chaos_seed is not None or args.chaos_plan:
        seed = args.chaos_seed if args.chaos_seed is not None else 0
        if args.chaos_plan:
            plan = faults.FaultPlan.parse(args.chaos_plan, seed=seed)
        else:
            plan = faults.FaultPlan.smoke(seed=seed)
        injector = faults.install(plan)
        rules = ", ".join(
            f"{rule.point}:{rule.action}" for rule in plan.rules
        )
        print(f"chaos mode: seed={seed} rules=[{rules}]", flush=True)
    store = ResultStore(capacity=args.store_capacity, path=args.store)
    journal = JobJournal(args.journal) if args.journal else None
    service = SolverService(
        workers=args.service_workers,
        store=store,
        journal=journal,
        slow_job_seconds=args.slow_job_seconds,
        artifact_spill_dir=args.spill_dir,
    ).start()
    interrupted = service.interrupted_jobs()
    if interrupted:
        print(
            f"previous run left {len(interrupted)} job(s) unfinished: "
            + ", ".join(interrupted),
            flush=True,
        )
    server = ServiceServer(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.address
    print(f"repro service {__version__} listening on http://{host}:{port}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining in-flight jobs ...", flush=True)
    finally:
        server.stop()
        service.close(drain=True)
        if injector is not None:
            faults.uninstall()
            print(f"chaos mode injected {len(injector.log)} fault(s)",
                  flush=True)
        telemetry.disable()
    print("service stopped", flush=True)
    return 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "solve":
        return _solve_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "inspect":
        return _inspect_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "verify":
        from repro.verify.cli import main as verify_main

        return verify_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:<8} {description}")
        return 0
    requested = args.experiments
    if requested == ["all"]:
        requested = list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    trace = args.trace or args.trace_out is not None
    collector = telemetry.enable() if trace else None
    engine_overrides = {}
    if args.engine_workers is not None:
        engine_overrides["workers"] = args.engine_workers
    if args.backend is not None:
        engine_overrides["backend"] = args.backend
    previous_defaults = (
        configure_defaults(**engine_overrides) if engine_overrides else None
    )
    try:
        for name in requested:
            description, runner = EXPERIMENTS[name]
            print(f"=== {name}: {description} ===")
            print(runner(args.quick))
            print()
    finally:
        if previous_defaults is not None:
            configure_defaults(
                workers=previous_defaults.workers,
                backend=previous_defaults.backend,
            )
        if collector is not None:
            telemetry.disable()
    if collector is not None:
        print("=== trace ===")
        print(telemetry.render_tree(collector, max_children=6))
        print()
        print(telemetry.render_summary(collector))
        if args.trace_out is not None:
            _write_trace(collector, args, sys.stdout)
    return 0
