"""Figure 14: noise sensitivity of Rasengan.

(a) ARG distribution under Pauli (depolarizing) noise at device-calibrated
    error rates (the paper sweeps the 1e-4..1e-3 band and reports ARG
    staying below ~0.15 at 1e-3);
(b) ARG under growing amplitude damping on top of a fixed background
    (single-qubit 0.035%, two-qubit 0.875% depolarizing + phase damping).
    Past ~2% damping, segments stop producing feasible intermediate
    states and optimization terminates early — the failure mode
    :class:`~repro.exceptions.NoFeasibleStateError` models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.solver import RasenganConfig, RasenganSolver
from repro.problems import make_benchmark
from repro.simulators.backends import NoisyTrajectoryBackend
from repro.simulators.noise import NoiseModel

#: Background rates for panel (b), from the paper's calibration numbers.
BACKGROUND_1Q = 0.00035
BACKGROUND_2Q = 0.00875


@dataclass
class NoisePoint:
    noise_parameter: float
    args: List[float]
    failures: int

    @property
    def mean_arg(self) -> Optional[float]:
        return float(np.mean(self.args)) if self.args else None


def _run_noisy(
    benchmark_ids: Sequence[str],
    model: NoiseModel,
    *,
    max_iterations: int,
    shots: int,
    max_trajectories: int,
    seed: int,
) -> tuple[List[float], int]:
    args: List[float] = []
    failures = 0
    for benchmark_id in benchmark_ids:
        problem = make_benchmark(benchmark_id, 0)
        backend = NoisyTrajectoryBackend(
            model, seed=seed, max_trajectories=max_trajectories
        )
        config = RasenganConfig(shots=shots, max_iterations=max_iterations, seed=seed)
        result = RasenganSolver(problem, backend=backend, config=config).solve()
        if result.failed:
            failures += 1
        else:
            args.append(result.arg)
    return args, failures


def run_fig14a(
    *,
    error_rates: Sequence[float] = (1e-4, 5e-4, 1e-3),
    benchmark_ids: Sequence[str] = ("F1", "K1", "J1"),
    max_iterations: int = 25,
    shots: int = 512,
    max_trajectories: int = 16,
    seed: int = 0,
) -> List[NoisePoint]:
    """Panel (a): depolarizing-rate sweep."""
    points: List[NoisePoint] = []
    for rate in error_rates:
        model = NoiseModel.from_error_rates(
            single_qubit_error=rate, two_qubit_error=10 * rate
        )
        args, failures = _run_noisy(
            benchmark_ids,
            model,
            max_iterations=max_iterations,
            shots=shots,
            max_trajectories=max_trajectories,
            seed=seed,
        )
        points.append(NoisePoint(rate, args, failures))
    return points


def run_fig14b(
    *,
    damping_probabilities: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.04),
    benchmark_ids: Sequence[str] = ("F1",),
    max_iterations: int = 25,
    shots: int = 512,
    max_trajectories: int = 16,
    seed: int = 0,
) -> List[NoisePoint]:
    """Panel (b): amplitude-damping sweep over fixed background noise."""
    points: List[NoisePoint] = []
    for gamma in damping_probabilities:
        model = NoiseModel.from_error_rates(
            single_qubit_error=BACKGROUND_1Q,
            two_qubit_error=BACKGROUND_2Q,
            amplitude_damping_prob=gamma,
            phase_damping_prob=0.001,
        )
        args, failures = _run_noisy(
            benchmark_ids,
            model,
            max_iterations=max_iterations,
            shots=shots,
            max_trajectories=max_trajectories,
            seed=seed,
        )
        points.append(NoisePoint(gamma, args, failures))
    return points


def format_fig14(points: List[NoisePoint], label: str) -> str:
    lines = [f"{label:<12} {'mean ARG':>10} {'#failed':>8}"]
    for p in points:
        mean = f"{p.mean_arg:.3f}" if p.mean_arg is not None else "—"
        lines.append(f"{p.noise_parameter:<12.4f} {mean:>10} {p.failures:>8}")
    return "\n".join(lines)
