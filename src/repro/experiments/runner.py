"""Unified per-algorithm runner used by every experiment.

Normalises the four algorithms behind one record type carrying the metrics
the paper tabulates: ARG, in-constraints rate, circuit depth (the depth of
what is actually *executed* — one segment for Rasengan, the full ansatz for
the baselines), parameter count, and the structural quantities the latency
model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.baselines import ChocoQ, HardwareEfficientAnsatz, PenaltyQAOA
from repro.circuits.decompose import decompose_circuit
from repro.circuits.depth import circuit_depth, two_qubit_depth
from repro.core.solver import RasenganConfig, RasenganSolver
from repro.engine.registry import BackendSpec
from repro.problems.base import ConstrainedBinaryProblem
from repro import telemetry

#: Algorithm names in the order the paper's tables list them.
ALGORITHMS = ("hea", "pqaoa", "chocoq", "rasengan")


@dataclass
class AlgorithmRun:
    """One algorithm's metrics on one problem instance."""

    algorithm: str
    problem_name: str
    arg: float
    in_constraints_rate: float
    expectation_value: float
    optimal_value: float
    num_parameters: int
    executed_depth: int
    executed_depth_2q: int
    num_segments: int
    iterations: int
    final_distribution: Dict[int, float]
    #: Counter/histogram totals for this run when telemetry was enabled
    #: (see :func:`runner_telemetry_summary`); empty otherwise.
    telemetry: Dict[str, object] = field(default_factory=dict)


def runner_telemetry_summary(
    baseline_counters: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """Counter totals (and histogram aggregates) for an ``AlgorithmRun``.

    Args:
        baseline_counters: a ``snapshot_counters()`` taken before the run;
            when given, the returned counters are deltas over the run
            instead of collector lifetime totals.

    Returns an empty dict when telemetry is disabled, so callers can
    attach the result unconditionally.
    """
    collector = telemetry.active()
    if collector is None:
        return {}
    counters = collector.snapshot_counters()
    if baseline_counters:
        counters = {
            name: value - baseline_counters.get(name, 0.0)
            for name, value in counters.items()
            if value != baseline_counters.get(name, 0.0)
        }
    return {
        "counters": counters,
        "histograms": {
            name: histogram.to_dict()
            for name, histogram in collector.histograms.items()
        },
    }


def _baseline_depths(algo, parameters) -> tuple[int, int]:
    # The engine's compiled cache rebinds the already-synthesized ansatz,
    # and both depth metrics share one {1q, CX} decomposition.
    circuit = algo.bound_circuit(parameters)
    flat = decompose_circuit(circuit)
    return (
        circuit_depth(flat, decompose=False),
        two_qubit_depth(flat, decompose=False),
    )


def run_algorithm(
    name: str,
    problem: ConstrainedBinaryProblem,
    *,
    layers: int = 5,
    shots: Optional[int] = None,
    max_iterations: int = 300,
    seed: Optional[int] = 0,
    backend: BackendSpec = None,
    engine_workers: Optional[int] = None,
    transitions_per_segment: int = 1,
    segment_cx_budget: Optional[int] = 140,
    frozen_qubits: int = 1,
    restarts: int = 3,
) -> AlgorithmRun:
    """Train one algorithm on one instance and collect Table-2 metrics.

    Args:
        name: ``"hea"``, ``"pqaoa"``, ``"chocoq"`` or ``"rasengan"``.
        problem: the instance.
        layers: ansatz depth for the baselines.
        shots: per-execution shots (``None`` = exact distribution).
        max_iterations: COBYLA budget.
        seed: RNG seed.
        backend: gate-level backend name or instance (noisy evaluation);
            resolved through the engine's backend registry.
        engine_workers: process-pool width for the execution engine
            (``None`` = the process-wide default).
        transitions_per_segment: Rasengan segmentation granularity (used
            when an explicit non-default value is given).
        segment_cx_budget: Rasengan per-segment CX budget (the paper's
            deployment policy); ignored when ``transitions_per_segment``
            is overridden away from 1.
        frozen_qubits: FrozenQubits hotspot count for P-QAOA.
        restarts: Rasengan multi-start count (compensates for the smaller
            iteration budgets used offline vs the paper's 300).
    """
    name = name.lower()
    collector = telemetry.active()
    snapshot = collector.snapshot_counters() if collector is not None else None
    if name == "rasengan":
        config = RasenganConfig(
            shots=shots,
            max_iterations=max_iterations,
            transitions_per_segment=transitions_per_segment,
            max_segment_cx=(
                segment_cx_budget if transitions_per_segment == 1 else None
            ),
            restarts=restarts,
            seed=seed,
            engine_workers=engine_workers,
        )
        solver = RasenganSolver(problem, backend=backend, config=config)
        result = solver.solve()
        # Depth of the deepest executed segment, decomposed — read straight
        # off the pipeline's circuit artifact (depth is independent of the
        # trained times, so the compile-time accounting is the executed one).
        depth = solver.circuit_artifact.max_depth
        depth_2q = solver.circuit_artifact.max_depth_2q
        return AlgorithmRun(
            algorithm=name,
            problem_name=problem.name,
            arg=result.arg,
            in_constraints_rate=result.in_constraints_rate,
            expectation_value=result.expectation_value,
            optimal_value=result.optimal_value,
            num_parameters=result.num_parameters,
            executed_depth=depth,
            executed_depth_2q=depth_2q,
            num_segments=result.num_segments,
            iterations=result.iterations,
            final_distribution=result.final_distribution,
            telemetry=runner_telemetry_summary(snapshot),
        )

    classes = {
        "hea": HardwareEfficientAnsatz,
        "pqaoa": PenaltyQAOA,
        "chocoq": ChocoQ,
    }
    if name not in classes:
        raise ValueError(f"unknown algorithm {name!r}")
    kwargs = dict(
        shots=shots,
        max_iterations=max_iterations,
        backend=backend,
        seed=seed,
        engine_workers=engine_workers,
    )
    if name == "pqaoa":
        kwargs["frozen_qubits"] = frozen_qubits
    algo = classes[name](problem, layers=layers, **kwargs)
    result = algo.solve()
    depth, depth_2q = _baseline_depths(algo, result.best_parameters)
    return AlgorithmRun(
        algorithm=name,
        problem_name=problem.name,
        arg=result.arg,
        in_constraints_rate=result.in_constraints_rate,
        expectation_value=result.expectation_value,
        optimal_value=problem.optimal_value,
        num_parameters=result.num_parameters,
        executed_depth=depth,
        executed_depth_2q=depth_2q,
        num_segments=1,
        iterations=result.iterations,
        final_distribution=result.final_distribution,
        telemetry=runner_telemetry_summary(snapshot),
    )
