"""Figure 11: evaluation on (fake) real-world quantum platforms.

Runs the small-scale benchmarks F1 / K1 / J1 on trajectory backends
calibrated to the paper's IBM-Kyiv and IBM-Brisbane error rates, with the
paper's hardware protocol (100 iterations, 1024 shots).

Expected shape (Figure 11a/11b): baselines' ARG exceeds even the
mean-feasible-solution baseline because most of their output mass is
infeasible; Rasengan beats that baseline on both devices and holds a 100%
in-constraints rate thanks to purification, while baselines' in-constraints
rate collapses (more on the noisier Kyiv than on Brisbane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.runner import ALGORITHMS, run_algorithm
from repro.metrics.arg import approximation_ratio_gap
from repro.problems import make_benchmark
from repro.simulators.backends import fake_brisbane, fake_kyiv


@dataclass
class HardwareCell:
    algorithm: str
    device: str
    arg: float
    in_constraints_rate: float


@dataclass
class Fig11Result:
    cells: List[HardwareCell]
    mean_feasible_arg: float  # the "average feasible solution" baseline


def run_fig11(
    *,
    benchmark_ids: Sequence[str] = ("F1",),
    algorithms: Optional[Sequence[str]] = None,
    max_iterations: int = 30,
    shots: int = 1024,
    max_trajectories: int = 24,
    seed: int = 0,
) -> Fig11Result:
    """Hardware-style evaluation on the two fake devices."""
    devices = {
        "kyiv": lambda: fake_kyiv(seed=seed, max_trajectories=max_trajectories),
        "brisbane": lambda: fake_brisbane(seed=seed, max_trajectories=max_trajectories),
    }
    cells: List[HardwareCell] = []
    feasible_args: List[float] = []
    for benchmark_id in benchmark_ids:
        problem = make_benchmark(benchmark_id, 0)
        feasible_args.append(
            approximation_ratio_gap(
                problem.optimal_value, problem.mean_feasible_value()
            )
        )
        for device_name, factory in devices.items():
            for algorithm in algorithms or ALGORITHMS:
                run = run_algorithm(
                    algorithm,
                    problem,
                    shots=shots,
                    max_iterations=max_iterations,
                    seed=seed,
                    backend=factory(),
                )
                cells.append(
                    HardwareCell(
                        algorithm=algorithm,
                        device=device_name,
                        arg=run.arg,
                        in_constraints_rate=run.in_constraints_rate,
                    )
                )
    return Fig11Result(cells=cells, mean_feasible_arg=float(np.mean(feasible_args)))


def format_fig11(result: Fig11Result) -> str:
    lines = [
        f"{'device':<10} {'method':<10} {'ARG':>10} {'in-constraints':>15}",
        f"(mean-feasible baseline ARG = {result.mean_feasible_arg:.3f})",
    ]
    for cell in result.cells:
        lines.append(
            f"{cell.device:<10} {cell.algorithm:<10} {cell.arg:>10.3f} "
            f"{cell.in_constraints_rate:>14.1%}"
        )
    return "\n".join(lines)
