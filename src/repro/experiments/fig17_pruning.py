"""Figure 17: solution-space expansion speed with Hamiltonian pruning.

For FLP, KPP, SCP and GCP at four scales, traces the feasible-space
coverage of the unpruned canonical chain versus the pruned chain, both
measured against the full chain length.  The paper's headline: on the
fourth scale, full coverage needs 73.6% of the chain unpruned but only
40.7% pruned — a 1.8x expansion speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.expansion import coverage_timeline, expansion_speedup
from repro.core.prune import prune_schedule
from repro.core.simplify import simplify_basis
from repro.linalg.moves import augment_moves_for_connectivity
from repro.problems import make_benchmark

#: Figure 17 covers these four domains (JSP excluded, as in the paper).
DOMAIN_SCALES: Dict[str, Tuple[str, ...]] = {
    "flp": ("F1", "F2", "F3", "F4"),
    "kpp": ("K1", "K2", "K3", "K4"),
    "scp": ("S1", "S2", "S3", "S4"),
    "gcp": ("G1", "G2", "G3", "G4"),
}


@dataclass
class PruningCurve:
    benchmark_id: str
    chain_length: int
    unpruned_coverage: Tuple[int, ...]
    pruned_positions: Tuple[int, ...]   # original-chain positions kept
    pruned_coverage: Tuple[int, ...]
    total_feasible: int
    unpruned_fraction: float            # chain fraction to full coverage
    pruned_fraction: float
    speedup: float


def run_fig17(
    *,
    domains: Sequence[str] = ("flp", "kpp", "scp", "gcp"),
) -> List[PruningCurve]:
    """Coverage curves for every requested domain and scale."""
    curves: List[PruningCurve] = []
    for domain in domains:
        for benchmark_id in DOMAIN_SCALES[domain]:
            problem = make_benchmark(benchmark_id, 0)
            initial = problem.initial_feasible_solution()
            basis = augment_moves_for_connectivity(
                simplify_basis(problem.homogeneous_basis, iterate=True), initial
            )
            unpruned = coverage_timeline(basis, initial)
            pruned = prune_schedule(basis, initial, early_stop=False)
            pruned_curve = coverage_timeline(basis, initial, pruned.schedule)
            pruned_steps = (pruned_curve.full_coverage_position or 0) + 1
            curves.append(
                PruningCurve(
                    benchmark_id=benchmark_id,
                    chain_length=unpruned.chain_length,
                    unpruned_coverage=unpruned.covered,
                    pruned_positions=tuple(pruned.kept_positions),
                    pruned_coverage=pruned_curve.covered,
                    total_feasible=unpruned.final_coverage,
                    unpruned_fraction=unpruned.full_coverage_fraction,
                    pruned_fraction=pruned_steps / unpruned.chain_length,
                    speedup=expansion_speedup(basis, initial, pruned.schedule),
                )
            )
    return curves


def format_fig17(curves: List[PruningCurve]) -> str:
    lines = [
        f"{'bench':<6} {'chain':>6} {'#feas':>6} "
        f"{'unpruned%':>10} {'pruned%':>8} {'speedup':>8}"
    ]
    for curve in curves:
        lines.append(
            f"{curve.benchmark_id:<6} {curve.chain_length:>6} "
            f"{curve.total_feasible:>6} {curve.unpruned_fraction:>9.1%} "
            f"{curve.pruned_fraction:>7.1%} {curve.speedup:>8.2f}"
        )
    return "\n".join(lines)
