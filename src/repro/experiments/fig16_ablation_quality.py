"""Figure 16: ablation of the optimizations on ARG and in-constraints rate.

Each configuration toggles the solver's knobs cumulatively and is
evaluated both noise-free (exact engine) and on a fake noisy device:

* base       — no simplification, no pruning, no purification,
               whole chain in one segment;
* + opt 1    — simplification;
* + opt 2    — pruning + early stop;
* + opt 3    — per-transition segmentation with purification.

Expected shapes: opt 1 barely moves ARG (same evolution, cheaper gates);
opt 2 helps by dropping invalid transitions (and, under noise, by cutting
depth); opt 3 delivers the big noisy-hardware win — purification forces a
100% in-constraints rate while the unpurified configurations collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.solver import RasenganConfig, RasenganSolver
from repro.problems import make_benchmark
from repro.simulators.backends import Backend, fake_kyiv

#: (label, config overrides) in cumulative order.
CONFIGURATIONS = (
    ("base", dict(enable_simplify=False, enable_prune=False,
                  enable_purify=False, transitions_per_segment=10**6)),
    ("+opt1", dict(enable_simplify=True, enable_prune=False,
                   enable_purify=False, transitions_per_segment=10**6)),
    ("+opt2", dict(enable_simplify=True, enable_prune=True,
                   enable_purify=False, transitions_per_segment=10**6)),
    ("+opt3", dict(enable_simplify=True, enable_prune=True,
                   enable_purify=True, transitions_per_segment=1)),
)


@dataclass
class AblationQualityCell:
    configuration: str
    environment: str
    arg: Optional[float]
    in_constraints_rate: float
    failed: bool


def run_fig16(
    *,
    benchmark_id: str = "F1",
    max_iterations_exact: int = 120,
    max_iterations_noisy: int = 20,
    shots: int = 512,
    max_trajectories: int = 16,
    seed: int = 0,
) -> List[AblationQualityCell]:
    """Run all four configurations in both environments."""
    problem = make_benchmark(benchmark_id, 0)
    cells: List[AblationQualityCell] = []
    environments = (
        ("noise-free", None, max_iterations_exact, None),
        ("fake-kyiv", fake_kyiv(seed=seed, max_trajectories=max_trajectories),
         max_iterations_noisy, shots),
    )
    for label, overrides in CONFIGURATIONS:
        for env_name, backend, iterations, env_shots in environments:
            config = RasenganConfig(
                shots=env_shots,
                max_iterations=iterations,
                seed=seed,
                **overrides,
            )
            result = RasenganSolver(problem, backend=backend, config=config).solve()
            cells.append(
                AblationQualityCell(
                    configuration=label,
                    environment=env_name,
                    arg=None if result.failed else result.arg,
                    in_constraints_rate=result.in_constraints_rate,
                    failed=result.failed,
                )
            )
    return cells


def format_fig16(cells: List[AblationQualityCell]) -> str:
    lines = [f"{'config':<7} {'environment':<12} {'ARG':>10} {'in-constraints':>15}"]
    for cell in cells:
        arg = "FAILED" if cell.failed else f"{cell.arg:.3f}"
        lines.append(
            f"{cell.configuration:<7} {cell.environment:<12} {arg:>10} "
            f"{cell.in_constraints_rate:>14.1%}"
        )
    return "\n".join(lines)
