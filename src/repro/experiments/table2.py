"""Table 2: algorithmic evaluation across the 20 benchmark families.

For every benchmark (F1..G4) and every algorithm, reports ARG, executed
circuit depth, and parameter count, averaged over ``cases`` randomized
instances — the offline counterpart of the paper's 400-case protocol
(their own artifact scales this to ~10 cases).

Dense baselines are skipped above ``max_dense_qubits`` (the paper used a
GPU farm for those points); Rasengan runs everywhere thanks to the sparse
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.runner import ALGORITHMS, run_algorithm
from repro.metrics.statistics import bootstrap_ci, summarize
from repro.problems import BENCHMARK_IDS, make_benchmark


@dataclass
class Table2Cell:
    """Mean metrics of one (benchmark, algorithm) pair across cases."""

    arg: float
    depth: int
    num_parameters: int
    cases: int
    arg_std: float = 0.0
    in_constraints_rate: float = 1.0
    #: Bootstrap 95% CI on the median ARG across cases (degenerate when
    #: ``cases == 1``); the same estimator ``repro bench compare`` uses.
    arg_ci: tuple = (0.0, 0.0)


@dataclass
class Table2:
    """benchmark id -> algorithm -> cell; plus the problem shape row."""

    cells: Dict[str, Dict[str, Table2Cell]] = field(default_factory=dict)
    shapes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def improvement_over(self, baseline: str, metric: str = "arg") -> float:
        """Geometric-mean ratio baseline/rasengan over shared benchmarks."""
        ratios = []
        for per_algo in self.cells.values():
            if baseline in per_algo and "rasengan" in per_algo:
                ours = getattr(per_algo["rasengan"], metric)
                theirs = getattr(per_algo[baseline], metric)
                if ours > 0 and theirs > 0:
                    ratios.append(theirs / ours)
        if not ratios:
            return float("nan")
        return float(np.exp(np.mean(np.log(ratios))))


def run_table2(
    *,
    benchmark_ids: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    cases: int = 1,
    max_iterations: int = 200,
    max_dense_qubits: int = 14,
    seed: int = 0,
) -> Table2:
    """Populate Table 2.

    Args:
        benchmark_ids: subset of families (default: all 20).
        algorithms: subset of algorithms (default: all four).
        cases: randomized instances per family.
        max_iterations: COBYLA budget per run.
        max_dense_qubits: skip dense baselines above this qubit count.
        seed: base RNG seed.
    """
    table = Table2()
    for benchmark_id in benchmark_ids or BENCHMARK_IDS:
        per_algo: Dict[str, List] = {}
        sample = make_benchmark(benchmark_id, 0)
        table.shapes[benchmark_id] = {
            "variables": sample.num_variables,
            "constraints": sample.num_constraints,
            "feasible": sample.num_feasible_solutions,
        }
        for case in range(cases):
            problem = make_benchmark(benchmark_id, case)
            for name in algorithms or ALGORITHMS:
                dense = name in ("hea", "pqaoa")
                if dense and problem.num_variables > max_dense_qubits:
                    continue
                run = run_algorithm(
                    name,
                    problem,
                    max_iterations=max_iterations,
                    seed=seed + case,
                )
                per_algo.setdefault(name, []).append(run)
        table.cells[benchmark_id] = {}
        for name, runs in per_algo.items():
            arg_values = [r.arg for r in runs]
            args = summarize(arg_values)
            table.cells[benchmark_id][name] = Table2Cell(
                arg=args.mean,
                arg_ci=bootstrap_ci(arg_values, seed=seed),
                depth=int(np.mean([r.executed_depth for r in runs])),
                num_parameters=int(np.mean([r.num_parameters for r in runs])),
                cases=len(runs),
                arg_std=args.std,
                in_constraints_rate=float(
                    np.mean([r.in_constraints_rate for r in runs])
                ),
            )
    return table


def format_table2(table: Table2) -> str:
    algorithms = sorted(
        {name for per_algo in table.cells.values() for name in per_algo}
    )
    lines = []
    header = f"{'bench':<6} {'n':>4} {'m':>4} {'#feas':>6}"
    for name in algorithms:
        header += f" | {name+' ARG':>12} {'depth':>6} {'#par':>5}"
    lines.append(header)
    for benchmark_id, per_algo in table.cells.items():
        shape = table.shapes[benchmark_id]
        line = (
            f"{benchmark_id:<6} {shape['variables']:>4} "
            f"{shape['constraints']:>4} {shape['feasible']:>6}"
        )
        for name in algorithms:
            cell = per_algo.get(name)
            if cell is None:
                line += f" | {'—':>12} {'—':>6} {'—':>5}"
            else:
                line += (
                    f" | {cell.arg:>12.3f} {cell.depth:>6d} "
                    f"{cell.num_parameters:>5d}"
                )
        lines.append(line)
    return "\n".join(lines)
