"""Headline improvement factors (the paper's abstract numbers).

Aggregates a Table-2 run and a Figure-11 run into the handful of numbers
the paper leads with: ARG improvement over Choco-Q / P-QAOA / HEA, circuit
depth reduction, and the hardware-ARG improvement factor over the best
baseline (the paper's 379x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.fig11_hardware import Fig11Result
from repro.experiments.table2 import Table2
from repro.metrics.statistics import geometric_mean


@dataclass
class Headline:
    """The abstract-level summary numbers."""

    arg_vs_chocoq: float
    arg_vs_pqaoa: float
    arg_vs_hea: float
    depth_vs_chocoq: float
    hardware_improvement: Optional[float] = None

    def format(self) -> str:
        lines = [
            f"ARG improvement over Choco-Q (geo-mean): {self.arg_vs_chocoq:.2f}x",
            f"ARG improvement over P-QAOA  (geo-mean): {self.arg_vs_pqaoa:.1f}x",
            f"ARG improvement over HEA     (geo-mean): {self.arg_vs_hea:.1f}x",
            f"executed-depth reduction vs Choco-Q:     {self.depth_vs_chocoq:.1f}x",
        ]
        if self.hardware_improvement is not None:
            lines.append(
                f"hardware ARG improvement vs best baseline: "
                f"{self.hardware_improvement:.0f}x"
            )
        return "\n".join(lines)


def headline_from_results(
    table2: Table2, fig11: Optional[Fig11Result] = None
) -> Headline:
    """Compute the headline factors from experiment results.

    ARG ratios are geometric means of per-benchmark baseline/rasengan
    ratios (zero-ARG cells are floored at 1e-3 so perfect Rasengan runs
    do not produce infinite factors).
    """

    def arg_ratio(baseline: str) -> float:
        ratios = []
        for per_algo in table2.cells.values():
            if baseline in per_algo and "rasengan" in per_algo:
                ours = max(per_algo["rasengan"].arg, 1e-3)
                theirs = max(getattr(per_algo[baseline], "arg"), 1e-3)
                ratios.append(theirs / ours)
        return geometric_mean(ratios)

    hardware: Optional[float] = None
    if fig11 is not None:
        rasengan_args = [c.arg for c in fig11.cells if c.algorithm == "rasengan"]
        baseline_args: Dict[str, list] = {}
        for cell in fig11.cells:
            if cell.algorithm != "rasengan":
                baseline_args.setdefault(cell.algorithm, []).append(cell.arg)
        if rasengan_args and baseline_args:
            ours = max(float(np.mean(rasengan_args)), 1e-3)
            best_baseline = min(
                float(np.mean(values)) for values in baseline_args.values()
            )
            hardware = best_baseline / ours

    return Headline(
        arg_vs_chocoq=arg_ratio("chocoq"),
        arg_vs_pqaoa=arg_ratio("pqaoa"),
        arg_vs_hea=arg_ratio("hea"),
        depth_vs_chocoq=table2.improvement_over("chocoq", "depth"),
        hardware_improvement=hardware,
    )
