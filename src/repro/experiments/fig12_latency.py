"""Figure 12: training latency breakdown per algorithm.

Classical versus quantum time for one full training run of each method,
from the analytic latency model fed with the measured circuit structure.

Expected shape: penalty methods (HEA, P-QAOA) are classical-dominated
(>70%) because they score every infeasible sample against the quadratic
penalty objective; Choco-Q is quantum-dominated by its deep mixer; Rasengan
cuts total time below Choco-Q by executing shallow segments, paying only a
small classical surcharge for segment handling/purification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.circuits.latency import LatencyReport
from repro.experiments.runner import ALGORITHMS, run_algorithm
from repro.metrics.latency import algorithm_latency
from repro.problems import make_benchmark


@dataclass
class LatencyCell:
    algorithm: str
    quantum: float
    classical: float
    purification: float

    @property
    def total(self) -> float:
        return self.quantum + self.classical + self.purification

    @property
    def classical_fraction(self) -> float:
        return (self.classical + self.purification) / self.total


def run_fig12(
    *,
    benchmark_id: str = "F1",
    algorithms: Optional[Sequence[str]] = None,
    max_iterations: int = 100,
    shots: int = 1024,
    seed: int = 0,
) -> List[LatencyCell]:
    """Latency breakdown on one benchmark."""
    problem = make_benchmark(benchmark_id, 0)
    cells: List[LatencyCell] = []
    for name in algorithms or ALGORITHMS:
        run = run_algorithm(name, problem, max_iterations=max_iterations, seed=seed)
        report: LatencyReport = algorithm_latency(
            name,
            iterations=run.iterations,
            shots=shots,
            depth_1q=run.executed_depth,
            depth_2q=run.executed_depth_2q,
            num_parameters=run.num_parameters,
            segments=run.num_segments,
            distinct_states=max(len(run.final_distribution), 1),
        )
        cells.append(
            LatencyCell(
                algorithm=name,
                quantum=report.quantum,
                classical=report.classical,
                purification=report.purification,
            )
        )
    return cells


def format_fig12(cells: List[LatencyCell]) -> str:
    lines = [
        f"{'method':<10} {'quantum(s)':>11} {'classical(s)':>13} "
        f"{'purif.(s)':>10} {'total(s)':>9} {'classical%':>11}"
    ]
    for cell in cells:
        lines.append(
            f"{cell.algorithm:<10} {cell.quantum:>11.3f} {cell.classical:>13.3f} "
            f"{cell.purification:>10.4f} {cell.total:>9.3f} "
            f"{cell.classical_fraction:>10.1%}"
        )
    return "\n".join(lines)
