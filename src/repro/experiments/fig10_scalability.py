"""Figure 10: scalability on growing facility-location instances.

Four panels:

(a) maximum (unpruned, ``m^2``) versus pruned segment counts — quadratic
    growth tamed by pruning;
(b) per-segment circuit depth (linear ``34 k`` cost model) — roughly flat
    for FLP because constraint arity is fixed;
(c) noise-free ARG via the sparse engine;
(d) ARG under noise, in one of two modes:

    * ``noisy_mode="effective"`` (default, fast) — each segment's output
      distribution is mixed with random bitstrings at a rate implied by
      its two-qubit gate count and the per-gate error rate, then
      purified.  Preserves the mechanism the panel demonstrates
      (deep-enough segments stop yielding feasible states and the run
      terminates early).
    * ``noisy_mode="trajectory"`` — honest per-gate Kraus trajectories on
      the sparse engine (:class:`~repro.simulators.sparse_noisy.
      SparseTrajectoryBackend`), which reaches the paper's 28+-qubit
      noisy points without a dense statevector; slower, used for
      spot-checks of the effective model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.prune import build_schedule
from repro.core.solver import RasenganConfig, RasenganSolver
from repro.exceptions import NoFeasibleStateError
from repro.linalg.bitvec import int_to_bits
from repro.metrics.arg import approximation_ratio_gap
from repro.problems import FacilityLocationProblem

#: (facilities, demands) ladder; variables = f + 2 f d.
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = ((2, 1), (2, 2), (2, 3), (3, 3), (3, 4))


@dataclass
class ScalePoint:
    num_variables: int
    max_segments: int
    pruned_segments: int
    segment_depth_cx: int
    noise_free_arg: float
    noisy_arg: Optional[float]
    noisy_failed: bool


def _effective_noisy_execute(
    solver: RasenganSolver,
    times: np.ndarray,
    two_qubit_error: float,
    rng: np.random.Generator,
    shots: int = 1024,
) -> Dict[int, float]:
    """Segmented execution with the effective per-segment noise channel."""
    from repro.core.purification import purify_probabilities
    from repro.simulators.sparsestate import SparseState
    from repro.linalg.bitvec import bits_to_int

    problem = solver.problem
    n = problem.num_variables
    distribution = {bits_to_int(solver.initial_bits): 1.0}
    for segment in solver.plan:
        state = SparseState.from_distribution(n, distribution)
        segment_cx = 0
        for position in segment:
            u = solver.basis[solver.schedule[position]]
            state.apply_transition(u, times[position])
            segment_cx += 34 * int(np.count_nonzero(u))
        raw = state.probabilities()
        # Effective channel: survival probability per shot.
        survival = (1.0 - two_qubit_error) ** segment_cx
        corrupted: Dict[int, float] = {
            key: probability * survival for key, probability in raw.items()
        }
        scatter = 1.0 - survival
        for _ in range(8):  # a handful of scattered outcomes stand in for noise
            corrupted_key = int(rng.integers(0, 1 << min(n, 62)))
            corrupted[corrupted_key] = corrupted.get(corrupted_key, 0.0) + scatter / 8
        distribution, _ = purify_probabilities(
            corrupted, problem.constraint_matrix, problem.bound
        )
        distribution = {k: p for k, p in distribution.items() if p > 1e-4}
        total = sum(distribution.values())
        distribution = {k: p / total for k, p in distribution.items()}
    return distribution


def _trajectory_noisy_arg(
    problem,
    times: np.ndarray,
    two_qubit_error: float,
    seed: int,
    shots: int = 512,
) -> float:
    """Replay the trained times on a sparse Kraus-trajectory backend."""
    from repro.simulators.noise import NoiseModel
    from repro.simulators.sparse_noisy import SparseTrajectoryBackend

    model = NoiseModel.from_error_rates(
        single_qubit_error=two_qubit_error / 10.0,
        two_qubit_error=two_qubit_error,
    )
    backend = SparseTrajectoryBackend(model, seed=seed, max_trajectories=8)
    solver = RasenganSolver(
        problem,
        backend=backend,
        config=RasenganConfig(shots=shots, max_iterations=1, seed=seed),
    )
    distribution, _ = solver.execute(times)
    n = problem.num_variables
    expectation = sum(
        p * problem.value(int_to_bits(k, n)) for k, p in distribution.items()
    )
    return approximation_ratio_gap(problem.optimal_value, expectation)


def run_fig10(
    *,
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    max_iterations: int = 120,
    two_qubit_error: float = 0.005,
    seed: int = 0,
    noisy_mode: str = "effective",
) -> List[ScalePoint]:
    """Scalability ladder over FLP instances."""
    if noisy_mode not in ("effective", "trajectory"):
        raise ValueError("noisy_mode must be 'effective' or 'trajectory'")
    points: List[ScalePoint] = []
    rng = np.random.default_rng(seed)
    for facilities, demands in sizes:
        problem = FacilityLocationProblem.random(
            facilities, demands, seed=seed, name=f"flp-{facilities}x{demands}"
        )
        config = RasenganConfig(shots=None, max_iterations=max_iterations, seed=seed)
        solver = RasenganSolver(problem, config=config)
        result = solver.solve()

        noisy_arg: Optional[float] = None
        noisy_failed = False
        try:
            if noisy_mode == "trajectory":
                noisy_arg = _trajectory_noisy_arg(
                    problem, result.best_parameters, two_qubit_error, seed
                )
            else:
                distribution = _effective_noisy_execute(
                    solver, result.best_parameters, two_qubit_error, rng
                )
                n = problem.num_variables
                expectation = sum(
                    p * problem.value(int_to_bits(k, n))
                    for k, p in distribution.items()
                )
                noisy_arg = approximation_ratio_gap(
                    problem.optimal_value, expectation
                )
        except NoFeasibleStateError:
            noisy_failed = True

        points.append(
            ScalePoint(
                num_variables=problem.num_variables,
                max_segments=len(build_schedule(solver.basis.shape[0])),
                pruned_segments=solver.num_segments,
                segment_depth_cx=solver.segment_two_qubit_cost(),
                noise_free_arg=result.arg,
                noisy_arg=noisy_arg,
                noisy_failed=noisy_failed,
            )
        )
    return points


def format_fig10(points: List[ScalePoint]) -> str:
    lines = [
        f"{'#vars':>6} {'max seg':>8} {'pruned':>7} {'seg CX':>7} "
        f"{'ARG (ideal)':>12} {'ARG (noisy)':>12}"
    ]
    for p in points:
        noisy = "FAILED" if p.noisy_failed else (
            f"{p.noisy_arg:.3f}" if p.noisy_arg is not None else "—"
        )
        lines.append(
            f"{p.num_variables:>6} {p.max_segments:>8} {p.pruned_segments:>7} "
            f"{p.segment_depth_cx:>7} {p.noise_free_arg:>12.3f} {noisy:>12}"
        )
    return "\n".join(lines)
