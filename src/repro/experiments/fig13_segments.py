"""Figure 13: shots and latency as a function of the segment count.

The same pruned transition chain is executed with different segmentation
granularities.  Expected shapes: total shots grow *linearly* with the
number of segments (1024 shots per segment); latency grows *sub-linearly*
because each extra segment shortens the circuit that dominates execution
time, leaving measurement/initialization and classical handling as the
marginal cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.solver import RasenganConfig, RasenganSolver
from repro.metrics.latency import algorithm_latency
from repro.problems import make_benchmark


@dataclass
class SegmentSweepPoint:
    num_segments: int
    transitions_per_segment: int
    total_shots: int
    latency_seconds: float
    arg: float


def run_fig13(
    *,
    benchmark_id: str = "S1",
    shots_per_segment: int = 1024,
    max_iterations: int = 120,
    seed: int = 0,
    segment_sizes: Optional[Sequence[int]] = None,
) -> List[SegmentSweepPoint]:
    """Sweep segmentation granularity on one benchmark."""
    problem = make_benchmark(benchmark_id, 0)
    probe = RasenganSolver(
        problem, config=RasenganConfig(shots=None, max_iterations=1, seed=seed)
    )
    chain = len(probe.schedule)
    if segment_sizes is None:
        segment_sizes = sorted(
            {chain, max(chain // 2, 1), max(chain // 4, 1), 2, 1}, reverse=True
        )
    points: List[SegmentSweepPoint] = []
    for size in segment_sizes:
        config = RasenganConfig(
            shots=None,
            max_iterations=max_iterations,
            transitions_per_segment=size,
            seed=seed,
        )
        solver = RasenganSolver(problem, config=config)
        result = solver.solve()
        depth_cx = solver.segment_two_qubit_cost()
        latency = algorithm_latency(
            "rasengan",
            iterations=result.iterations,
            shots=shots_per_segment,
            depth_1q=depth_cx * 2,  # 1q work tracks the CX envelope
            depth_2q=depth_cx,
            num_parameters=result.num_parameters,
            segments=result.num_segments,
            distinct_states=max(len(result.final_distribution), 1),
        )
        points.append(
            SegmentSweepPoint(
                num_segments=result.num_segments,
                transitions_per_segment=size,
                total_shots=shots_per_segment * result.num_segments,
                latency_seconds=latency.total,
                arg=result.arg,
            )
        )
    return sorted(points, key=lambda p: p.num_segments)


def format_fig13(points: List[SegmentSweepPoint]) -> str:
    lines = [
        f"{'#segments':>9} {'trans/seg':>10} {'total shots':>12} "
        f"{'latency(s)':>11} {'ARG':>8}"
    ]
    for p in points:
        lines.append(
            f"{p.num_segments:>9} {p.transitions_per_segment:>10} "
            f"{p.total_shots:>12} {p.latency_seconds:>11.3f} {p.arg:>8.3f}"
        )
    return "\n".join(lines)
