"""Enumeration of the feasible solution space of ``C x = b``.

Two complementary strategies are provided:

* :func:`enumerate_feasible_bruteforce` checks every binary vector.  It is
  exact for any constraint system and vectorised with numpy, but costs
  ``O(2**n)`` and is only meant for ground truth on small instances.
* :func:`enumerate_feasible_by_expansion` starts from one particular
  solution and explores by adding/subtracting homogeneous basis vectors,
  which mirrors exactly how the transition Hamiltonians expand the search
  space (paper, Theorem 1).  For totally unimodular systems this reaches the
  whole feasible space.

:func:`greedy_particular_solution` finds one feasible solution by
depth-first search with constraint propagation; the benchmark problems also
provide cheap domain-specific constructions (paper, Section 5.1), but a
generic fallback keeps the library usable on arbitrary systems.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set

import numpy as np

from repro.exceptions import InfeasibleProblemError
from repro.linalg.bitvec import all_bitvectors, bits_to_int, int_to_bits

#: Largest problem size accepted by brute-force enumeration.
BRUTEFORCE_LIMIT = 24


def enumerate_feasible_bruteforce(
    constraint_matrix: np.ndarray,
    bound: np.ndarray,
    *,
    chunk_bits: int = 18,
) -> List[np.ndarray]:
    """All binary ``x`` with ``C x = b``, by exhaustive search.

    Args:
        constraint_matrix: ``(m, n)`` integer matrix ``C``.
        bound: length-``m`` integer vector ``b``.
        chunk_bits: evaluate ``2**chunk_bits`` candidates per numpy batch to
            bound peak memory.

    Returns:
        List of length-``n`` int8 arrays, sorted by integer encoding.
    """
    matrix = np.asarray(constraint_matrix, dtype=np.int64)
    target = np.asarray(bound, dtype=np.int64)
    _, n = matrix.shape
    if n > BRUTEFORCE_LIMIT:
        raise ValueError(
            f"brute force over {n} variables exceeds limit {BRUTEFORCE_LIMIT}"
        )
    solutions: List[np.ndarray] = []
    total = 1 << n
    step = min(total, 1 << chunk_bits)
    for start in range(0, total, step):
        values = np.arange(start, min(start + step, total), dtype=np.int64)
        bits = np.stack([(values >> i) & 1 for i in range(n)], axis=1)
        residual = bits @ matrix.T - target
        hits = np.where(np.all(residual == 0, axis=1))[0]
        for hit in hits:
            solutions.append(bits[hit].astype(np.int8))
    return solutions


def enumerate_feasible_by_expansion(
    particular: np.ndarray,
    basis: np.ndarray,
    *,
    max_states: Optional[int] = None,
) -> List[np.ndarray]:
    """Feasible solutions reachable from ``particular`` via basis moves.

    Performs breadth-first search over ``x -> x ± u_k`` transitions, keeping
    only binary vectors.  This is the classical shadow of the quantum
    expansion performed by transition Hamiltonian simulation, and is used by
    Hamiltonian pruning to know which transitions add new states.

    Args:
        particular: one feasible solution ``x_p``.
        basis: ``(m, n)`` homogeneous basis (rows ``u_k``).
        max_states: optional safety cap on the number of explored states.

    Returns:
        List of solutions (including ``particular``) sorted by integer
        encoding.
    """
    start = np.asarray(particular, dtype=np.int64)
    n = start.shape[0]
    moves = [np.asarray(row, dtype=np.int64) for row in np.atleast_2d(basis)]
    seen: Set[int] = {bits_to_int(start)}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for move in moves:
            for candidate in (current + move, current - move):
                if np.any((candidate < 0) | (candidate > 1)):
                    continue
                key = bits_to_int(candidate)
                if key in seen:
                    continue
                seen.add(key)
                if max_states is not None and len(seen) > max_states:
                    raise MemoryError(
                        f"expansion exceeded max_states={max_states}"
                    )
                queue.append(candidate)
    return [int_to_bits(key, n) for key in sorted(seen)]


def greedy_particular_solution(
    constraint_matrix: np.ndarray,
    bound: np.ndarray,
) -> np.ndarray:
    """One feasible solution of ``C x = b`` via DFS with pruning.

    Variables are assigned in order; a partial assignment is pruned when a
    constraint can no longer reach its bound given the remaining variables'
    signed contribution range.  Worst case exponential, but the structured
    benchmark systems resolve in roughly linear time.

    Raises:
        InfeasibleProblemError: when no binary solution exists.
    """
    matrix = np.asarray(constraint_matrix, dtype=np.int64)
    target = np.asarray(bound, dtype=np.int64)
    m, n = matrix.shape

    # Remaining min/max contribution of variables i..n-1 for each constraint.
    pos_suffix = np.zeros((n + 1, m), dtype=np.int64)
    neg_suffix = np.zeros((n + 1, m), dtype=np.int64)
    for i in range(n - 1, -1, -1):
        column = matrix[:, i]
        pos_suffix[i] = pos_suffix[i + 1] + np.maximum(column, 0)
        neg_suffix[i] = neg_suffix[i + 1] + np.minimum(column, 0)

    assignment = np.zeros(n, dtype=np.int8)
    partial = np.zeros(m, dtype=np.int64)

    def search(i: int) -> bool:
        nonlocal partial
        remaining = target - partial
        if np.any(remaining > pos_suffix[i]) or np.any(remaining < neg_suffix[i]):
            return False
        if i == n:
            return bool(np.all(remaining == 0))
        for value in (0, 1):
            assignment[i] = value
            if value:
                partial += matrix[:, i]
            if search(i + 1):
                return True
            if value:
                partial -= matrix[:, i]
        assignment[i] = 0
        return False

    if not search(0):
        raise InfeasibleProblemError("constraint system C x = b has no binary solution")
    return assignment.copy()
