"""Signed-unit move sets over the nullspace lattice.

A *move* is a vector ``u in {-1,0,1}^n`` with ``C u = 0``; applying it to a
binary point ``x`` (as ``x + u`` or ``x - u``) yields another feasible
point when the result stays binary.  These are exactly the vectors that
become transition Hamiltonians.

Theorem 1's "more complex cases" clause assumes each round of the basis
yields at least one effective transition.  That fails when two feasible
solutions differ only by a *combination* of basis vectors whose
intermediate points are non-binary (graph coloring with edge slacks is the
canonical offender).  :func:`augment_moves_for_connectivity` repairs this
inside the paper's own toolbox — Algorithm 1 already takes signed-unit
linear combinations of basis vectors; here the same combinations are
searched for vectors that connect a stalled frontier to new feasible
states.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.linalg.bitvec import bits_to_int, int_to_bits, is_signed_unit_vector

#: Maximum number of original basis vectors combined per candidate move.
DEFAULT_MAX_COMBINATION = 3


def move_masks(u: np.ndarray) -> Tuple[int, int]:
    """Bitmasks of the +1 and -1 positions of a move vector.

    Adding ``u`` to ``x`` keeps the point binary iff every +1 site of
    ``u`` has ``x``-bit 0 and every -1 site has ``x``-bit 1; the result
    then simply sets the +1 bits and clears the -1 bits.  Precomputing the
    two masks turns the partner computation into O(1) integer arithmetic,
    which is what lets the sparse engine scale to the paper's 100-variable
    instances.
    """
    mask_plus = 0
    mask_minus = 0
    for index, value in enumerate(u):
        if value == 1:
            mask_plus |= 1 << index
        elif value == -1:
            mask_minus |= 1 << index
    return mask_plus, mask_minus


def partner_key_from_masks(key: int, mask_plus: int, mask_minus: int) -> Optional[int]:
    """O(1) partner lookup given precomputed masks (see :func:`move_masks`)."""
    if (key & mask_plus) == 0 and (key & mask_minus) == mask_minus:
        return (key | mask_plus) & ~mask_minus
    if (key & mask_minus) == 0 and (key & mask_plus) == mask_plus:
        return (key | mask_minus) & ~mask_plus
    return None


def move_partner_key(key: int, u: np.ndarray, n: int) -> Optional[int]:
    """Integer encoding of ``x ± u`` when binary, else ``None``.

    For ``u != 0`` at most one sign keeps the point binary, so the partner
    is unique — the classical shadow of the transition Hamiltonian's
    pairing action.
    """
    mask_plus, mask_minus = move_masks(np.asarray(u))
    if mask_plus == 0 and mask_minus == 0:
        return None
    return partner_key_from_masks(key, mask_plus, mask_minus)


def expand_closure(moves: Sequence[np.ndarray], reached: Set[int], n: int) -> None:
    """Grow ``reached`` (in place) to closure under single-move steps."""
    masks = [move_masks(np.asarray(u)) for u in moves]
    frontier = list(reached)
    while frontier:
        next_frontier: List[int] = []
        for key in frontier:
            for mask_plus, mask_minus in masks:
                if mask_plus == 0 and mask_minus == 0:
                    continue
                partner = partner_key_from_masks(key, mask_plus, mask_minus)
                if partner is not None and partner not in reached:
                    reached.add(partner)
                    next_frontier.append(partner)
        frontier = next_frontier


def candidate_combinations(
    basis: np.ndarray, max_combination: int = DEFAULT_MAX_COMBINATION
) -> List[np.ndarray]:
    """Signed-unit combinations of 2..``max_combination`` basis vectors.

    Each candidate is ``u_{i0} + sum sign_j * u_{ij}`` with signs in
    {-1, +1}; only vectors with every entry in {-1, 0, 1} survive.
    Candidates are deduplicated up to global sign (both signs act
    identically as moves) and ordered by combination size.
    """
    rows = np.atleast_2d(np.asarray(basis, dtype=np.int64))
    m = rows.shape[0]
    candidates: List[np.ndarray] = []
    seen: Set[Tuple[int, ...]] = set()
    for size in range(2, min(max_combination, m) + 1):
        for subset in combinations(range(m), size):
            for signs in product((1, -1), repeat=size - 1):
                vector = rows[subset[0]].copy()
                for sign, index in zip(signs, subset[1:]):
                    vector = vector + sign * rows[index]
                if not vector.any() or not is_signed_unit_vector(vector):
                    continue
                key = tuple(int(v) for v in vector)
                if key in seen or tuple(-v for v in key) in seen:
                    continue
                seen.add(key)
                candidates.append(vector.astype(np.int64))
    return candidates


def augment_moves_for_connectivity(
    basis: np.ndarray,
    initial_bits: Sequence[int],
    *,
    max_combination: int = DEFAULT_MAX_COMBINATION,
) -> np.ndarray:
    """Extend the move set until single-move expansion stops stalling.

    Args:
        basis: ``(m, n)`` signed-unit homogeneous basis.
        initial_bits: feasible solution the expansion starts from.
        max_combination: largest number of original vectors combined.

    Returns:
        ``(m', n)`` move set, ``m' >= m``, whose first ``m`` rows are the
        original basis.  Every added row is a signed-unit nullspace vector
        that connected the reached set to a new feasible state when added.
    """
    rows = np.atleast_2d(np.asarray(basis, dtype=np.int64))
    m, n = rows.shape
    if m == 0:
        return rows
    moves: List[np.ndarray] = [rows[k].copy() for k in range(m)]
    reached: Set[int] = {bits_to_int(initial_bits)}
    expand_closure(moves, reached, n)

    candidates = candidate_combinations(rows, max_combination)
    progress = True
    while progress:
        progress = False
        for vector in candidates:
            connects = any(
                (partner := move_partner_key(key, vector, n)) is not None
                and partner not in reached
                for key in reached
            )
            if connects:
                moves.append(vector)
                expand_closure(moves, reached, n)
                progress = True
    return np.stack(moves)
