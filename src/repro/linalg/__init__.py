"""Integer linear algebra for constraint systems ``C x = b``.

This subpackage is the classical foundation of Rasengan's expansion-based
search (paper, Section 3): the homogeneous basis of ``C u = 0`` with entries
in ``{-1, 0, 1}`` generates every feasible solution from a single particular
solution, and the same vectors define the transition Hamiltonians.
"""

from repro.linalg.bitvec import (
    bits_to_int,
    hamming_weight,
    int_to_bits,
    is_binary_vector,
)
from repro.linalg.nullspace import integer_nullspace, rational_rref
from repro.linalg.feasible import (
    enumerate_feasible_bruteforce,
    enumerate_feasible_by_expansion,
    greedy_particular_solution,
)
from repro.linalg.tum import is_totally_unimodular

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "hamming_weight",
    "is_binary_vector",
    "integer_nullspace",
    "rational_rref",
    "enumerate_feasible_bruteforce",
    "enumerate_feasible_by_expansion",
    "greedy_particular_solution",
    "is_totally_unimodular",
]
