"""Exact integer nullspace computation for constraint matrices.

Rasengan (paper, Section 3) needs a *homogeneous basis* ``{u}`` of
``C u = 0`` whose entries lie in ``{-1, 0, 1}`` so that each ``u`` can be
turned into a transition Hamiltonian.  Floating-point nullspaces
(``scipy.linalg.null_space``) return orthonormal real vectors, which are
useless here, so we perform exact Gauss-Jordan elimination over the
rationals with :class:`fractions.Fraction` and then scale each free-variable
basis vector to a primitive integer vector.

For the constraint systems produced by the benchmark problems in
:mod:`repro.problems` (assignment/one-hot/covering structure, which are
totally unimodular or close to it) the resulting basis is automatically a
signed-unit basis.  When it is not, :func:`integer_nullspace` can optionally
apply the same pairwise-combination trick as Algorithm 1 to repair entries
outside ``{-1, 0, 1}``.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Tuple

import numpy as np

from repro.exceptions import LinearAlgebraError
from repro.linalg.bitvec import is_signed_unit_vector


def rational_rref(matrix: np.ndarray) -> Tuple[List[List[Fraction]], List[int]]:
    """Reduced row echelon form over the rationals.

    Args:
        matrix: integer (or rational-valued) 2-D array.

    Returns:
        ``(rref, pivot_columns)`` where ``rref`` is a list of rows of
        :class:`~fractions.Fraction` and ``pivot_columns`` lists the pivot
        column index of each nonzero row, in order.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise LinearAlgebraError("expected a 2-D matrix")
    rows, cols = arr.shape
    work = [[Fraction(int(arr[r, c])) for c in range(cols)] for r in range(rows)]

    pivot_columns: List[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        # Find a row with a nonzero entry in this column.
        chosen = None
        for r in range(pivot_row, rows):
            if work[r][col] != 0:
                chosen = r
                break
        if chosen is None:
            continue
        work[pivot_row], work[chosen] = work[chosen], work[pivot_row]
        pivot = work[pivot_row][col]
        work[pivot_row] = [entry / pivot for entry in work[pivot_row]]
        for r in range(rows):
            if r != pivot_row and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [
                    entry - factor * pivot_entry
                    for entry, pivot_entry in zip(work[r], work[pivot_row])
                ]
        pivot_columns.append(col)
        pivot_row += 1
    return work, pivot_columns


def _primitive_integer_vector(vec: List[Fraction]) -> np.ndarray:
    """Scale a rational vector to a primitive (gcd 1) integer vector."""
    denominators = [entry.denominator for entry in vec]
    scale = 1
    for den in denominators:
        scale = scale * den // gcd(scale, den)
    ints = [int(entry * scale) for entry in vec]
    common = 0
    for value in ints:
        common = gcd(common, abs(value))
    if common > 1:
        ints = [value // common for value in ints]
    return np.array(ints, dtype=np.int64)


def integer_nullspace(
    matrix: np.ndarray,
    *,
    require_signed_unit: bool = False,
) -> np.ndarray:
    """Primitive integer basis of the nullspace of ``matrix``.

    Uses the standard free-variable construction: for every non-pivot column
    ``f`` there is one basis vector with ``u_f = 1``, the pivot variables
    solved from the RREF, and the remaining free variables zero.

    Args:
        matrix: integer constraint matrix ``C`` of shape ``(m, n)``.
        require_signed_unit: when True, attempt to repair basis vectors whose
            entries fall outside ``{-1, 0, 1}`` by pairwise addition and
            subtraction with other basis vectors (the same moves as
            Algorithm 1), and raise :class:`LinearAlgebraError` if any vector
            cannot be repaired.

    Returns:
        Array of shape ``(k, n)`` whose rows span ``null(C)`` over the
        rationals, each row a primitive integer vector.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise LinearAlgebraError("expected a 2-D constraint matrix")
    _, cols = arr.shape
    rref, pivot_columns = rational_rref(arr)
    pivot_set = set(pivot_columns)
    free_columns = [c for c in range(cols) if c not in pivot_set]

    basis: List[np.ndarray] = []
    for free in free_columns:
        vec = [Fraction(0)] * cols
        vec[free] = Fraction(1)
        for row_index, pivot_col in enumerate(pivot_columns):
            vec[pivot_col] = -rref[row_index][free]
        basis.append(_primitive_integer_vector(vec))

    if not basis:
        return np.zeros((0, cols), dtype=np.int64)
    result = np.stack(basis)

    if require_signed_unit:
        result = repair_signed_unit_basis(result)
    return result


def repair_signed_unit_basis(basis: np.ndarray) -> np.ndarray:
    """Drive every basis vector's entries into ``{-1, 0, 1}`` if possible.

    Repeatedly replaces an invalid vector ``u_i`` with ``u_i ± u_j`` whenever
    the move reduces the sum of absolute entries.  These moves keep the span
    unchanged (they are elementary row operations).  Raises
    :class:`LinearAlgebraError` when no further move helps but an invalid
    vector remains.
    """
    work = basis.astype(np.int64).copy()
    m = work.shape[0]

    def magnitude(vec: np.ndarray) -> int:
        return int(np.abs(vec).sum())

    for _ in range(64 * max(m, 1)):
        invalid = [i for i in range(m) if not is_signed_unit_vector(work[i])]
        if not invalid:
            return work
        improved = False
        for i in invalid:
            best = work[i]
            best_mag = magnitude(best)
            for j in range(m):
                if j == i:
                    continue
                for candidate in (work[i] + work[j], work[i] - work[j]):
                    if magnitude(candidate) < best_mag:
                        best = candidate
                        best_mag = magnitude(candidate)
            if best is not work[i] and best_mag < magnitude(work[i]):
                work[i] = best
                improved = True
        if not improved:
            break
    invalid = [i for i in range(m) if not is_signed_unit_vector(work[i])]
    if invalid:
        raise LinearAlgebraError(
            "could not reduce nullspace basis to signed-unit vectors; "
            f"rows {invalid} remain outside {{-1,0,1}}"
        )
    return work
