"""Total unimodularity testing.

Theorem 1 of the paper distinguishes totally unimodular (TU) constraint
matrices — where ``m`` rounds of the ``m`` transition Hamiltonians cover the
feasible space — from general matrices where the bound is ``m**3``.  The
benchmark families (assignment, one-hot, interval/covering structures) are
TU or near-TU, and the tests in ``tests/test_linalg_tum.py`` rely on this
module for ground truth.

The implementation checks the determinant of every square submatrix, which
is exponential; a ``max_order`` cap keeps it usable inside tests.  A fast
sufficient condition (interval matrices / network matrices) is also exposed.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np


def is_totally_unimodular(matrix: np.ndarray, *, max_order: int | None = None) -> bool:
    """True when every square submatrix has determinant in {-1, 0, 1}.

    Args:
        matrix: integer matrix to test.
        max_order: largest submatrix order to check; defaults to
            ``min(m, n)`` (the exact test).  Lowering it turns this into a
            necessary-condition check for large matrices.
    """
    arr = np.asarray(matrix, dtype=np.int64)
    if arr.size == 0:
        return True
    if np.any(np.abs(arr) > 1):
        return False
    rows, cols = arr.shape
    order_limit = min(rows, cols)
    if max_order is not None:
        order_limit = min(order_limit, max_order)
    for order in range(2, order_limit + 1):
        for row_idx in combinations(range(rows), order):
            sub_rows = arr[list(row_idx)]
            for col_idx in combinations(range(cols), order):
                sub = sub_rows[:, list(col_idx)]
                det = round(float(np.linalg.det(sub.astype(np.float64))))
                if det not in (-1, 0, 1):
                    return False
    return True


def is_interval_matrix(matrix: np.ndarray) -> bool:
    """Sufficient TU condition: each column's nonzeros are consecutive 1s.

    Interval (consecutive-ones) matrices are a classical TU family; several
    scheduling formulations fall into it.
    """
    arr = np.asarray(matrix, dtype=np.int64)
    if np.any((arr != 0) & (arr != 1)):
        return False
    for col in arr.T:
        nonzero = np.flatnonzero(col)
        if nonzero.size and not np.array_equal(
            nonzero, np.arange(nonzero[0], nonzero[-1] + 1)
        ):
            return False
    return True
