"""Bit-vector conventions shared by the whole library.

A solution of an ``n``-variable problem is a binary vector
``x = (x_1, ..., x_n)``.  Variable ``x_i`` lives on qubit ``i - 1`` and on bit
``i - 1`` of the integer encoding, i.e. the encoding is **little-endian**:

>>> bits_to_int([1, 0, 1])
5
>>> int_to_bits(5, 3)
array([1, 0, 1], dtype=int8)

Using one explicit convention everywhere (problems, simulators, Hamiltonians,
measurement results) is what keeps the quantum and classical halves of the
library consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def bits_to_int(bits: Sequence[int] | np.ndarray) -> int:
    """Encode a binary vector as an integer (bit ``i`` = variable ``x_{i+1}``).

    Args:
        bits: sequence of 0/1 values.

    Returns:
        The little-endian integer encoding of ``bits``.
    """
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value


def int_to_bits(value: int, n: int) -> np.ndarray:
    """Decode an integer into an ``n``-entry binary vector.

    Args:
        value: integer in ``[0, 2**n)``.
        n: number of variables.

    Returns:
        ``int8`` array of length ``n`` with the little-endian bits of
        ``value``.
    """
    if value < 0 or value >= (1 << n):
        raise ValueError(f"value {value} does not fit in {n} bits")
    return np.array([(value >> i) & 1 for i in range(n)], dtype=np.int8)


def all_bitvectors(n: int) -> np.ndarray:
    """Return a ``(2**n, n)`` matrix whose rows are all binary vectors.

    Row ``k`` is ``int_to_bits(k, n)``.  Vectorised; intended for
    brute-force enumeration of small (``n <= ~22``) problems.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    values = np.arange(1 << n, dtype=np.int64)
    columns = [(values >> i) & 1 for i in range(n)]
    if not columns:
        return np.zeros((1, 0), dtype=np.int8)
    return np.stack(columns, axis=1).astype(np.int8)


def hamming_weight(bits: Iterable[int]) -> int:
    """Number of nonzero entries of a vector."""
    return int(sum(1 for bit in bits if bit))


def is_binary_vector(vec: Sequence[int] | np.ndarray) -> bool:
    """True when every entry of ``vec`` is 0 or 1."""
    arr = np.asarray(vec)
    return bool(np.all((arr == 0) | (arr == 1)))


def is_signed_unit_vector(vec: Sequence[int] | np.ndarray) -> bool:
    """True when every entry of ``vec`` is -1, 0 or 1.

    This is the validity condition for homogeneous basis vectors used by the
    transition Hamiltonian (paper, Definition 1) and by Hamiltonian
    simplification (Algorithm 1's ``isValid``).
    """
    arr = np.asarray(vec)
    return bool(np.all((arr == -1) | (arr == 0) | (arr == 1)))
