"""repro — a from-scratch reproduction of Rasengan (MICRO 2025).

Transition-Hamiltonian approximation algorithm for constrained binary
optimization, with every substrate built in pure Python: circuit IR and
simulators, the five benchmark problem families, the HEA / P-QAOA /
Choco-Q baselines, and one experiment module per paper table/figure.

The three imports most users need:

>>> from repro.problems import make_benchmark
>>> from repro.core.solver import RasenganSolver, RasenganConfig
>>> result = RasenganSolver(make_benchmark("F1", 0),
...                         config=RasenganConfig(shots=None)).solve()
>>> result.in_constraints_rate
1.0
"""

__version__ = "1.0.0"

from repro.core.solver import RasenganConfig, RasenganResult, RasenganSolver
from repro.problems import ConstrainedBinaryProblem, make_benchmark

__all__ = [
    "__version__",
    "RasenganConfig",
    "RasenganResult",
    "RasenganSolver",
    "ConstrainedBinaryProblem",
    "make_benchmark",
]
