"""Approximation ratio gap and in-constraints rate (paper, Equation 9).

``ARG = |(E_opt - E_real) / E_opt|`` with lower being better and 0 meaning
the algorithm's expected output matches the optimum exactly.  ``E_real``
is the expected (minimization-oriented) objective of the algorithm's
output distribution; for penalty-based baselines infeasible samples carry
their penalty-augmented score, which is what produces the ~1000 ARGs the
paper reports for HEA / P-QAOA.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.linalg.bitvec import int_to_bits
from repro.problems.base import ConstrainedBinaryProblem

#: Denominator floor for instances whose optimum is exactly zero (the paper
#: never hits this because its objectives are strictly positive; random
#: instances occasionally do, e.g. a zero-cut partition).
_ZERO_OPT_FLOOR = 1.0


def approximation_ratio_gap(optimal_value: float, realized_value: float) -> float:
    """Equation 9, with a documented floor for a zero optimum."""
    denominator = abs(optimal_value)
    if denominator == 0:
        denominator = _ZERO_OPT_FLOOR
    return abs((optimal_value - realized_value) / denominator)


def arg_from_counts(
    problem: ConstrainedBinaryProblem,
    counts: Mapping[int, int],
    *,
    penalty: float | None = None,
) -> float:
    """ARG of a measured distribution.

    Args:
        problem: the problem instance (supplies ``E_opt``).
        counts: measured distribution.
        penalty: penalty coefficient for scoring infeasible samples
            (``None`` = raw objective, the scoring used for feasible-space
            methods).
    """
    realized = problem.expectation_from_counts(dict(counts), penalty=penalty)
    return approximation_ratio_gap(problem.optimal_value, realized)


def in_constraints_rate(
    problem: ConstrainedBinaryProblem, counts: Mapping[int, int]
) -> float:
    """Fraction of measured shots satisfying ``C x = b``."""
    return problem.in_constraints_rate(dict(counts))
