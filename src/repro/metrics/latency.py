"""Per-algorithm latency accounting (paper, Table 1 and Figure 12).

Thin convenience layer over :class:`repro.circuits.latency.LatencyModel`
that fills in each algorithm's structural characteristics: penalty methods
evaluate (quadratic) objectives on every sample including infeasible ones,
Choco-Q runs one deep circuit per iteration, Rasengan runs several shallow
segments plus purification.
"""

from __future__ import annotations

from typing import Dict

from repro.circuits.latency import LatencyModel, LatencyReport


def algorithm_latency(
    algorithm: str,
    *,
    iterations: int,
    shots: int,
    depth_1q: int,
    depth_2q: int,
    num_parameters: int,
    segments: int = 1,
    distinct_states: int = 16,
    model: LatencyModel | None = None,
) -> LatencyReport:
    """Latency of one training run for a named algorithm.

    Args:
        algorithm: one of ``"hea"``, ``"pqaoa"``, ``"chocoq"``,
            ``"rasengan"``.
        iterations: optimizer iterations.
        shots: shots per circuit execution.
        depth_1q / depth_2q: executed-circuit depths (one segment for
            Rasengan).
        num_parameters: variational parameter count.
        segments: Rasengan segment count (ignored otherwise).
        distinct_states: distinct measured states (drives purification).
        model: timing model; defaults to IBM-Eagle-like constants.
    """
    model = model or LatencyModel()
    algorithm = algorithm.lower()
    if algorithm in ("hea", "pqaoa", "p-qaoa"):
        # Penalty methods evaluate the (quadratic) penalty objective on
        # every sample; infeasible mass dominates, so classical work per
        # shot is the highest.
        return model.training_latency(
            iterations=iterations,
            shots=shots,
            depth_1q=depth_1q,
            depth_2q=depth_2q,
            num_parameters=num_parameters,
            segments=1,
            purify=False,
            objective_evals_per_shot=2.5,
        )
    # Feasible-space methods score only the distinct feasible states they
    # measure (few), not every shot — their classical side is light.
    per_state_evals = max(distinct_states, 1) / max(shots, 1)
    if algorithm in ("chocoq", "choco-q"):
        return model.training_latency(
            iterations=iterations,
            shots=shots,
            depth_1q=depth_1q,
            depth_2q=depth_2q,
            num_parameters=num_parameters,
            segments=1,
            purify=False,
            objective_evals_per_shot=per_state_evals,
        )
    if algorithm == "rasengan":
        return model.training_latency(
            iterations=iterations,
            shots=shots,
            depth_1q=depth_1q,
            depth_2q=depth_2q,
            num_parameters=num_parameters,
            segments=segments,
            distinct_states=distinct_states,
            purify=True,
            objective_evals_per_shot=per_state_evals,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}")


def latency_breakdown_table(reports: Dict[str, LatencyReport]) -> str:
    """Render a Figure-12-style breakdown as aligned text."""
    lines = [f"{'algorithm':<12} {'classical(s)':>12} {'quantum(s)':>12} {'total(s)':>12}"]
    for name, report in reports.items():
        lines.append(
            f"{name:<12} {report.classical + report.purification:>12.3f} "
            f"{report.quantum:>12.3f} {report.total:>12.3f}"
        )
    return "\n".join(lines)
