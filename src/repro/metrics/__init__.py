"""Evaluation metrics (paper, Section 5.1)."""

from repro.metrics.arg import approximation_ratio_gap, in_constraints_rate
from repro.metrics.latency import algorithm_latency

__all__ = [
    "approximation_ratio_gap",
    "in_constraints_rate",
    "algorithm_latency",
]
