"""Summary statistics for multi-case experiment protocols.

The paper reports per-benchmark means over 100–400 randomized cases; this
module provides the aggregation used by the Table-2 harness: mean,
standard deviation, standard error, geometric mean (for improvement
ratios), and a normal-approximation confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Aggregate of one metric over repeated cases."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        half = z * self.sem
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        if self.count == 1:
            return f"{self.mean:.3f}"
        return f"{self.mean:.3f}±{self.sem:.3f}"


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a non-empty sequence of metric values."""
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sequence")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def geometric_mean(ratios: Iterable[float]) -> float:
    """Geometric mean of positive ratios (NaN when none qualify).

    The right average for "A improves over B by Nx" claims, which is how
    the paper aggregates its 4.12x / 1.96x / 49x headline numbers.
    """
    logs: List[float] = [math.log(r) for r in ratios if r > 0]
    if not logs:
        return float("nan")
    return float(math.exp(sum(logs) / len(logs)))
