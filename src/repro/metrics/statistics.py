"""Summary statistics for multi-case experiment protocols.

The paper reports per-benchmark means over 100–400 randomized cases; this
module provides the aggregation used by the Table-2 harness: mean,
standard deviation, standard error, geometric mean (for improvement
ratios), and a normal-approximation confidence interval.

For the small sample counts this repo actually runs (a handful of cases
per family offline, 3–10 timing repeats per bench workload) the normal
approximation is the wrong tool — it assumes symmetric, roughly Gaussian
sampling error, which neither ARG distributions nor wall-clock timings
satisfy.  :func:`bootstrap_ci` and :func:`bootstrap_ratio_ci` provide the
distribution-free alternative used by the Table-2 harness and the
``repro.bench`` comparison engine: seeded percentile bootstrap on any
statistic (median by default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Aggregate of one metric over repeated cases."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        half = z * self.sem
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        if self.count == 1:
            return f"{self.mean:.3f}"
        return f"{self.mean:.3f}±{self.sem:.3f}"


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a non-empty sequence of metric values."""
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sequence")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def _resample_matrix(
    samples: np.ndarray, resamples: int, rng: np.random.Generator
) -> np.ndarray:
    """``resamples`` bootstrap draws (with replacement), one per row."""
    indices = rng.integers(0, samples.size, size=(resamples, samples.size))
    return samples[indices]


def bootstrap_ci(
    samples: Sequence[float],
    stat: Callable[..., float] = np.median,
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: Optional[int] = 0,
) -> Tuple[float, float]:
    """Seeded percentile-bootstrap confidence interval for ``stat``.

    Args:
        samples: the observed values (non-empty).
        stat: statistic of one sample set; must accept ``axis=`` the way
            numpy reductions do (default: the median, the robust choice
            for skewed distributions like wall-clock timings).
        confidence: two-sided coverage (default 95%).
        resamples: bootstrap resample count.
        seed: RNG seed — a fixed default so repeated analyses of the same
            samples give the same interval.

    Returns:
        ``(low, high)``.  A single sample yields the degenerate interval
        ``(value, value)`` — with n=1 the bootstrap has nothing to say.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if arr.size == 1:
        value = float(stat(arr))
        return (value, value)
    rng = np.random.default_rng(seed)
    estimates = stat(_resample_matrix(arr, resamples, rng), axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return (float(low), float(high))


def bootstrap_ratio_ci(
    baseline: Sequence[float],
    candidate: Sequence[float],
    stat: Callable[..., float] = np.median,
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: Optional[int] = 0,
) -> Tuple[float, float]:
    """Bootstrap CI for the *relative change* ``stat(candidate)/stat(baseline) - 1``.

    Both sets are resampled independently per bootstrap draw, so the
    interval reflects the noise of both measurements.  This is the
    decision statistic of ``repro.bench.compare``: a workload regressed
    only when the whole interval clears the noise threshold — never a
    bare mean-vs-mean comparison.

    Returns ``(low, high)`` of the relative change (e.g. ``0.30`` = 30%
    slower).  Degenerate single-sample sets give the point estimate twice.
    """
    base = np.asarray(list(baseline), dtype=float)
    cand = np.asarray(list(candidate), dtype=float)
    if base.size == 0 or cand.size == 0:
        raise ValueError("cannot bootstrap empty sample sets")

    def ratio(base_stats: np.ndarray, cand_stats: np.ndarray) -> np.ndarray:
        # Guard exact-zero baselines (a timing of 0.0 means the clock
        # under-resolved the region; treat it as one tick).
        floor = np.finfo(float).tiny
        return cand_stats / np.maximum(base_stats, floor) - 1.0

    if base.size == 1 and cand.size == 1:
        value = float(ratio(stat(base, axis=0), stat(cand, axis=0)))
        return (value, value)
    rng = np.random.default_rng(seed)
    base_stats = stat(_resample_matrix(base, resamples, rng), axis=1)
    cand_stats = stat(_resample_matrix(cand, resamples, rng), axis=1)
    estimates = ratio(base_stats, cand_stats)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return (float(low), float(high))


def geometric_mean(ratios: Iterable[float]) -> float:
    """Geometric mean of positive ratios (NaN when none qualify).

    The right average for "A improves over B by Nx" claims, which is how
    the paper aggregates its 4.12x / 1.96x / 49x headline numbers.
    """
    logs: List[float] = [math.log(r) for r in ratios if r > 0]
    if not logs:
        return float("nan")
    return float(math.exp(sum(logs) / len(logs)))
