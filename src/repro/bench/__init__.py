"""repro.bench — deterministic performance benchmarks with regression gating.

The measurement substrate for every perf-relevant PR (see
``docs/BENCHMARKS.md``):

* :mod:`repro.bench.workloads` — a registry of seeded workloads spanning
  the micro (simulator/decomposition/pipeline/engine hot paths), macro
  (end-to-end solves), and service (HTTP round-trip, dedup burst) layers.
* :mod:`repro.bench.runner` — warmup + GC-pinned monotonic timing +
  a separate telemetry counter pass per workload.
* :mod:`repro.bench.schema` — the versioned ``BENCH_<suite>.json``
  artifact format (forward-compatible: unknown fields round-trip).
* :mod:`repro.bench.compare` — bootstrap-CI-on-the-median regression
  verdicts; never bare mean-vs-mean.
* :mod:`repro.bench.cli` — ``python -m repro bench {list,run,compare,gate}``;
  ``gate`` exits 4 on statistically significant regressions against the
  committed baseline under ``benchmarks/baselines/``.
"""

from repro.bench.compare import (
    Comparison,
    WorkloadComparison,
    compare_reports,
    format_comparison,
)
from repro.bench.runner import run_suite, run_workload
from repro.bench.schema import (
    SCHEMA_ID,
    SCHEMA_VERSION,
    BenchSchemaError,
    environment_fingerprint,
    load_report,
    new_report,
    validate_report,
    workload_entry,
    write_report,
)
from repro.bench.workloads import (
    SUITES,
    Workload,
    get_workload,
    register_workload,
    workload_names,
    workloads_for,
)

__all__ = [
    "BenchSchemaError",
    "Comparison",
    "SCHEMA_ID",
    "SCHEMA_VERSION",
    "SUITES",
    "Workload",
    "WorkloadComparison",
    "compare_reports",
    "environment_fingerprint",
    "format_comparison",
    "get_workload",
    "load_report",
    "new_report",
    "register_workload",
    "run_suite",
    "run_workload",
    "validate_report",
    "workload_entry",
    "workload_names",
    "workloads_for",
    "write_report",
]
