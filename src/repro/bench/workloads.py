"""The deterministic workload registry.

A workload is one *measurable unit of work* with a fixed seed: ``setup``
builds whatever state the measurement needs (problems, engines, a running
service), ``run`` performs exactly one measured iteration, ``teardown``
releases resources.  The runner times ``run`` only, so setup cost never
pollutes a sample.

Three layers are covered, mirroring the execution architecture
(``docs/ARCHITECTURE.md``):

* ``micro.*`` — single hot paths: dense vs sparse statevector apply,
  Barenco decomposition, cold/warm pipeline passes, compiled-circuit
  rebinding, ``engine.run_batch``.
* ``macro.*`` — end-to-end :class:`~repro.core.solver.RasenganSolver`
  solves on the five benchmark families (F1/K1/J1/S1/G1) plus one
  baseline per family through the shared experiment runner.
* ``service.*`` — an HTTP job round-trip and a dedup-coalesced burst
  against an in-process :class:`~repro.service.workers.SolverService`.

Determinism contract: the workload list for a suite, every workload's
seed, and every recorded counter value are pure functions of the tree —
two ``bench run`` invocations on an unchanged tree differ **only** in
``samples_seconds``.  Each workload therefore declares exactly which
telemetry counters to record (``counters=``): only counters whose values
cannot race (e.g. ``service.jobs.executed``, never
``service.dedup.coalesced``, whose split against store hits depends on
worker timing) are eligible.

``run`` receives a monotonically increasing ``iteration`` index spanning
the counter pass, warmup, and the timed repeats; workloads whose repeat
must not be short-circuited by a cache (the service workloads would
otherwise hit the dedup/result store) fold it into their per-iteration
seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SUITES",
    "Workload",
    "get_workload",
    "register_workload",
    "workload_names",
    "workloads_for",
]

#: Known suite tags.  ``quick`` is the CI-sized subset (seconds); ``full``
#: is everything; the layer suites slice by subsystem.
SUITES = ("quick", "micro", "macro", "service", "full")


@dataclass(frozen=True)
class Workload:
    """One registered benchmark workload."""

    name: str
    description: str
    suites: Tuple[str, ...]
    seed: int
    #: Telemetry counter names recorded during the (untimed) counter
    #: pass; every listed counter must be deterministic for this
    #: workload.  Missing counters record as 0.0.
    counters: Tuple[str, ...]
    setup: Optional[Callable[[int], Any]]
    run: Callable[[Any, int], Any]
    teardown: Optional[Callable[[Any], None]] = None
    #: Inner-loop count: one timed sample is the mean over this many
    #: back-to-back ``run`` calls.  A fixed registry constant (never
    #: runtime-calibrated) so the sample count stays deterministic; >1
    #: only for sub-millisecond bodies where timer jitter would
    #: otherwise dominate.
    inner: int = 1


_REGISTRY: Dict[str, Workload] = {}


def register_workload(
    name: str,
    *,
    description: str,
    suites: Sequence[str],
    seed: int,
    counters: Sequence[str] = (),
    setup: Optional[Callable[[int], Any]] = None,
    teardown: Optional[Callable[[Any], None]] = None,
    inner: int = 1,
) -> Callable[[Callable[[Any, int], Any]], Callable[[Any, int], Any]]:
    """Decorator registering ``run`` under ``name``.

    ``suites`` is validated against :data:`SUITES`; every workload is
    implicitly part of ``full``.
    """
    unknown = set(suites) - set(SUITES)
    if unknown:
        raise ValueError(f"unknown suite(s) {sorted(unknown)} for {name!r}")
    if name in _REGISTRY:
        raise ValueError(f"workload {name!r} already registered")

    def decorate(run: Callable[[Any, int], Any]) -> Callable[[Any, int], Any]:
        tags = tuple(dict.fromkeys(list(suites) + ["full"]))
        _REGISTRY[name] = Workload(
            name=name,
            description=description,
            suites=tags,
            seed=int(seed),
            counters=tuple(counters),
            setup=setup,
            run=run,
            teardown=teardown,
            inner=int(inner),
        )
        return run

    return decorate


def get_workload(name: str) -> Workload:
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r} (have: {known})")
    return _REGISTRY[name]


def workloads_for(suite: str) -> List[Workload]:
    """All workloads tagged with ``suite``, in registration order."""
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r} (have: {', '.join(SUITES)})")
    return [w for w in _REGISTRY.values() for s in [w.suites] if suite in s]


def workload_names(suite: Optional[str] = None) -> List[str]:
    if suite is None:
        return list(_REGISTRY)
    return [w.name for w in workloads_for(suite)]


# ======================================================================
# Micro workloads
# ======================================================================
def _dense_apply_setup(seed: int):
    from repro.circuits.circuit import QuantumCircuit
    from repro.simulators.seeding import make_rng

    rng = make_rng(seed)
    n = 10
    circuit = QuantumCircuit(n, name="bench-dense")
    for _ in range(4):
        for q in range(n):
            circuit.rx(float(rng.uniform(0, 3.14)), q)
        for q in range(n - 1):
            circuit.cx(q, q + 1)
    return circuit


@register_workload(
    "micro.statevector.apply",
    description="dense statevector apply: 4 RX+CX layers on 10 qubits",
    suites=("micro", "quick"),
    seed=101,
    counters=("statevector.runs",),
    setup=_dense_apply_setup,
    inner=4,
)
def _dense_apply_run(circuit, iteration: int):
    from repro.simulators.statevector import simulate_statevector

    return simulate_statevector(circuit)


def _sparse_apply_setup(seed: int):
    import numpy as np

    from repro.simulators.seeding import make_rng

    rng = make_rng(seed)
    n = 16
    basis = []
    for _ in range(24):
        vector = np.zeros(n, dtype=int)
        support = rng.choice(n, size=3, replace=False)
        vector[support] = rng.choice([-1, 1], size=3)
        basis.append(vector)
    times = rng.uniform(0.1, 1.2, size=len(basis))
    bits = [int(b) for b in rng.integers(0, 2, size=n)]
    return {"n": n, "basis": basis, "times": times, "bits": bits}


@register_workload(
    "micro.sparse.apply",
    description="sparse-state transition chain: 24 transitions on 16 qubits",
    suites=("micro", "quick"),
    seed=102,
    counters=("sparse.transitions",),
    setup=_sparse_apply_setup,
    inner=16,
)
def _sparse_apply_run(ctx, iteration: int):
    from repro.simulators.sparsestate import SparseState

    state = SparseState.from_bits(ctx["bits"])
    for vector, time in zip(ctx["basis"], ctx["times"]):
        state.apply_transition(vector, float(time))
    state.prune()
    return state


def _barenco_setup(seed: int):
    from repro.circuits.circuit import QuantumCircuit

    n = 9
    circuit = QuantumCircuit(n, name="bench-barenco")
    for width in range(3, n):
        circuit.mcx(list(range(width)), width)
        circuit.mcp(0.35 * width, list(range(width)), width)
    return circuit


@register_workload(
    "micro.decompose.barenco",
    description="Barenco decomposition of MCX/MCP gates up to 8 controls",
    suites=("micro", "quick"),
    seed=103,
    setup=_barenco_setup,
)
def _barenco_run(circuit, iteration: int):
    from repro.circuits.decompose import decompose_circuit

    return decompose_circuit(circuit)


def _pipeline_problem(seed: int):
    from repro.core.solver import RasenganConfig
    from repro.problems.registry import make_benchmark

    problem = make_benchmark("F1", case=0)
    config = RasenganConfig(seed=seed, max_iterations=10, restarts=1)
    return problem, config


def _pipeline_cold_setup(seed: int):
    problem, config = _pipeline_problem(seed)
    return {"problem": problem, "config": config}


@register_workload(
    "micro.pipeline.cold",
    description="staged pipeline compile of F1 into an empty artifact cache",
    suites=("micro", "quick"),
    seed=104,
    counters=(
        "pipeline.cache.misses",
        "pipeline.computed.basis",
        "pipeline.computed.hamiltonian",
        "pipeline.computed.prune",
        "pipeline.computed.segmentation",
        "pipeline.computed.circuit",
    ),
    setup=_pipeline_cold_setup,
    inner=4,
)
def _pipeline_cold_run(ctx, iteration: int):
    from repro.pipeline import ArtifactCache, SolvePipeline

    pipeline = SolvePipeline(
        ctx["problem"], ctx["config"], cache=ArtifactCache()
    )
    return pipeline.compile()


def _pipeline_warm_setup(seed: int):
    from repro.pipeline import ArtifactCache, SolvePipeline

    problem, config = _pipeline_problem(seed)
    cache = ArtifactCache()
    SolvePipeline(problem, config, cache=cache).compile()
    return {"problem": problem, "config": config, "cache": cache}


@register_workload(
    "micro.pipeline.warm",
    description="staged pipeline compile of F1 served entirely from cache",
    suites=("micro", "quick"),
    seed=105,
    counters=("pipeline.cache.hits", "pipeline.cache.misses"),
    setup=_pipeline_warm_setup,
    inner=24,
)
def _pipeline_warm_run(ctx, iteration: int):
    from repro.pipeline import SolvePipeline

    pipeline = SolvePipeline(ctx["problem"], ctx["config"], cache=ctx["cache"])
    return pipeline.compile()


def _solver_context(seed: int):
    """A compiled solver on F1 — shared by the rebind/run_batch micros."""
    from repro.core.solver import RasenganConfig, RasenganSolver
    from repro.pipeline import ArtifactCache
    from repro.problems.registry import make_benchmark

    problem = make_benchmark("F1", case=0)
    config = RasenganConfig(seed=seed, max_iterations=10, restarts=1)
    solver = RasenganSolver(
        problem, config=config, artifact_cache=ArtifactCache()
    )
    return solver


def _rebind_setup(seed: int):
    import numpy as np

    from repro.simulators.seeding import make_rng

    solver = _solver_context(seed)
    rng = make_rng(seed)
    positions = tuple(range(len(solver.schedule)))
    # Synthesize the template once so every measured call is a pure
    # cache-hit + rebind, the COBYLA inner-loop hot path.
    solver.segment_circuit(positions, np.full(len(positions), 0.3))
    times = [rng.uniform(0.05, 1.5, size=len(positions)) for _ in range(16)]
    return {"solver": solver, "positions": positions, "times": times}


def _close_solver(ctx) -> None:
    ctx["solver"].engine.close()


@register_workload(
    "micro.engine.rebind",
    description="compiled-circuit cache rebind: 16 angle sets on one segment",
    suites=("micro", "quick"),
    seed=106,
    counters=("engine.cache.hits", "engine.cache.misses"),
    setup=_rebind_setup,
    teardown=_close_solver,
    inner=12,
)
def _rebind_run(ctx, iteration: int):
    solver = ctx["solver"]
    for times in ctx["times"]:
        solver.segment_circuit(ctx["positions"], times)


def _run_batch_setup(seed: int):
    from repro.simulators.seeding import make_rng

    solver = _solver_context(seed)
    rng = make_rng(seed)
    batch = [
        rng.uniform(0.05, 1.5, size=solver.num_parameters) for _ in range(4)
    ]
    return {"solver": solver, "batch": batch}


@register_workload(
    "micro.engine.run_batch",
    description="engine.run_batch of 4 full segmented executions on F1",
    suites=("micro", "quick"),
    seed=107,
    counters=(
        "engine.batch.calls",
        "engine.batch.items",
        "engine.executions",
    ),
    setup=_run_batch_setup,
    teardown=_close_solver,
    inner=4,
)
def _run_batch_run(ctx, iteration: int):
    return ctx["solver"].execute_batch(ctx["batch"])


# ======================================================================
# Macro workloads
# ======================================================================
#: (family, paired baseline) — one end-to-end Rasengan solve and one
#: baseline solve per benchmark family; the quick suite keeps only F1.
_MACRO_FAMILIES = (
    ("F1", "chocoq"),
    ("K1", "hea"),
    ("J1", "pqaoa"),
    ("S1", "chocoq"),
    ("G1", "hea"),
)


def _macro_setup(benchmark_id: str):
    def setup(seed: int):
        from repro.problems.registry import make_benchmark

        return {"problem": make_benchmark(benchmark_id, case=0), "seed": seed}

    return setup


def _macro_rasengan_run(ctx, iteration: int):
    from repro.core.solver import RasenganConfig, RasenganSolver
    from repro.pipeline import ArtifactCache

    config = RasenganConfig(seed=ctx["seed"], max_iterations=10, restarts=1)
    solver = RasenganSolver(
        ctx["problem"], config=config, artifact_cache=ArtifactCache()
    )
    try:
        return solver.solve()
    finally:
        solver.engine.close()


def _macro_baseline_run(algorithm: str):
    def run(ctx, iteration: int):
        from repro.experiments.runner import run_algorithm

        return run_algorithm(
            algorithm,
            ctx["problem"],
            layers=2,
            max_iterations=8,
            seed=ctx["seed"],
            restarts=1,
        )

    return run


_MACRO_COUNTERS = (
    "circuits.executed",
    "engine.executions",
    "optimizer.iterations",
    "shots.total",
)

for _index, (_family, _baseline) in enumerate(_MACRO_FAMILIES):
    _quick = ("macro", "quick") if _family == "F1" else ("macro",)
    register_workload(
        f"macro.rasengan.{_family}",
        description=f"end-to-end RasenganSolver solve on {_family} "
        "(exact engine, 10 iterations)",
        suites=_quick,
        seed=200 + _index,
        counters=_MACRO_COUNTERS,
        setup=_macro_setup(_family),
    )(_macro_rasengan_run)
    register_workload(
        f"macro.baseline.{_baseline}.{_family}",
        description=f"end-to-end {_baseline} baseline on {_family} "
        "(2 layers, 8 iterations)",
        suites=_quick,
        seed=220 + _index,
        counters=_MACRO_COUNTERS,
        setup=_macro_setup(_family),
    )(_macro_baseline_run(_baseline))


# ======================================================================
# Service workloads
# ======================================================================
_SERVICE_CONFIG = {"max_iterations": 8, "shots": 64, "restarts": 1}


def _service_http_setup(seed: int):
    from repro.service.client import ServiceClient
    from repro.service.http import ServiceServer
    from repro.service.store import ResultStore
    from repro.service.workers import SolverService

    service = SolverService(workers=2, store=ResultStore(capacity=64)).start()
    server = ServiceServer(service, port=0).start()
    client = ServiceClient(server.url)
    return {
        "service": service,
        "server": server,
        "client": client,
        "seed": seed,
    }


def _service_http_teardown(ctx) -> None:
    ctx["server"].stop()
    ctx["service"].close(drain=False)


@register_workload(
    "service.http.roundtrip",
    description="HTTP POST /jobs (wait=true) round-trip through the "
    "worker pool",
    suites=("service", "quick"),
    seed=301,
    counters=("service.jobs.submitted", "service.jobs.executed"),
    setup=_service_http_setup,
    teardown=_service_http_teardown,
)
def _service_http_run(ctx, iteration: int):
    # A fresh seed per iteration keeps the fingerprint unique, so every
    # repeat measures a real execution, never a result-store hit.
    config = dict(_SERVICE_CONFIG, seed=ctx["seed"] + iteration)
    record = ctx["client"].submit(
        benchmark="F1", config=config, wait=True, wait_timeout=60.0
    )
    if record.get("state") != "done":
        raise RuntimeError(f"service round-trip failed: {record}")
    return record


def _service_burst_setup(seed: int):
    from repro.service.store import ResultStore
    from repro.service.workers import SolverService

    service = SolverService(workers=2, store=ResultStore(capacity=64)).start()
    return {"service": service, "seed": seed}


def _service_burst_teardown(ctx) -> None:
    ctx["service"].close(drain=False)


@register_workload(
    "service.dedup.burst",
    description="8 identical jobs submitted back-to-back; dedup collapses "
    "them to one execution",
    suites=("service", "quick"),
    seed=302,
    # Only race-free counters: the coalesced-vs-store-hit split depends
    # on worker timing, but exactly one execution happens either way.
    counters=(
        "service.jobs.submitted",
        "service.jobs.executed",
        "service.dedup.unique",
    ),
    setup=_service_burst_setup,
    teardown=_service_burst_teardown,
)
def _service_burst_run(ctx, iteration: int):
    config = dict(_SERVICE_CONFIG, seed=ctx["seed"] + iteration)
    jobs = [
        ctx["service"].submit(benchmark="F1", config=config)
        for _ in range(8)
    ]
    for job in jobs:
        if not job.wait(timeout=60.0):
            raise RuntimeError(f"burst job {job.id} did not settle")
    return jobs
