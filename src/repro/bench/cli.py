"""``python -m repro bench`` — list, run, compare, gate.

Subcommands::

    bench list [--suite SUITE] [--json]
    bench run [--suite SUITE] [--repeats N] [--warmup N] [--out PATH]
              [--workload NAME ...] [--no-counters] [--update-baseline]
              [--json]
    bench compare BASELINE CANDIDATE [--threshold PCT] [--json]
    bench gate [--against PATH] [--candidate PATH] [--suite SUITE]
               [--repeats N] [--threshold PCT] [--strict-env] [--json]

``run`` writes a schema-valid ``BENCH_<suite>.json`` (see
``docs/BENCHMARKS.md``); everything except the timing samples is
deterministic.  ``compare`` judges two reports with bootstrap confidence
intervals on the median.  ``gate`` is the CI guard: exit 0 when no
workload regressed, exit **4** on a statistically significant
regression, exit 2 on bad input.  When the two reports' environment
fingerprints differ the gate only warns (cross-machine timings are not
comparable) unless ``--strict-env`` is given.

Thresholds accept either a fraction (``0.25``) or a percentage
(``25%``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench import compare as compare_mod
from repro.bench import schema
from repro.bench.runner import run_suite, stderr_progress
from repro.bench.workloads import SUITES, workloads_for

__all__ = ["main"]

#: Default location of the committed per-suite baselines.
BASELINE_DIR = "benchmarks/baselines"

#: Exit code of a failed gate — distinct from argparse's 2 and the
#: solve timeout's 3, so CI can tell "regression" from "broken input".
GATE_EXIT_CODE = 4


def _parse_threshold(text: str) -> float:
    """``"25%"`` or ``"0.25"`` -> 0.25."""
    raw = text.strip()
    try:
        if raw.endswith("%"):
            value = float(raw[:-1]) / 100.0
        else:
            value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"threshold {text!r} is neither a fraction nor a percentage"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("threshold must be >= 0")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Deterministic performance benchmarks with statistical "
        "regression gating (see docs/BENCHMARKS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered workloads")
    list_parser.add_argument(
        "--suite", choices=SUITES, default=None, help="filter by suite"
    )
    list_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    run_parser = sub.add_parser("run", help="run a suite, write BENCH_<suite>.json")
    run_parser.add_argument(
        "--suite", choices=SUITES, default="quick", help="suite to run"
    )
    run_parser.add_argument(
        "--repeats", type=int, default=5, help="timed repeats per workload"
    )
    run_parser.add_argument(
        "--warmup", type=int, default=1, help="untimed warmup repeats"
    )
    run_parser.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        help="run only NAME (repeatable; overrides the suite selection)",
    )
    run_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: BENCH_<suite>.json in the CWD)",
    )
    run_parser.add_argument(
        "--no-counters",
        action="store_true",
        help="skip the telemetry counter pass",
    )
    run_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"also write the report to {BASELINE_DIR}/BENCH_<suite>.json",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="print the report to stdout (progress goes to stderr)",
    )

    compare_parser = sub.add_parser(
        "compare", help="judge CANDIDATE against BASELINE"
    )
    compare_parser.add_argument("baseline", help="baseline BENCH json")
    compare_parser.add_argument("candidate", help="candidate BENCH json")
    _add_judgement_arguments(compare_parser)

    gate_parser = sub.add_parser(
        "gate",
        help="exit non-zero when the candidate has significant regressions",
    )
    gate_parser.add_argument(
        "--against",
        default=None,
        metavar="PATH",
        help="baseline report "
        f"(default: {BASELINE_DIR}/BENCH_<suite>.json)",
    )
    gate_parser.add_argument(
        "--candidate",
        default=None,
        metavar="PATH",
        help="candidate report; omitted = run the suite now",
    )
    gate_parser.add_argument(
        "--suite", choices=SUITES, default="quick", help="suite to gate"
    )
    gate_parser.add_argument(
        "--repeats", type=int, default=5,
        help="timed repeats when running the candidate suite",
    )
    gate_parser.add_argument(
        "--warmup", type=int, default=1,
        help="warmup repeats when running the candidate suite",
    )
    gate_parser.add_argument(
        "--strict-env",
        action="store_true",
        help="enforce regressions even when the environment fingerprints "
        "differ (default: warn and pass, since cross-machine timings "
        "are not comparable)",
    )
    _add_judgement_arguments(gate_parser)
    return parser


def _add_judgement_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--threshold",
        type=_parse_threshold,
        default=compare_mod.DEFAULT_THRESHOLD,
        metavar="PCT",
        help="noise allowance, e.g. 10%% or 0.1 "
        f"(default {compare_mod.DEFAULT_THRESHOLD:.0%})",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=compare_mod.DEFAULT_CONFIDENCE,
        help="bootstrap CI coverage (default %(default)s)",
    )
    parser.add_argument(
        "--resamples",
        type=int,
        default=compare_mod.DEFAULT_RESAMPLES,
        help="bootstrap resample count (default %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="bootstrap RNG seed"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )


def _list_main(args) -> int:
    suites = [args.suite] if args.suite else list(SUITES)
    seen = {}
    for suite in suites:
        for workload in workloads_for(suite):
            seen.setdefault(workload.name, workload)
    if args.json:
        print(
            json.dumps(
                {
                    name: {
                        "description": w.description,
                        "suites": list(w.suites),
                        "seed": w.seed,
                        "counters": list(w.counters),
                    }
                    for name, w in seen.items()
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for name, workload in seen.items():
        tags = ",".join(s for s in workload.suites if s != "full")
        print(f"{name:<30} [{tags:<20}] {workload.description}")
    print(f"{len(seen)} workload(s)")
    return 0


def _run_report(suite, repeats, warmup, workload, no_counters):
    return run_suite(
        suite,
        repeats=repeats,
        warmup=warmup,
        workload_names=workload,
        capture_counters=not no_counters,
        progress=stderr_progress,
    )


def _run_main(args) -> int:
    report = _run_report(
        args.suite, args.repeats, args.warmup, args.workload, args.no_counters
    )
    out = args.out or f"BENCH_{args.suite}.json"
    schema.write_report(report, out)
    print(f"bench: wrote {out}", file=sys.stderr)
    if args.update_baseline:
        baseline_path = f"{BASELINE_DIR}/BENCH_{args.suite}.json"
        schema.write_report(report, baseline_path)
        print(f"bench: updated baseline {baseline_path}", file=sys.stderr)
    if args.json:
        sys.stdout.write(schema.dumps_report(report))
    return 0


def _judge(args, baseline_path: str, candidate_report) -> compare_mod.Comparison:
    baseline = schema.load_report(baseline_path)
    return compare_mod.compare_reports(
        baseline,
        candidate_report,
        threshold=args.threshold,
        confidence=args.confidence,
        resamples=args.resamples,
        seed=args.seed,
    )


def _compare_main(args) -> int:
    try:
        comparison = _judge(
            args, args.baseline, schema.load_report(args.candidate)
        )
    except schema.BenchSchemaError as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(compare_mod.format_comparison(comparison))
    return 0


def _gate_main(args) -> int:
    baseline_path = args.against or f"{BASELINE_DIR}/BENCH_{args.suite}.json"
    try:
        if args.candidate is not None:
            candidate = schema.load_report(args.candidate)
        else:
            candidate = _run_report(
                args.suite, args.repeats, args.warmup, None, False
            )
        comparison = _judge(args, baseline_path, candidate)
    except schema.BenchSchemaError as exc:
        print(f"bench gate: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(compare_mod.format_comparison(comparison))
    regressed = comparison.regressed
    if comparison.environment_mismatch and not args.strict_env:
        if regressed:
            print(
                "bench gate: environment fingerprints differ — regressions "
                "reported above are NOT trustworthy across machines; "
                "passing anyway (use --strict-env to enforce, or refresh "
                "the baseline on this machine with "
                "`bench run --update-baseline`)",
                file=sys.stderr,
            )
        return 0
    if regressed:
        names = ", ".join(entry.name for entry in regressed)
        print(
            f"bench gate: {len(regressed)} regressed workload(s): {names}",
            file=sys.stderr,
        )
        return GATE_EXIT_CODE
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _list_main(args)
    if args.command == "run":
        return _run_main(args)
    if args.command == "compare":
        return _compare_main(args)
    return _gate_main(args)
