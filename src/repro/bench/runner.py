"""The measurement loop: warmup, GC pinning, interleaved timed rounds.

Per suite the runner performs, in order:

1. ``setup(seed)`` for every workload — untimed.
2. A *counter pass* per workload: one untimed ``run`` under a fresh
   telemetry collector, recording only the counters the workload
   declared.  Keeping this pass separate means (a) counter values are
   independent of ``--repeats`` and (b) the timed rounds run with
   telemetry disabled, on the no-op fast path, so instrumentation never
   skews a sample.
3. ``warmup`` untimed repeats per workload (caches, allocator).
4. ``repeats`` timed **rounds**, each visiting every workload once, under
   a pinned garbage collector (``gc.collect()`` then ``gc.disable()``)
   with monotonic :func:`time.perf_counter` timing.  Interleaving is
   deliberate: a workload's samples are spread across the suite's whole
   wall-clock window instead of being taken back-to-back, so slow drift
   of the environment (CPU frequency, a noisy neighbour) shows up as
   *within-run* spread — which widens the bootstrap confidence interval
   in :mod:`repro.bench.compare` exactly when the machine is too
   unstable to call a regression.
5. ``teardown`` for every workload — untimed.

Workloads with sub-millisecond bodies declare a fixed ``inner`` loop
count; a sample is then the mean over ``inner`` back-to-back calls,
which suppresses timer-resolution jitter without touching determinism
(the count is a registry constant, never calibrated at runtime).

The result is a schema-valid report (:mod:`repro.bench.schema`); its
workload list, seeds, and counters are deterministic across runs — only
the timings vary.
"""

from __future__ import annotations

import gc
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import telemetry
from repro.bench import schema
from repro.bench.workloads import Workload, get_workload, workloads_for

__all__ = ["run_suite", "run_workload", "stderr_progress"]


class _Bench:
    """Mutable measurement state of one workload during a suite run."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self.context: Any = None
        self.iteration = 0
        self.samples: List[float] = []
        self.counters: Dict[str, float] = {}

    def call(self) -> None:
        self.workload.run(self.context, self.iteration)
        self.iteration += 1

    def sample(self) -> None:
        inner = self.workload.inner
        start = time.perf_counter()
        for _ in range(inner):
            self.call()
        self.samples.append((time.perf_counter() - start) / inner)

    def entry(self) -> Dict[str, Any]:
        return schema.workload_entry(
            seed=self.workload.seed,
            samples_seconds=self.samples,
            counters=self.counters,
            description=self.workload.description,
            suites=list(self.workload.suites),
            inner=self.workload.inner,
        )


def _counter_pass(bench: _Bench) -> None:
    """One untimed run under a private collector; record the declared
    counters (missing ones as 0.0, so schema keys are stable)."""
    if not bench.workload.counters:
        bench.call()
        return
    # enable/disable stack: a fresh collector shadows any outer one for
    # the duration of the pass, so bench counters never leak into (or
    # absorb noise from) a surrounding --trace collector.
    with telemetry.session() as collector:
        bench.call()
    bench.counters = {
        name: float(collector.counter(name))
        for name in bench.workload.counters
    }


def _run_benches(
    benches: List[_Bench],
    *,
    repeats: int,
    warmup: int,
    capture_counters: bool,
    progress: Optional[Callable[[str], None]] = None,
) -> None:
    """Measure ``benches`` in place: setup, counters, warmup, rounds."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    active: List[_Bench] = []
    try:
        for bench in benches:
            if progress is not None:
                progress(f"bench: setup {bench.workload.name}")
            if bench.workload.setup is not None:
                bench.context = bench.workload.setup(bench.workload.seed)
            active.append(bench)
            if capture_counters:
                _counter_pass(bench)
            for _ in range(warmup):
                bench.call()
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for round_index in range(repeats):
                for bench in benches:
                    bench.sample()
                if progress is not None:
                    progress(f"bench: round {round_index + 1}/{repeats} done")
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        for bench in active:
            if bench.workload.teardown is not None:
                bench.workload.teardown(bench.context)


def run_workload(
    workload: Workload,
    *,
    repeats: int = 5,
    warmup: int = 1,
    capture_counters: bool = True,
) -> Dict[str, Any]:
    """Measure one workload alone; returns its schema workload entry."""
    bench = _Bench(workload)
    _run_benches(
        [bench],
        repeats=repeats,
        warmup=warmup,
        capture_counters=capture_counters,
    )
    return bench.entry()


def run_suite(
    suite: str = "quick",
    *,
    repeats: int = 5,
    warmup: int = 1,
    workload_names: Optional[Sequence[str]] = None,
    capture_counters: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run every workload of ``suite`` and assemble the report.

    Args:
        suite: suite tag (see :data:`repro.bench.workloads.SUITES`).
        repeats: timed rounds — every workload collects one sample per
            round, interleaved with all the others.
        warmup: untimed warmup repeats per workload.
        workload_names: explicit subset overriding the suite selection
            (the report still carries ``suite`` for labelling).
        capture_counters: run the telemetry counter pass (disable to
            shave a repeat off each workload; counters come back empty).
        progress: per-phase status callback (e.g. writes to stderr).
    """
    if workload_names:
        selected = [get_workload(name) for name in workload_names]
    else:
        selected = workloads_for(suite)
    if not selected:
        raise ValueError(f"suite {suite!r} selects no workloads")
    benches = [_Bench(workload) for workload in selected]
    _run_benches(
        benches,
        repeats=repeats,
        warmup=warmup,
        capture_counters=capture_counters,
        progress=progress,
    )
    entries: Dict[str, Dict[str, Any]] = {}
    for bench in benches:
        entry = bench.entry()
        entries[bench.workload.name] = entry
        if progress is not None:
            progress(
                f"bench: {bench.workload.name} median="
                f"{entry['stats']['median'] * 1e3:.3f}ms "
                f"over {repeats} rounds"
            )
    return schema.new_report(suite, entries, repeats=repeats, warmup=warmup)


def stderr_progress(message: str) -> None:
    """Default progress sink: stderr, so ``--json`` stdout stays pure."""
    print(message, file=sys.stderr, flush=True)
