"""The versioned ``BENCH_<suite>.json`` artifact schema.

Every benchmark artifact this repo emits — ``python -m repro bench run``
suites, the ``REPRO_BENCH_TELEMETRY=1`` per-figure dumps, and the smoke
tools — shares this one format so any two artifacts can be fed to
:mod:`repro.bench.compare` regardless of which harness produced them.

A report is a plain JSON object::

    {
      "schema": "repro.bench/v1",
      "version": 1,
      "suite": "quick",
      "repeats": 5,
      "warmup": 1,
      "environment": {"python": "...", "numpy": "...", "cpu_count": 8, ...},
      "workloads": {
        "micro.pipeline.warm": {
          "seed": 1234,
          "samples_seconds": [0.0021, 0.0019, ...],
          "counters": {"pipeline.cache.hits": 5.0},
          "stats": {"median": 0.0019, "mean": ..., "min": ..., "max": ...,
                    "p95": ...}
        },
        ...
      }
    }

Forward compatibility is part of the contract: :func:`validate_report`
checks only the fields it knows about, and :func:`load_report` /
:func:`write_report` round-trip unknown top-level and per-workload fields
untouched, so a newer writer's artifacts stay readable (and re-emittable)
by an older comparison engine.

Determinism is the other part: a report carries **no timestamps** and no
other run-local noise outside ``samples_seconds``/``stats``, so two runs
of an unchanged tree differ only in timings — exactly what
``bench compare`` is built to judge.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ReproError

#: Bump when the report layout changes incompatibly.
SCHEMA_VERSION = 1

#: The ``schema`` tag embedded in (and required of) every report.
SCHEMA_ID = f"repro.bench/v{SCHEMA_VERSION}"


class BenchSchemaError(ReproError):
    """A BENCH payload does not conform to the schema."""


def environment_fingerprint() -> Dict[str, Any]:
    """The measurement environment, for cross-machine sanity checks.

    Two reports whose fingerprints differ were *not* produced under
    comparable conditions; ``bench gate`` warns (and by default does not
    fail) when asked to judge such a pair.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count() or 1,
    }


def sample_stats(samples: Sequence[float]) -> Dict[str, float]:
    """Convenience aggregates stored alongside the raw samples.

    The raw ``samples_seconds`` stay authoritative — the comparison
    engine bootstraps from them, never from these.  Tail quantiles come
    from the telemetry :class:`~repro.telemetry.Histogram` (log-bucketed,
    the same aggregation every other duration metric in the repo uses).
    """
    from repro.telemetry import Histogram

    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise BenchSchemaError("a workload entry needs at least one sample")
    histogram = Histogram()
    for value in arr:
        histogram.observe(float(value))
    return {
        "median": float(np.median(arr)),
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p95": float(histogram.p95),
    }


def workload_entry(
    *,
    seed: Optional[int],
    samples_seconds: Sequence[float],
    counters: Optional[Dict[str, float]] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Build one schema-conformant workload entry."""
    entry: Dict[str, Any] = {
        "seed": seed,
        "samples_seconds": [float(s) for s in samples_seconds],
        "counters": {
            name: float(value) for name, value in (counters or {}).items()
        },
        "stats": sample_stats(samples_seconds),
    }
    entry.update(extra)
    return entry


def new_report(
    suite: str,
    workloads: Dict[str, Dict[str, Any]],
    *,
    repeats: int,
    warmup: int,
    environment: Optional[Dict[str, Any]] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Assemble (and validate) a full report."""
    report: Dict[str, Any] = {
        "schema": SCHEMA_ID,
        "version": SCHEMA_VERSION,
        "suite": suite,
        "repeats": int(repeats),
        "warmup": int(warmup),
        "environment": (
            environment if environment is not None else environment_fingerprint()
        ),
        "workloads": workloads,
    }
    report.update(extra)
    validate_report(report)
    return report


def schema_errors(payload: Any) -> List[str]:
    """All schema violations in ``payload`` (empty = valid).

    Only known fields are checked; unknown fields are legal and must be
    preserved by readers (forward compatibility).
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["report must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        errors.append(
            f"schema tag {payload.get('schema')!r} != {SCHEMA_ID!r}"
        )
    if payload.get("version") != SCHEMA_VERSION:
        errors.append(f"version {payload.get('version')!r} != {SCHEMA_VERSION}")
    if not isinstance(payload.get("suite"), str):
        errors.append("suite must be a string")
    for field in ("repeats", "warmup"):
        if not isinstance(payload.get(field), int):
            errors.append(f"{field} must be an integer")
    if not isinstance(payload.get("environment"), dict):
        errors.append("environment must be an object")
    workloads = payload.get("workloads")
    if not isinstance(workloads, dict):
        errors.append("workloads must be an object")
        return errors
    for name, entry in workloads.items():
        if not isinstance(entry, dict):
            errors.append(f"workload {name!r} must be an object")
            continue
        samples = entry.get("samples_seconds")
        if (
            not isinstance(samples, list)
            or not samples
            or not all(isinstance(s, (int, float)) for s in samples)
        ):
            errors.append(
                f"workload {name!r}: samples_seconds must be a non-empty "
                "list of numbers"
            )
        counters = entry.get("counters")
        if not isinstance(counters, dict):
            errors.append(f"workload {name!r}: counters must be an object")
        if "seed" in entry and not isinstance(entry["seed"], (int, type(None))):
            errors.append(f"workload {name!r}: seed must be an integer or null")
    return errors


def validate_report(payload: Any) -> Dict[str, Any]:
    """Raise :class:`BenchSchemaError` unless ``payload`` is schema-valid."""
    errors = schema_errors(payload)
    if errors:
        raise BenchSchemaError(
            "invalid BENCH report: " + "; ".join(errors)
        )
    return payload


def dumps_report(report: Dict[str, Any]) -> str:
    """Canonical serialization (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_report(report: Dict[str, Any], path: str) -> None:
    """Validate and write ``report`` to ``path`` (canonical form)."""
    validate_report(report)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_report(report))


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a report; unknown fields come back untouched."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise BenchSchemaError(f"no BENCH report at {path!r}") from None
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path!r} is not valid JSON: {exc}") from None
    return validate_report(payload)
