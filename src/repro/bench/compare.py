"""Statistical comparison of two BENCH reports.

Per workload present in both reports, the verdict comes from a seeded
bootstrap confidence interval on the **relative change of medians**
(:func:`repro.metrics.statistics.bootstrap_ratio_ci`), never a bare
mean-vs-mean comparison:

* ``regressed`` — the whole interval lies above ``+threshold``: the
  candidate is slower by more than the noise allowance, with
  ``confidence`` coverage.
* ``improved`` — the whole interval lies below ``-threshold``.
* ``neutral`` — everything else: the interval straddles zero, or the
  shift is within the noise threshold.

Workloads present in only one report are listed as ``added`` /
``removed`` and never affect the gate verdict (a new workload is not a
regression).  Counter drift (same workload, different recorded counter
values) is surfaced separately: counters are deterministic by contract,
so a drift means the *work itself* changed — e.g. a PR added circuit
executions — which is exactly the kind of silent behavioral change the
bench substrate exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.statistics import bootstrap_ci, bootstrap_ratio_ci

__all__ = [
    "DEFAULT_CONFIDENCE",
    "DEFAULT_RESAMPLES",
    "DEFAULT_THRESHOLD",
    "Comparison",
    "WorkloadComparison",
    "compare_reports",
    "format_comparison",
]

#: Relative noise allowance: shifts whose CI stays within ±10% are
#: neutral.  Timing medians over a handful of repeats routinely wobble a
#: few percent on a busy machine; 10% keeps same-tree comparisons quiet
#: while still flagging real hot-path regressions.
DEFAULT_THRESHOLD = 0.10
DEFAULT_CONFIDENCE = 0.95
DEFAULT_RESAMPLES = 2000


@dataclass(frozen=True)
class WorkloadComparison:
    """The verdict on one workload."""

    name: str
    verdict: str  # regressed | improved | neutral | added | removed
    baseline_median: Optional[float] = None
    candidate_median: Optional[float] = None
    #: Point estimate of the relative change (candidate/baseline - 1).
    change: Optional[float] = None
    #: Bootstrap CI of the relative change.
    change_ci: Optional[Tuple[float, float]] = None
    #: Per-side bootstrap CIs of the median itself (diagnostics).
    baseline_ci: Optional[Tuple[float, float]] = None
    candidate_ci: Optional[Tuple[float, float]] = None
    #: Counters whose recorded values differ: name -> (baseline, candidate).
    counter_drift: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "baseline_median": self.baseline_median,
            "candidate_median": self.candidate_median,
            "change": self.change,
            "change_ci": list(self.change_ci) if self.change_ci else None,
            "baseline_ci": list(self.baseline_ci) if self.baseline_ci else None,
            "candidate_ci": (
                list(self.candidate_ci) if self.candidate_ci else None
            ),
            "counter_drift": {
                name: list(values)
                for name, values in sorted(self.counter_drift.items())
            },
        }


@dataclass(frozen=True)
class Comparison:
    """The full report-vs-report comparison."""

    workloads: List[WorkloadComparison]
    threshold: float
    confidence: float
    environment_mismatch: List[str]

    def by_verdict(self, verdict: str) -> List[WorkloadComparison]:
        return [w for w in self.workloads if w.verdict == verdict]

    @property
    def regressed(self) -> List[WorkloadComparison]:
        return self.by_verdict("regressed")

    @property
    def improved(self) -> List[WorkloadComparison]:
        return self.by_verdict("improved")

    @property
    def counter_drifts(self) -> List[WorkloadComparison]:
        return [w for w in self.workloads if w.counter_drift]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "confidence": self.confidence,
            "environment_mismatch": list(self.environment_mismatch),
            "workloads": [w.to_dict() for w in self.workloads],
            "summary": {
                verdict: len(self.by_verdict(verdict))
                for verdict in (
                    "regressed", "improved", "neutral", "added", "removed"
                )
            },
        }


def _environment_mismatch(
    baseline: Dict[str, Any], candidate: Dict[str, Any]
) -> List[str]:
    """Human-readable mismatches between the two environment fingerprints."""
    base_env = baseline.get("environment", {}) or {}
    cand_env = candidate.get("environment", {}) or {}
    mismatches = []
    for key in sorted(set(base_env) | set(cand_env)):
        if base_env.get(key) != cand_env.get(key):
            mismatches.append(
                f"{key}: baseline={base_env.get(key)!r} "
                f"candidate={cand_env.get(key)!r}"
            )
    return mismatches


def compare_reports(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> Comparison:
    """Judge ``candidate`` against ``baseline``, workload by workload."""
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    base_workloads: Dict[str, Any] = baseline.get("workloads", {})
    cand_workloads: Dict[str, Any] = candidate.get("workloads", {})
    results: List[WorkloadComparison] = []
    for name in sorted(set(base_workloads) | set(cand_workloads)):
        if name not in cand_workloads:
            entry = base_workloads[name]
            results.append(
                WorkloadComparison(
                    name=name,
                    verdict="removed",
                    baseline_median=float(
                        np.median(entry["samples_seconds"])
                    ),
                )
            )
            continue
        if name not in base_workloads:
            entry = cand_workloads[name]
            results.append(
                WorkloadComparison(
                    name=name,
                    verdict="added",
                    candidate_median=float(
                        np.median(entry["samples_seconds"])
                    ),
                )
            )
            continue
        base_entry = base_workloads[name]
        cand_entry = cand_workloads[name]
        base_samples = [float(s) for s in base_entry["samples_seconds"]]
        cand_samples = [float(s) for s in cand_entry["samples_seconds"]]
        base_median = float(np.median(base_samples))
        cand_median = float(np.median(cand_samples))
        floor = np.finfo(float).tiny
        change = cand_median / max(base_median, floor) - 1.0
        change_ci = bootstrap_ratio_ci(
            base_samples,
            cand_samples,
            confidence=confidence,
            resamples=resamples,
            seed=seed,
        )
        if change_ci[0] > threshold:
            verdict = "regressed"
        elif change_ci[1] < -threshold:
            verdict = "improved"
        else:
            verdict = "neutral"
        drift: Dict[str, Tuple[float, float]] = {}
        base_counters = base_entry.get("counters", {}) or {}
        cand_counters = cand_entry.get("counters", {}) or {}
        for counter in set(base_counters) | set(cand_counters):
            base_value = float(base_counters.get(counter, 0.0))
            cand_value = float(cand_counters.get(counter, 0.0))
            if base_value != cand_value:
                drift[counter] = (base_value, cand_value)
        results.append(
            WorkloadComparison(
                name=name,
                verdict=verdict,
                baseline_median=base_median,
                candidate_median=cand_median,
                change=change,
                change_ci=change_ci,
                baseline_ci=bootstrap_ci(
                    base_samples,
                    confidence=confidence,
                    resamples=resamples,
                    seed=seed,
                ),
                candidate_ci=bootstrap_ci(
                    cand_samples,
                    confidence=confidence,
                    resamples=resamples,
                    seed=seed,
                ),
                counter_drift=drift,
            )
        )
    return Comparison(
        workloads=results,
        threshold=threshold,
        confidence=confidence,
        environment_mismatch=_environment_mismatch(baseline, candidate),
    )


_VERDICT_MARKS = {
    "regressed": "✗",
    "improved": "✓",
    "neutral": "·",
    "added": "+",
    "removed": "-",
}


def format_comparison(comparison: Comparison) -> str:
    """Plain-text comparison table plus summary lines."""
    lines = [
        f"{'':2}{'workload':<28} {'baseline':>12} {'candidate':>12} "
        f"{'change':>8}  {'95% CI':>18}  verdict"
    ]
    for entry in comparison.workloads:
        mark = _VERDICT_MARKS.get(entry.verdict, "?")
        base = (
            f"{entry.baseline_median * 1e3:.3f}ms"
            if entry.baseline_median is not None
            else "—"
        )
        cand = (
            f"{entry.candidate_median * 1e3:.3f}ms"
            if entry.candidate_median is not None
            else "—"
        )
        if entry.change is not None and entry.change_ci is not None:
            change = f"{entry.change * 100:+.1f}%"
            ci = (
                f"[{entry.change_ci[0] * 100:+.1f}%, "
                f"{entry.change_ci[1] * 100:+.1f}%]"
            )
        else:
            change, ci = "—", "—"
        lines.append(
            f"{mark:2}{entry.name:<28} {base:>12} {cand:>12} "
            f"{change:>8}  {ci:>18}  {entry.verdict}"
        )
        for counter, (was, now) in sorted(entry.counter_drift.items()):
            lines.append(
                f"  {'':28} counter drift: {counter} {was:g} -> {now:g}"
            )
    summary = comparison.to_dict()["summary"]
    lines.append(
        "summary: "
        + ", ".join(f"{count} {verdict}" for verdict, count in summary.items())
        + f" (threshold ±{comparison.threshold * 100:.0f}%, "
        f"{comparison.confidence * 100:.0f}% bootstrap CI on the median)"
    )
    if comparison.environment_mismatch:
        lines.append(
            "WARNING: environment fingerprints differ — timings are not "
            "comparable across machines; refresh the baseline "
            "(bench run --update-baseline):"
        )
        for mismatch in comparison.environment_mismatch:
            lines.append(f"  {mismatch}")
    return "\n".join(lines)
