"""The solve service: queue + dedup + store + worker pool.

:class:`SolverService` is the in-process orchestrator behind both the
HTTP API (:mod:`repro.service.http`) and direct Python embedding:

* :meth:`submit` resolves the problem payload, fingerprints the request,
  and short-circuits through the result store (instant ``DONE``) or the
  dedup index (coalesce onto the identical in-flight job) before ever
  touching the queue;
* worker threads drain the queue through the unified execution engine —
  the default runner builds a fresh
  :class:`~repro.core.solver.RasenganSolver` per attempt, so a service
  result is bit-for-bit identical to a direct ``solve`` run with the
  same spec;
* a process-wide shared compiled-circuit cache
  (:func:`repro.engine.configure_defaults`) is installed for the
  service's lifetime, so identical submissions amortize circuit
  synthesis even when dedup cannot coalesce them (e.g. back-to-back
  rather than concurrent);
* :meth:`close` supports both graceful drain (finish everything queued)
  and fast shutdown (cancel queued jobs, finish only what is running) —
  either way every worker thread is joined, no threads are orphaned.

Failure semantics: a job attempt that raises is retried up to
``spec.max_retries`` times with exponential backoff; a job whose
wall-clock deadline expires fails immediately with a timeout error
(whether it expired waiting in the queue or mid-execution); a failed or
timed-out primary propagates its failure to every coalesced follower.
Nothing is stored under a fingerprint except a successful result.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro import telemetry
from repro.engine import CircuitCache, configure_defaults
from repro.problems.io import problem_from_dict, problem_to_dict
from repro.problems.registry import make_benchmark
from repro.service.dedup import DedupIndex, job_fingerprint
from repro.service.jobs import (
    Job,
    JobQueue,
    JobSpec,
    JobState,
    JobTimeoutError,
    ServiceError,
    run_with_deadline,
)
from repro.service.store import ResultStore

#: Runner signature: JobSpec -> JSON-compatible result record.
JobRunner = Callable[[JobSpec], Dict[str, Any]]


def default_runner(spec: JobSpec) -> Dict[str, Any]:
    """Execute one solve through the unified engine.

    Reconstructs the problem and configuration exactly as the ``solve``
    CLI does, so the returned record is bit-for-bit identical to a
    direct run with the same spec.
    """
    from repro.core.solver import RasenganSolver

    problem = problem_from_dict(spec.problem)
    config = spec.solver_config()
    solver = RasenganSolver(problem, backend=spec.backend, config=config)
    try:
        result = solver.solve()
    finally:
        solver.engine.close()
    return result.to_json_dict()


class SolverService:
    """Long-running multi-tenant solve service.

    Args:
        workers: worker-thread count draining the job queue.  Each job
            may additionally fan out over engine processes via its own
            ``engine_workers`` config.
        store: result store (default: a memory-only
            :class:`~repro.service.store.ResultStore`).
        runner: job execution function (injectable for tests; default
            runs :func:`default_runner`).
        sleep: sleep function used for retry backoff (injectable).
        shared_cache_size: capacity of the process-wide compiled-circuit
            cache installed while the service runs; ``0`` disables
            sharing.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        store: Optional[ResultStore] = None,
        runner: Optional[JobRunner] = None,
        sleep: Callable[[float], None] = time.sleep,
        shared_cache_size: int = 512,
    ) -> None:
        if workers < 1:
            raise ServiceError("workers must be >= 1")
        self.workers = int(workers)
        self.queue = JobQueue()
        self.dedup = DedupIndex()
        self.store = store if store is not None else ResultStore()
        self._runner = runner if runner is not None else default_runner
        self._sleep = sleep
        self._shared_cache_size = int(shared_cache_size)
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._running_count = 0
        self._idle = threading.Condition()
        self._previous_defaults = None
        self._started = False
        self._closed = False
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SolverService":
        """Install the shared circuit cache and spawn the worker pool."""
        if self._started:
            return self
        if self._closed:
            raise ServiceError("service already closed")
        if self._shared_cache_size > 0:
            self._previous_defaults = configure_defaults(
                cache=CircuitCache(self._shared_cache_size)
            )
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._started = True
        return self

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the service down and join every worker thread.

        ``drain=True`` (graceful) finishes all queued and running jobs
        first; ``drain=False`` cancels queued jobs (running ones still
        finish — the engine has no preemption points) before stopping
        the workers.
        """
        if self._closed:
            return
        self._closed = True
        if self._started and drain:
            self.drain(timeout=timeout)
        if not drain:
            # Cancel queued work *before* waking the workers, so none of
            # it slips through between close() and the cancellations.
            for job in self.queue.drain_pending():
                if job.cancel():
                    self._settle_followers(job)
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._previous_defaults is not None:
            configure_defaults(cache=self._previous_defaults.cache)
            self._previous_defaults = None

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no job is running.

        Returns True when fully drained, False on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while len(self.queue) > 0 or self._running_count > 0:
                if deadline is None:
                    self._idle.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._idle.wait(remaining):
                        return False
        return True

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        problem: Optional[Dict[str, Any]] = None,
        *,
        benchmark: Optional[str] = None,
        case: int = 0,
        config: Optional[Dict[str, Any]] = None,
        backend: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.1,
    ) -> Job:
        """Submit one solve request; returns its :class:`Job` immediately.

        Exactly one of ``problem`` (a serialized payload) or
        ``benchmark`` (+ ``case``; resolved through the paper's benchmark
        registry) must be given.  The request is deduplicated before
        queueing: a stored result completes the job instantly, an
        identical in-flight request absorbs it as a follower.
        """
        if self._closed:
            raise ServiceError("service is closed")
        if (problem is None) == (benchmark is None):
            raise ServiceError("provide exactly one of problem= or benchmark=")
        if benchmark is not None:
            payload = problem_to_dict(make_benchmark(benchmark, case=case))
        else:
            # Round-trip through the constructor: validates the payload at
            # submission time (not on a worker) and canonicalises it so the
            # fingerprint is independent of the submitter's formatting.
            payload = problem_to_dict(problem_from_dict(problem))
        spec = JobSpec(
            problem=payload,
            config=dict(config or {}),
            backend=backend,
            priority=int(priority),
            timeout=timeout,
            max_retries=int(max_retries),
            retry_backoff=float(retry_backoff),
        )
        job = Job(spec, fingerprint=job_fingerprint(spec))
        with self._jobs_lock:
            self._jobs[job.id] = job
        telemetry.add("service.jobs.submitted")

        cached = self.store.get(job.fingerprint)
        if cached is not None:
            job.mark_done(cached, from_cache=True)
            return job
        primary = self.dedup.admit(job)
        if primary is not None:
            # Re-check: the primary may have finished between the store
            # lookup and admit; settle immediately from its outcome.
            if primary.state.terminal:
                self._copy_outcome(primary, job)
            return job
        self.queue.put(job)
        return job

    # ------------------------------------------------------------------
    # Introspection / control
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._jobs_lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Job counts per state (for the health endpoint)."""
        counts: Dict[str, int] = {state.value: 0 for state in JobState}
        for job in self.jobs():
            counts[job.state.value] += 1
        return counts

    def cancel(self, job_id: str) -> bool:
        job = self.get(job_id)
        if job is None:
            return False
        cancelled = job.cancel()
        if cancelled:
            telemetry.add("service.jobs.cancelled")
            self._settle_followers(job)
        return cancelled

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:
                return
            with self._idle:
                self._running_count += 1
            try:
                self._execute(job)
            finally:
                with self._idle:
                    self._running_count -= 1
                    self._idle.notify_all()

    def _execute(self, job: Job) -> None:
        if job.expired():
            telemetry.add("service.jobs.timeouts")
            job.mark_failed(
                f"deadline expired after {job.spec.timeout:.3f}s in queue"
            )
            self._settle_followers(job)
            return
        if not job.mark_running():
            # Cancelled between dequeue and here.
            self._settle_followers(job)
            return
        spec = job.spec
        problem_name = spec.problem.get("name", spec.problem.get("type"))
        with telemetry.span(
            "service.job",
            job=job.id,
            problem=problem_name,
            priority=spec.priority,
        ) as job_span:
            failure: Optional[str] = None
            record: Optional[Dict[str, Any]] = None
            for attempt in range(spec.max_retries + 1):
                job.attempts += 1
                try:
                    record = run_with_deadline(
                        lambda: self._runner(spec),
                        job.remaining(),
                        label=job.id,
                    )
                    failure = None
                    break
                except JobTimeoutError as exc:
                    telemetry.add("service.jobs.timeouts")
                    failure = str(exc)
                    break  # the deadline is gone; retrying cannot help
                except Exception as exc:  # noqa: BLE001 — jobs isolate failures
                    failure = f"{type(exc).__name__}: {exc}"
                    if attempt >= spec.max_retries or job.cancel_requested:
                        break
                    telemetry.add("service.jobs.retries")
                    self._sleep(spec.retry_backoff * (2 ** attempt))
            job_span.set(attempts=job.attempts, state="failed" if failure else "done")
            if failure is None and record is not None:
                telemetry.add("service.jobs.executed")
                self.store.put(job.fingerprint, record)
                job.mark_done(record)
            else:
                telemetry.add("service.jobs.failed")
                job.mark_failed(failure or "runner returned no record")
            if job.started_at is not None and job.finished_at is not None:
                telemetry.observe(
                    "service.jobs.run_seconds", job.finished_at - job.started_at
                )
        self._settle_followers(job)

    def _settle_followers(self, primary: Job) -> None:
        """Propagate a terminal primary's outcome to coalesced followers."""
        if primary.fingerprint is None or primary.coalesced_into is not None:
            return
        for follower in self.dedup.resolve(primary.fingerprint, primary):
            self._copy_outcome(primary, follower)

    @staticmethod
    def _copy_outcome(primary: Job, follower: Job) -> None:
        if primary.state is JobState.DONE and primary.result is not None:
            follower.mark_done(primary.result)
        elif primary.state is JobState.CANCELLED:
            follower.cancel()
        else:
            follower.mark_failed(
                primary.error or f"coalesced job {primary.id} failed"
            )
