"""The solve service: queue + dedup + store + worker pool.

:class:`SolverService` is the in-process orchestrator behind both the
HTTP API (:mod:`repro.service.http`) and direct Python embedding:

* :meth:`submit` resolves the problem payload, fingerprints the request,
  and short-circuits through the result store (instant ``DONE``) or the
  dedup index (coalesce onto the identical in-flight job) before ever
  touching the queue;
* worker threads drain the queue through the unified execution engine —
  the default runner builds a fresh
  :class:`~repro.core.solver.RasenganSolver` per attempt, so a service
  result is bit-for-bit identical to a direct ``solve`` run with the
  same spec;
* a process-wide shared compiled-circuit cache
  (:func:`repro.engine.configure_defaults`) is installed for the
  service's lifetime, so identical submissions amortize circuit
  synthesis even when dedup cannot coalesce them (e.g. back-to-back
  rather than concurrent);
* :meth:`close` supports both graceful drain (finish everything queued)
  and fast shutdown (cancel queued jobs, finish only what is running) —
  either way every worker thread is joined under one shared ``timeout``
  budget, no threads are orphaned.

Failure semantics: a job attempt that raises is retried up to
``spec.max_retries`` times with exponential backoff — the backoff sleep
is capped at the job's remaining deadline and wakes early when
cancellation is requested; a job whose wall-clock deadline expires fails
immediately with a timeout error (whether it expired waiting in the
queue or mid-execution); a failed or timed-out primary propagates its
failure to every coalesced follower.  Nothing is stored under a
fingerprint except a successful result.

Crash safety (exercised by ``tests/test_service_chaos.py`` and the
``worker.run`` fault point): a worker thread that dies — a
:class:`~repro.faults.WorkerCrash` injection or any exception escaping
job isolation — settles its in-flight job as FAILED, propagates the
outcome to followers, and **respawns a replacement thread**, so pool
capacity never decays and no job is left stuck in a non-terminal state.
Terminal jobs are kept for a polling grace window (``job_ttl``) and then
swept (``service.jobs.evicted``), bounding memory under sustained
traffic; an optional :class:`~repro.service.journal.JobJournal` records
every lifecycle event so a restarted service can report what a crash
interrupted.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro import faults, telemetry

_LOG = logging.getLogger("repro.service")
from repro.engine import CircuitCache, configure_defaults
from repro.faults import WorkerCrash
from repro.pipeline import ArtifactCache, capture_report, configure_cache
from repro.problems.io import problem_from_dict, problem_to_dict
from repro.problems.registry import make_benchmark
from repro.service.dedup import DedupIndex, job_fingerprint
from repro.service.journal import JobJournal
from repro.service.jobs import (
    Job,
    JobQueue,
    JobSpec,
    JobState,
    JobTimeoutError,
    ServiceError,
    run_with_deadline,
)
from repro.service.store import ResultStore

#: Runner signature: JobSpec -> JSON-compatible result record.
JobRunner = Callable[[JobSpec], Dict[str, Any]]


def default_runner(spec: JobSpec) -> Dict[str, Any]:
    """Execute one solve through the unified engine.

    Reconstructs the problem and configuration exactly as the ``solve``
    CLI does, so the returned record is bit-for-bit identical to a
    direct run with the same spec.
    """
    from repro.core.solver import RasenganSolver

    problem = problem_from_dict(spec.problem)
    config = spec.solver_config()
    solver = RasenganSolver(problem, backend=spec.backend, config=config)
    try:
        result = solver.solve()
    finally:
        solver.engine.close()
    return result.to_json_dict()


class SolverService:
    """Long-running multi-tenant solve service.

    Args:
        workers: worker-thread count draining the job queue.  Each job
            may additionally fan out over engine processes via its own
            ``engine_workers`` config.
        store: result store (default: a memory-only
            :class:`~repro.service.store.ResultStore`).
        runner: job execution function (injectable for tests; default
            runs :func:`default_runner`).
        sleep: retry-backoff sleep function (injectable for tests).
            ``None`` — the default — uses a cancellation-aware wait that
            wakes as soon as the job is cancelled.
        shared_cache_size: capacity of the process-wide compiled-circuit
            cache installed while the service runs; ``0`` disables
            sharing.
        artifact_cache_size: capacity of the process-wide pipeline
            :class:`~repro.pipeline.cache.ArtifactCache` installed while
            the service runs — jobs over the same problem coalesce at
            *stage* granularity (a job differing only in shots or
            optimizer budget reuses every pre-execution artifact); ``0``
            keeps the ambient default cache.
        artifact_spill_dir: optional spill directory for the service's
            artifact cache, persisting artifacts across restarts.
        max_jobs: soft capacity of the in-memory job index; when
            exceeded, the oldest *terminal* jobs are evicted first
            (non-terminal jobs are never evicted).
        job_ttl: grace window in seconds that a terminal job stays
            pollable over HTTP after finishing; ``None`` keeps terminal
            jobs until the capacity sweep needs the room.
        journal: optional :class:`~repro.service.journal.JobJournal`
            recording every job lifecycle event for post-crash triage.
        slow_job_seconds: execution-time threshold above which a finished
            job is logged (``repro.service`` logger, WARNING) and counted
            in ``service.jobs.slow``; ``None`` disables the slow-job log.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        store: Optional[ResultStore] = None,
        runner: Optional[JobRunner] = None,
        sleep: Optional[Callable[[float], None]] = None,
        shared_cache_size: int = 512,
        artifact_cache_size: int = 256,
        artifact_spill_dir: Optional[str] = None,
        max_jobs: int = 4096,
        job_ttl: Optional[float] = 900.0,
        journal: Optional[JobJournal] = None,
        slow_job_seconds: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError("workers must be >= 1")
        if max_jobs < 1:
            raise ServiceError("max_jobs must be >= 1")
        self.workers = int(workers)
        self.queue = JobQueue()
        self.dedup = DedupIndex()
        self.store = store if store is not None else ResultStore()
        self.journal = journal
        self.max_jobs = int(max_jobs)
        self.job_ttl = None if job_ttl is None else float(job_ttl)
        self.slow_job_seconds = (
            None if slow_job_seconds is None else float(slow_job_seconds)
        )
        self._runner = runner if runner is not None else default_runner
        self._sleep = sleep
        self._shared_cache_size = int(shared_cache_size)
        self._artifact_cache_size = int(artifact_cache_size)
        self._artifact_spill_dir = artifact_spill_dir
        self._previous_artifact_cache: Optional[ArtifactCache] = None
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._threads_lock = threading.Lock()
        self._running_count = 0
        self._idle = threading.Condition()
        self._previous_defaults = None
        self._started = False
        self._closed = False
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SolverService":
        """Install the shared circuit cache and spawn the worker pool."""
        if self._started:
            return self
        if self._closed:
            raise ServiceError("service already closed")
        if self._shared_cache_size > 0:
            self._previous_defaults = configure_defaults(
                cache=CircuitCache(self._shared_cache_size)
            )
        if self._artifact_cache_size > 0:
            self._previous_artifact_cache = configure_cache(
                ArtifactCache(
                    max_entries=self._artifact_cache_size,
                    spill_dir=self._artifact_spill_dir,
                )
            )
        for _ in range(self.workers):
            self._spawn_worker()
        self._started = True
        return self

    def _spawn_worker(self) -> None:
        with self._threads_lock:
            index = len(self._threads)
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the service down and join every worker thread.

        ``drain=True`` (graceful) finishes all queued and running jobs
        first; ``drain=False`` cancels queued jobs (running ones still
        finish — the engine has no preemption points) before stopping
        the workers.  ``timeout`` is one **shared** wall-clock budget
        covering the drain and every thread join, not a per-thread
        allowance.
        """
        if self._closed:
            return
        self._closed = True
        deadline = None if timeout is None else time.monotonic() + timeout
        if self._started and drain:
            self.drain(
                timeout=None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
        if not drain:
            # Cancel queued work *before* waking the workers, so none of
            # it slips through between close() and the cancellations.
            for job in self.queue.drain_pending():
                if job.cancel():
                    self._journal("cancelled", job)
                    self._settle_followers(job)
        self.queue.close()
        with self._threads_lock:
            threads = list(self._threads)
        for thread in threads:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
        with self._threads_lock:
            self._threads = [t for t in self._threads if t.is_alive()]
        if self._previous_defaults is not None:
            configure_defaults(cache=self._previous_defaults.cache)
            self._previous_defaults = None
        if self._previous_artifact_cache is not None:
            configure_cache(self._previous_artifact_cache)
            self._previous_artifact_cache = None
        if self.journal is not None:
            self.journal.record("service.stop")

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no job is running.

        Returns True when fully drained, False on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while len(self.queue) > 0 or self._running_count > 0:
                if deadline is None:
                    self._idle.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._idle.wait(remaining):
                        return False
        return True

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        problem: Optional[Dict[str, Any]] = None,
        *,
        benchmark: Optional[str] = None,
        case: int = 0,
        config: Optional[Dict[str, Any]] = None,
        backend: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.1,
    ) -> Job:
        """Submit one solve request; returns its :class:`Job` immediately.

        Exactly one of ``problem`` (a serialized payload) or
        ``benchmark`` (+ ``case``; resolved through the paper's benchmark
        registry) must be given.  The request is deduplicated before
        queueing: a stored result completes the job instantly, an
        identical in-flight request absorbs it as a follower.
        """
        if self._closed:
            raise ServiceError("service is closed")
        if (problem is None) == (benchmark is None):
            raise ServiceError("provide exactly one of problem= or benchmark=")
        self._sweep_jobs()
        if benchmark is not None:
            payload = problem_to_dict(make_benchmark(benchmark, case=case))
        else:
            # Round-trip through the constructor: validates the payload at
            # submission time (not on a worker) and canonicalises it so the
            # fingerprint is independent of the submitter's formatting.
            payload = problem_to_dict(problem_from_dict(problem))
        spec = JobSpec(
            problem=payload,
            config=dict(config or {}),
            backend=backend,
            priority=int(priority),
            timeout=timeout,
            max_retries=int(max_retries),
            retry_backoff=float(retry_backoff),
        )
        job = Job(spec, fingerprint=job_fingerprint(spec))
        with self._jobs_lock:
            self._jobs[job.id] = job
        telemetry.add("service.jobs.submitted")
        self._journal("submitted", job)

        cached = self.store.get(job.fingerprint)
        if cached is not None:
            job.mark_done(cached, from_cache=True)
            self._journal("done", job, detail="cache")
            return job
        primary = self.dedup.admit(job)
        if primary is not None:
            job.record_event("coalesced", primary=primary.id)
            # Re-check: the primary may have finished between the store
            # lookup and admit; settle immediately from its outcome.
            if primary.state.terminal:
                self._copy_outcome(primary, job)
            return job
        self.queue.put(job)
        return job

    def _sweep_jobs(self) -> int:
        """Evict terminal jobs past their grace window or over capacity.

        Terminal jobs older than ``job_ttl`` are dropped; if the index is
        still over ``max_jobs``, the oldest-finished terminal jobs go
        next.  Non-terminal jobs are never evicted — under a flood of
        live work the index may exceed ``max_jobs`` until jobs settle.
        """
        now = time.monotonic()
        evicted = 0
        with self._jobs_lock:
            if self.job_ttl is not None:
                for job_id, job in list(self._jobs.items()):
                    if (
                        job.state.terminal
                        and job.finished_at is not None
                        and now - job.finished_at >= self.job_ttl
                    ):
                        del self._jobs[job_id]
                        evicted += 1
            if len(self._jobs) > self.max_jobs:
                terminal = sorted(
                    (
                        job
                        for job in self._jobs.values()
                        if job.state.terminal and job.finished_at is not None
                    ),
                    key=lambda item: item.finished_at,
                )
                for job in terminal:
                    if len(self._jobs) <= self.max_jobs:
                        break
                    del self._jobs[job.id]
                    evicted += 1
        if evicted:
            telemetry.add("service.jobs.evicted", evicted)
        return evicted

    # ------------------------------------------------------------------
    # Introspection / control
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._jobs_lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Job counts per state (for the health endpoint)."""
        counts: Dict[str, int] = {state.value: 0 for state in JobState}
        for job in self.jobs():
            counts[job.state.value] += 1
        return counts

    def interrupted_jobs(self) -> List[str]:
        """Job ids a previous process left unfinished (from the journal)."""
        if self.journal is None:
            return []
        return list(self.journal.interrupted)

    def cancel(self, job_id: str) -> bool:
        job = self.get(job_id)
        if job is None:
            return False
        cancelled = job.cancel()
        if cancelled:
            telemetry.add("service.jobs.cancelled")
            self._journal("cancelled", job)
            self._settle_followers(job)
        return cancelled

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:
                return
            with self._idle:
                self._running_count += 1
            crashed = False
            try:
                try:
                    self._execute(job)
                except WorkerCrash as exc:
                    # Injected (or real) worker death: settle the job it
                    # held, then let this thread die and be replaced.
                    crashed = True
                    self._settle_crash(job, str(exc) or "worker crashed")
                except Exception as exc:  # noqa: BLE001 — a service bug
                    # must not strand the job or silently kill the worker.
                    self._settle_crash(
                        job, f"worker error: {type(exc).__name__}: {exc}"
                    )
            finally:
                with self._idle:
                    self._running_count -= 1
                    self._idle.notify_all()
            if crashed:
                self._respawn()
                return

    def _settle_crash(self, job: Job, message: str) -> None:
        """Settle a job whose worker died outside normal job isolation."""
        telemetry.add("service.workers.crashed")
        if job.mark_failed(message):
            telemetry.add("service.jobs.failed")
            self._journal("crashed", job, detail=message)
        self._settle_followers(job)

    def _respawn(self) -> None:
        """Replace a crashed worker thread so pool capacity never decays."""
        if self._closed:
            return
        telemetry.add("service.workers.respawned")
        self._spawn_worker()

    def _execute(self, job: Job) -> None:
        if job.expired():
            telemetry.add("service.jobs.timeouts")
            job.mark_failed(
                f"deadline expired after {job.spec.timeout:.3f}s in queue"
            )
            self._journal("failed", job, detail="deadline expired in queue")
            self._settle_followers(job)
            return
        if not job.mark_running():
            # Cancelled between dequeue and here.
            self._settle_followers(job)
            return
        if job.started_at is not None:
            telemetry.observe(
                "service.jobs.queue_seconds", job.started_at - job.submitted_at
            )
        self._journal("running", job)
        spec = job.spec
        problem_name = spec.problem.get("name", spec.problem.get("type"))
        with telemetry.span(
            "service.job",
            job=job.id,
            problem=problem_name,
            priority=spec.priority,
        ) as job_span:
            failure: Optional[str] = None
            timed_out = False
            record: Optional[Dict[str, Any]] = None
            for attempt in range(spec.max_retries + 1):
                job.attempts += 1
                try:
                    faults.point("worker.run")
                    record = run_with_deadline(
                        lambda: self._run_captured(job, spec),
                        job.remaining(),
                        label=job.id,
                    )
                    failure = None
                    break
                except JobTimeoutError as exc:
                    telemetry.add("service.jobs.timeouts")
                    failure = str(exc)
                    timed_out = True
                    break  # the deadline is gone; retrying cannot help
                except Exception as exc:  # noqa: BLE001 — jobs isolate failures
                    failure = f"{type(exc).__name__}: {exc}"
                    if attempt >= spec.max_retries or job.cancel_requested:
                        break
                    telemetry.add("service.jobs.retries")
                    job.record_event(
                        "retry", attempt=attempt + 1, error=failure
                    )
                    if self._backoff(job, attempt):
                        break  # cancellation interrupted the backoff
            if failure is None and record is not None:
                state = "done"
            elif job.cancel_requested and not timed_out:
                state = "cancelled"
            else:
                state = "failed"
            job_span.set(attempts=job.attempts, state=state)
            if state == "done":
                telemetry.add("service.jobs.executed")
                self.store.put(job.fingerprint, record)
                job.mark_done(record)
                self._journal("done", job)
            elif state == "cancelled":
                job.mark_cancelled()
                telemetry.add("service.jobs.cancelled")
                self._journal("cancelled", job, detail=failure)
            else:
                telemetry.add("service.jobs.failed")
                job.mark_failed(failure or "runner returned no record")
                self._journal("failed", job, detail=failure)
            if job.started_at is not None and job.finished_at is not None:
                elapsed = job.finished_at - job.started_at
                telemetry.observe("service.jobs.run_seconds", elapsed)
                if (
                    self.slow_job_seconds is not None
                    and elapsed >= self.slow_job_seconds
                ):
                    telemetry.add("service.jobs.slow")
                    _LOG.warning(
                        "slow job %s (%s): %.3fs >= %.3fs threshold, state=%s",
                        job.id,
                        problem_name,
                        elapsed,
                        self.slow_job_seconds,
                        state,
                    )
        # Flight recorder: attach this execution's span tree to the job
        # record (the span has ended by here, so its duration is final).
        if isinstance(job_span, telemetry.Span):
            job.trace = job_span.to_dict()
        self._settle_followers(job)

    def _run_captured(self, job: Job, spec: JobSpec) -> Dict[str, Any]:
        """Run the job's runner, recording its pipeline stage resolutions.

        Runs inside :func:`run_with_deadline`'s callable so the capture
        lives on whichever thread actually executes the runner.  The
        resulting ``pipeline`` timeline event shows — per stage — the
        fingerprint prefix and whether the artifact was a cache hit,
        i.e. how much of the job coalesced at stage granularity.
        """
        with capture_report() as stages:
            record = self._runner(spec)
        if stages:
            job.record_event(
                "pipeline",
                stages=[
                    {
                        "stage": entry["stage"],
                        "fingerprint": entry["fingerprint"][:12],
                        "source": entry["source"],
                    }
                    for entry in stages
                ],
            )
        return record

    def _backoff(self, job: Job, attempt: int) -> bool:
        """Sleep before retry ``attempt + 1``; True when cancelled mid-sleep.

        The exponential delay is capped at the job's remaining deadline —
        sleeping past it would burn wall-clock the next attempt no longer
        has — and the default sleep wakes immediately on cancellation.
        """
        delay = job.spec.retry_backoff * (2 ** attempt)
        remaining = job.remaining()
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))
        if delay > 0.0:
            if self._sleep is not None:
                self._sleep(delay)
            else:
                job.wait_cancel(delay)
        return job.cancel_requested

    # ------------------------------------------------------------------
    # Settlement plumbing
    # ------------------------------------------------------------------
    def _journal(self, event: str, job: Job, detail: Optional[str] = None) -> None:
        if self.journal is not None:
            self.journal.record(
                event, job.id, fingerprint=job.fingerprint, detail=detail
            )

    def _settle_followers(self, primary: Job) -> None:
        """Propagate a terminal primary's outcome to coalesced followers."""
        if primary.fingerprint is None or primary.coalesced_into is not None:
            return
        for follower in self.dedup.resolve(primary.fingerprint, primary):
            self._copy_outcome(primary, follower)

    def _copy_outcome(self, primary: Job, follower: Job) -> None:
        if primary.state is JobState.DONE and primary.result is not None:
            if follower.mark_done(primary.result):
                self._journal("done", follower, detail="coalesced")
        elif primary.state is JobState.CANCELLED:
            if follower.cancel():
                self._journal("cancelled", follower, detail="coalesced")
        else:
            if follower.mark_failed(
                primary.error or f"coalesced job {primary.id} failed"
            ):
                self._journal("failed", follower, detail="coalesced")
