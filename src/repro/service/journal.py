"""Job-event journal: an append-only JSONL record of job lifecycle.

The result store remembers *successful* work; the journal remembers
*everything that happened* — submissions, executions starting, terminal
outcomes, worker crashes — so a restarted service can report what died
mid-flight instead of silently forgetting it.  One JSON object per
line::

    {"event": "running", "job": "1f2e3d4c5b6a", "fingerprint": "9c0f…",
     "ts": 1754500000.0}

On construction over an existing file the journal replays it and
computes :attr:`interrupted`: the job ids whose last recorded event is
non-terminal (``submitted``/``running``) before the new
``service.start`` marker — i.e. jobs a previous process accepted but
never settled.  The count lands in ``service.journal.interrupted`` and
the ids are exposed through
:meth:`~repro.service.workers.SolverService.interrupted_jobs` and the
``/healthz`` endpoint.

Durability mirrors the result store: appends happen under their own
lock with a ``journal.append`` fault point, failures are contained
(``service.journal.append_errors``), and replay tolerates a torn
trailing line (``service.journal.quarantined``) — a journal exists to
survive crashes, so it must never brick a restart itself.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro import faults, telemetry

_LOG = logging.getLogger("repro.service")

#: Events that settle a job (mirror JobState terminal states, plus the
#: crash marker recorded when a worker dies holding the job).
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled", "crashed"})

#: Non-terminal lifecycle events.
OPEN_EVENTS = frozenset({"submitted", "running"})


class JobJournal:
    """Append-only JSONL journal of job lifecycle events.

    Args:
        path: journal file; created on first event.  An existing file is
            replayed to find jobs interrupted by a previous process.
        clock: wall-clock source for event timestamps (injectable).
    """

    def __init__(self, path: str, *, clock=time.time) -> None:
        self.path = path
        self._clock = clock
        self._lock = threading.Lock()
        #: Length of the current run of consecutive append failures; the
        #: first failure of a streak is logged, the rest only counted.
        self._append_failure_streak = 0
        #: Job ids a previous process left non-terminal.
        self.interrupted: List[str] = []
        #: Torn trailing lines skipped during replay.
        self.quarantined = 0
        if os.path.exists(path):
            self._replay(path)
        if self.interrupted:
            telemetry.add(
                "service.journal.interrupted", len(self.interrupted)
            )
        self.record("service.start")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(
        self,
        event: str,
        job_id: Optional[str] = None,
        *,
        fingerprint: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Append one event; failures are contained, never raised."""
        entry: Dict[str, Any] = {"event": event, "ts": self._clock()}
        if job_id is not None:
            entry["job"] = job_id
        if fingerprint is not None:
            entry["fingerprint"] = fingerprint
        if detail is not None:
            entry["detail"] = detail
        data = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        try:
            with self._lock:
                directive = faults.point("journal.append")
                if isinstance(directive, faults.TruncateDirective):
                    with open(self.path, "ab") as handle:
                        handle.write(directive.cut(data))
                    raise faults.InjectedFault(
                        f"torn journal append at {self.path!r}"
                    )
                with open(self.path, "ab") as handle:
                    handle.write(data)
        except Exception:  # noqa: BLE001 — the journal is best-effort,
            # but "best-effort" must not mean "silent": count every
            # failure (mirroring service.store.append_errors) and log the
            # first of each streak so operators see the disk going bad
            # without a line of noise per event.
            telemetry.add("service.journal.append_errors")
            self._append_failure_streak += 1
            if self._append_failure_streak == 1:
                _LOG.warning(
                    "journal append to %r failed (event %r); suppressing "
                    "further warnings until an append succeeds",
                    self.path,
                    event,
                    exc_info=True,
                )
        else:
            if self._append_failure_streak:
                _LOG.info(
                    "journal append to %r recovered after %d failure(s)",
                    self.path,
                    self._append_failure_streak,
                )
            self._append_failure_streak = 0

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(self, path: str) -> None:
        """Compute the interrupted-job set from an existing journal.

        Tolerates a torn trailing line (quarantined and truncated away,
        like the result store); any other malformed line is skipped —
        the journal is advisory history, losing one event must not stop
        a restart.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        chunks = data.split(b"\n")
        last_payload = None
        for index, chunk in enumerate(chunks):
            if chunk.strip():
                last_payload = index
        open_jobs: Dict[str, str] = {}
        good_end = 0
        offset = 0
        torn = False
        for index, chunk in enumerate(chunks):
            offset += len(chunk) + 1
            if not chunk.strip():
                if index < len(chunks) - 1:
                    good_end = min(offset, len(data))
                continue
            try:
                entry = json.loads(chunk.decode("utf-8"))
                event = entry["event"]
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                if index == last_payload:
                    torn = True
                    self.quarantined += 1
                    telemetry.add("service.journal.quarantined")
                    break
                continue  # skip malformed interior events, keep going
            good_end = min(offset, len(data))
            job_id = entry.get("job")
            if event == "service.start":
                # A previous clean-or-crashed epoch boundary: anything
                # still open before it was interrupted even earlier.
                continue
            if job_id is None:
                continue
            if event in TERMINAL_EVENTS:
                open_jobs.pop(job_id, None)
            elif event in OPEN_EVENTS:
                open_jobs[job_id] = event
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
        self.interrupted = sorted(open_jobs)
