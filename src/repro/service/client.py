"""Python client for the solve service's JSON/HTTP API.

Stdlib-only (``urllib``).  Typical use::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8042")
    record = client.solve(benchmark="F1", config={"seed": 7, "shots": None})
    print(record["arg"])

``submit`` mirrors :meth:`repro.service.workers.SolverService.submit`;
``solve`` is submit-and-wait, returning the result record and raising
:class:`ServiceClientError` when the job did not finish ``done``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.exceptions import ReproError


class ServiceClientError(ReproError):
    """Raised for transport errors, API errors, and failed jobs."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Thin JSON client for one service endpoint.

    Args:
        base_url: e.g. ``http://127.0.0.1:8042`` (trailing slash ok).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else self.timeout
            ) as response:
                body = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", "replace")
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body or str(exc)
            raise ServiceClientError(
                f"{method} {path} -> {exc.code}: {message}", status=exc.code
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(f"{method} {path}: {exc.reason}") from exc
        try:
            return json.loads(body)
        except ValueError as exc:
            raise ServiceClientError(
                f"{method} {path}: non-JSON response: {body[:200]!r}"
            ) from exc

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def counter(self, name: str) -> float:
        """One telemetry counter value (0.0 when absent/disabled)."""
        return float(self.metrics()["counters"].get(name, 0.0))

    def submit(
        self,
        problem: Optional[Dict[str, Any]] = None,
        *,
        benchmark: Optional[str] = None,
        case: int = 0,
        config: Optional[Dict[str, Any]] = None,
        backend: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: Optional[float] = None,
        wait: bool = False,
        wait_timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a solve; returns the job record."""
        body: Dict[str, Any] = {}
        if problem is not None:
            body["problem"] = problem
        if benchmark is not None:
            body["benchmark"] = benchmark
            body["case"] = case
        if config is not None:
            body["config"] = config
        if backend is not None:
            body["backend"] = backend
        if priority:
            body["priority"] = priority
        if timeout is not None:
            body["timeout"] = timeout
        if max_retries:
            body["max_retries"] = max_retries
        if retry_backoff is not None:
            body["retry_backoff"] = retry_backoff
        if wait:
            body["wait"] = True
            if wait_timeout is not None:
                body["wait_timeout"] = wait_timeout
        # A waited submission can legitimately exceed the socket timeout.
        request_timeout = self.timeout
        if wait:
            request_timeout = (
                None if wait_timeout is None else wait_timeout + self.timeout
            )
        return self._request("POST", "/jobs", body, timeout=request_timeout)

    def job(self, job_id: str, *, wait: Optional[float] = None) -> Dict[str, Any]:
        """Fetch a job record; ``wait`` blocks server-side that many seconds."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
            return self._request("GET", path, timeout=wait + self.timeout)
        return self._request("GET", path)

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/jobs")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final record."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceClientError(
                    f"job {job_id} not terminal after {timeout:.1f}s"
                )
            record = self.job(job_id, wait=min(remaining, 10.0))
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            time.sleep(poll)

    def solve(self, problem=None, *, wait_timeout: float = 300.0, **kwargs) -> Dict[str, Any]:
        """Submit, wait, and return the *result record* of a finished job.

        Raises :class:`ServiceClientError` if the job failed, was
        cancelled, or did not finish within ``wait_timeout`` seconds.
        """
        record = self.submit(
            problem, wait=True, wait_timeout=wait_timeout, **kwargs
        )
        if not record["state"] or record["state"] in ("pending", "running"):
            record = self.wait(record["id"], timeout=wait_timeout)
        if record["state"] != "done":
            raise ServiceClientError(
                f"job {record['id']} finished {record['state']}: "
                f"{record.get('error')}"
            )
        return record["result"]
