"""Content-addressed deduplication of solve submissions.

Two submissions are *the same work* when they agree on the canonical
problem serialization, the fully-resolved solver configuration, and the
backend — then the engine's determinism contract guarantees bit-identical
results, so running the solve once and sharing the record is safe.

:func:`job_fingerprint` derives that identity as a SHA-256 hash built on
:func:`repro.problems.io.problem_fingerprint`.  The solver config is
normalised through :class:`~repro.core.solver.RasenganConfig` first, so
``{"seed": 7}`` and ``{"seed": 7, "shots": 1024}`` (the default) hash
identically.  ``engine_workers`` is excluded: PR 2's engine makes
parallel fan-out bit-identical to serial (CI diffs the two), so worker
count is an execution detail, not an identity.

:class:`DedupIndex` tracks the in-flight primary job per fingerprint.
``admit`` either registers a job as primary or attaches it as a follower
of the running primary; when the primary finishes, the service copies
its outcome to every follower.  Counters: ``service.dedup.unique``,
``service.dedup.coalesced``, ``service.dedup.shared_results``.

Jobs that are *not* whole-job identical still coalesce at **stage**
granularity: the service installs a shared
:class:`~repro.pipeline.cache.ArtifactCache`, so two jobs over the same
problem that differ only in shots, seed, or optimizer budget share every
pre-execution pipeline artifact (basis through circuit).  Each job's
``pipeline`` timeline event records which stages were cache hits.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from typing import Dict, List, Optional

from repro import telemetry
from repro.problems.io import problem_fingerprint
from repro.service.jobs import Job, JobSpec, solver_config_from_dict

#: Config fields that never change the solved result (execution details).
_NON_SEMANTIC_CONFIG = ("engine_workers",)


def job_fingerprint(spec: JobSpec) -> str:
    """Canonical content hash of (problem, solver config, backend).

    Stable across dict ordering, numpy dtypes, and omitted-vs-explicit
    default config values; distinct for anything that can change the
    result record (including the problem name, which is embedded in it).
    """
    config = dataclasses.asdict(solver_config_from_dict(spec.config))
    for field in _NON_SEMANTIC_CONFIG:
        config.pop(field, None)
    payload = {
        "problem": problem_fingerprint(spec.problem),
        "config": config,
        "backend": spec.backend,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DedupIndex:
    """In-flight primary job per fingerprint, with follower attachment."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._primaries: Dict[str, Job] = {}
        self._followers: Dict[str, List[Job]] = {}

    def admit(self, job: Job) -> Optional[Job]:
        """Register ``job`` under its fingerprint.

        Returns ``None`` when the job becomes the primary (caller must
        enqueue it), or the primary job it coalesced onto (caller must
        *not* enqueue; the outcome arrives via :meth:`resolve`).
        """
        fingerprint = job.fingerprint
        if fingerprint is None:
            raise ValueError("job has no fingerprint")
        with self._lock:
            primary = self._primaries.get(fingerprint)
            if primary is None:
                self._primaries[fingerprint] = job
                self._followers[fingerprint] = []
                telemetry.add("service.dedup.unique")
                return None
            self._followers[fingerprint].append(job)
            job.coalesced_into = primary.id
            telemetry.add("service.dedup.coalesced")
            return primary

    def resolve(self, fingerprint: str, primary: Optional[Job] = None) -> List[Job]:
        """Retire the fingerprint; returns the followers awaiting the
        primary's outcome (counted as ``service.dedup.shared_results``).

        When ``primary`` is given, the entry is only retired if it is
        still registered to that exact job — a follower's cancellation
        must never tear down the live primary's coalescing state.
        """
        with self._lock:
            registered = self._primaries.get(fingerprint)
            if registered is None or (primary is not None and registered is not primary):
                return []
            self._primaries.pop(fingerprint, None)
            followers = self._followers.pop(fingerprint, [])
        if followers:
            telemetry.add("service.dedup.shared_results", len(followers))
        return followers

    def inflight(self) -> int:
        """Number of distinct fingerprints currently in flight."""
        with self._lock:
            return len(self._primaries)
