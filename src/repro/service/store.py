"""Result store: in-memory LRU keyed by dedup fingerprint, with optional
JSONL persistence.

The store is the service's cross-submission memory: a submission whose
fingerprint is already stored completes instantly without touching the
queue.  When constructed with a ``path``, every insert is appended as
one JSON line (fingerprint + result record) and an existing file is
replayed on startup, so a restarted server keeps serving previously
computed results.  The file is append-only; on reload, the *last* record
per fingerprint wins and the LRU capacity is re-applied.

Counters: ``service.store.hits`` / ``service.store.misses`` /
``service.store.evictions`` / ``service.store.reloaded``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro import telemetry
from repro.service.jobs import ServiceError


class ResultStore:
    """Thread-safe LRU of result records keyed by job fingerprint.

    Args:
        capacity: maximum in-memory entries; least-recently-used records
            are evicted first (persisted lines are never rewritten, so an
            evicted record survives on disk and reappears on reload).
        path: optional JSONL persistence file; parent directory must
            exist.  ``None`` keeps the store memory-only.
    """

    def __init__(self, capacity: int = 1024, path: Optional[str] = None) -> None:
        if capacity < 1:
            raise ServiceError("store capacity must be >= 1")
        self.capacity = int(capacity)
        self.path = path
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        if path is not None and os.path.exists(path):
            self._reload(path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored result for ``fingerprint``, or ``None``."""
        with self._lock:
            record = self._entries.get(fingerprint)
            if record is None:
                telemetry.add("service.store.misses")
                return None
            self._entries.move_to_end(fingerprint)
            telemetry.add("service.store.hits")
            return record

    def put(self, fingerprint: str, record: Dict[str, Any]) -> None:
        """Insert (or refresh) a result record and persist it if enabled."""
        with self._lock:
            self._entries[fingerprint] = record
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                telemetry.add("service.store.evictions")
            if self.path is not None:
                line = json.dumps(
                    {"fingerprint": fingerprint, "result": record},
                    sort_keys=True,
                )
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    def _reload(self, path: str) -> None:
        """Replay a persistence file (last record per fingerprint wins)."""
        loaded = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    fingerprint = payload["fingerprint"]
                    record = payload["result"]
                except (ValueError, KeyError, TypeError) as exc:
                    raise ServiceError(
                        f"corrupt result store line in {path!r}: {exc}"
                    ) from exc
                self._entries[fingerprint] = record
                self._entries.move_to_end(fingerprint)
                loaded += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        if loaded:
            telemetry.add("service.store.reloaded", loaded)

    def clear(self) -> None:
        """Drop all in-memory entries (the persistence file is untouched)."""
        with self._lock:
            self._entries.clear()
