"""Result store: in-memory LRU keyed by dedup fingerprint, with durable
JSONL persistence.

The store is the service's cross-submission memory: a submission whose
fingerprint is already stored completes instantly without touching the
queue.  When constructed with a ``path``, every insert is appended as
one JSON line (fingerprint + result record) and an existing file is
replayed on startup, so a restarted server keeps serving previously
computed results.  The file is append-only between compactions; on
reload, the *last* record per fingerprint wins and the LRU capacity is
re-applied.

Durability contract (exercised by the chaos suite,
``tests/test_service_chaos.py``):

* **Torn tails never brick a restart.**  A crash mid-append leaves a
  truncated final line; reload quarantines it (counted in
  ``service.store.quarantined``), repairs the file by truncating the
  torn bytes, and keeps every intact record.  Corruption *before* the
  final record still raises :class:`ServiceError` — that is structural
  damage, not a torn tail, and silently dropping interior history would
  serve wrong answers.
* **Appends happen outside the entry lock.**  ``put`` updates the LRU
  under ``_lock``, then persists under a separate ``_io_lock`` — a slow
  disk (or an injected ``store.append`` latency fault) never blocks
  readers.  A failed append is contained: the in-memory entry survives,
  ``service.store.append_errors`` counts the miss, and the record is
  re-persisted by the next compaction.
* **Compaction is atomic.**  :meth:`compact` snapshots the live entries
  to a temp file in the same directory, fsyncs, and ``os.replace``\\ s it
  over the log — a crash at any instant leaves either the old log or
  the new snapshot, never a hybrid.  Compaction runs automatically once
  the log grows past ``compact_factor ×`` capacity lines.

Counters: ``service.store.hits`` / ``service.store.misses`` /
``service.store.evictions`` / ``service.store.reloaded`` /
``service.store.quarantined`` / ``service.store.append_errors`` /
``service.store.compactions``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro import faults, telemetry
from repro.service.jobs import ServiceError


class ResultStore:
    """Thread-safe LRU of result records keyed by job fingerprint.

    Args:
        capacity: maximum in-memory entries; least-recently-used records
            are evicted first (persisted lines survive on disk until the
            next compaction, so an evicted record reappears on reload).
        path: optional JSONL persistence file; parent directory must
            exist.  ``None`` keeps the store memory-only.
        compact_factor: automatic compaction triggers once the log holds
            more than ``compact_factor * capacity`` lines (minimum 64);
            ``0`` disables automatic compaction.
    """

    def __init__(
        self,
        capacity: int = 1024,
        path: Optional[str] = None,
        *,
        compact_factor: int = 4,
    ) -> None:
        if capacity < 1:
            raise ServiceError("store capacity must be >= 1")
        self.capacity = int(capacity)
        self.path = path
        self.compact_factor = int(compact_factor)
        self._lock = threading.Lock()
        self._io_lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: Lines currently in the persistence file (drives auto-compaction).
        self._persisted_lines = 0
        #: Byte offset to truncate back to before the next append, set
        #: when a failed append may have left torn bytes on disk.
        self._needs_repair: Optional[int] = None
        #: Torn trailing lines quarantined across reloads of this store.
        self.quarantined = 0
        if path is not None and os.path.exists(path):
            self._reload(path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored result for ``fingerprint``, or ``None``."""
        with self._lock:
            record = self._entries.get(fingerprint)
            if record is None:
                telemetry.add("service.store.misses")
                return None
            self._entries.move_to_end(fingerprint)
            telemetry.add("service.store.hits")
            return record

    def put(self, fingerprint: str, record: Dict[str, Any]) -> None:
        """Insert (or refresh) a result record and persist it if enabled.

        The LRU update happens under the entry lock; persistence happens
        afterwards under the I/O lock so readers are never blocked on
        disk.  Concurrent appends of the *same* fingerprint may land on
        disk in either order — harmless, because the determinism
        contract makes their records byte-identical.
        """
        with self._lock:
            self._entries[fingerprint] = record
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                telemetry.add("service.store.evictions")
        if self.path is not None:
            self._append(fingerprint, record)

    def _append(self, fingerprint: str, record: Dict[str, Any]) -> None:
        """Append one record line; failures are contained, not raised.

        A failed append (including an injected torn write) marks the
        file for repair; the next append — or a compaction — truncates
        the torn bytes away before writing, so damage never compounds
        into mid-file corruption.  Until then the torn tail sits on disk
        exactly as a crash would leave it, which is what reload's
        quarantine path recovers from.
        """
        line = json.dumps(
            {"fingerprint": fingerprint, "result": record}, sort_keys=True
        )
        data = (line + "\n").encode("utf-8")
        with self._io_lock:
            try:
                if self._needs_repair is not None:
                    with open(self.path, "r+b") as handle:
                        handle.truncate(self._needs_repair)
                    self._needs_repair = None
                start = (
                    os.path.getsize(self.path)
                    if os.path.exists(self.path)
                    else 0
                )
                directive = faults.point("store.append")
                if isinstance(directive, faults.TruncateDirective):
                    # Simulated crash mid-write: the torn prefix reaches
                    # the file, the caller sees a failed append.
                    with open(self.path, "ab") as handle:
                        handle.write(directive.cut(data))
                    self._needs_repair = start
                    raise faults.InjectedFault(
                        f"torn append at {self.path!r}"
                    )
                with open(self.path, "ab") as handle:
                    handle.write(data)
                self._persisted_lines += 1
            except Exception:  # noqa: BLE001 — persistence must not fail
                # the job whose result is already safely in memory; the
                # record is re-persisted by the next compaction.
                telemetry.add("service.store.append_errors")
                return
        if self._should_compact():
            self.compact()

    def _should_compact(self) -> bool:
        if self.path is None or self.compact_factor <= 0:
            return False
        threshold = max(self.capacity * self.compact_factor, 64)
        return self._persisted_lines > threshold

    def compact(self) -> int:
        """Atomically rewrite the log as a snapshot of the live entries.

        Write-temp-then-rename: the snapshot is written next to the log,
        fsynced, and ``os.replace``-d over it, so a crash leaves either
        the complete old log or the complete new snapshot.  Returns the
        number of lines in the snapshot.  Note that compaction trims
        history to the current LRU contents — records evicted from
        memory no longer reappear on reload afterwards.
        """
        if self.path is None:
            return 0
        with self._io_lock:
            faults.point("store.compact")
            with self._lock:
                snapshot = list(self._entries.items())
            temp_path = f"{self.path}.compact.tmp"
            with open(temp_path, "wb") as handle:
                for fingerprint, record in snapshot:
                    line = json.dumps(
                        {"fingerprint": fingerprint, "result": record},
                        sort_keys=True,
                    )
                    handle.write((line + "\n").encode("utf-8"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
            self._persisted_lines = len(snapshot)
            self._needs_repair = None
            telemetry.add("service.store.compactions")
            return len(snapshot)

    def _reload(self, path: str) -> None:
        """Replay a persistence file (last record per fingerprint wins).

        A torn trailing line — the signature of a crash mid-append — is
        quarantined: counted, removed from the file (so later appends
        cannot concatenate onto it), and skipped.  A malformed line with
        intact records *after* it is structural corruption and raises
        :class:`ServiceError`.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        chunks = data.split(b"\n")
        trailing_newline = data.endswith(b"\n")
        # Index of the last chunk holding any payload (None = empty file).
        last_payload = None
        for index, chunk in enumerate(chunks):
            if chunk.strip():
                last_payload = index
        loaded = 0
        good_end = 0  # byte offset just past the last intact line
        offset = 0
        torn = False
        for index, chunk in enumerate(chunks):
            offset += len(chunk) + 1  # +1 for the split newline
            if not chunk.strip():
                if index < len(chunks) - 1:
                    good_end = min(offset, len(data))
                continue
            try:
                payload = json.loads(chunk.decode("utf-8"))
                fingerprint = payload["fingerprint"]
                record = payload["result"]
                if not isinstance(fingerprint, str):
                    raise TypeError("fingerprint must be a string")
            except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
                if index == last_payload:
                    # Torn tail: quarantine instead of bricking restart.
                    torn = True
                    self.quarantined += 1
                    telemetry.add("service.store.quarantined")
                    break
                raise ServiceError(
                    f"corrupt result store line {index + 1} in {path!r}: "
                    f"{exc}"
                ) from exc
            self._entries[fingerprint] = record
            self._entries.move_to_end(fingerprint)
            loaded += 1
            good_end = min(offset, len(data))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        self._persisted_lines = loaded
        if torn:
            # Repair: drop the torn bytes so the next append starts a
            # clean line instead of extending garbage.
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
        elif loaded and not trailing_newline:
            # Every line parsed but the final newline never hit the disk;
            # terminate it so the next append stays on its own line.
            with open(path, "ab") as handle:
                handle.write(b"\n")
        if loaded:
            telemetry.add("service.store.reloaded", loaded)

    def clear(self) -> None:
        """Drop all in-memory entries (the persistence file is untouched)."""
        with self._lock:
            self._entries.clear()
