"""Job model and thread-safe priority queue for the solve service.

A :class:`Job` is one solve request travelling through the service:
``PENDING`` in the queue, ``RUNNING`` on a worker, then exactly one of
``DONE`` / ``FAILED`` / ``CANCELLED``.  The :class:`JobSpec` carries
everything a worker needs to execute it — the serialized problem, the
solver-config overrides, the backend, and the scheduling envelope
(priority, wall-clock timeout, bounded retries with exponential
backoff).

:class:`JobQueue` is a condition-variable priority queue: higher
``priority`` drains first, FIFO within a priority level, and jobs
cancelled while queued are skipped at pop time rather than eagerly
removed (cancellation is O(1), the heap stays intact).

The deadline machinery (:class:`Deadline`, :func:`run_with_deadline`) is
deliberately independent of the queue so the ``solve --timeout`` CLI
path enforces wall-clock limits through the exact same code as service
jobs.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.solver import RasenganConfig
from repro.exceptions import ReproError


class ServiceError(ReproError):
    """Raised for malformed submissions or misused service objects."""


class JobTimeoutError(ServiceError):
    """Raised when a job exceeds its wall-clock deadline."""


class JobState(str, enum.Enum):
    """Lifecycle states; ``DONE``/``FAILED``/``CANCELLED`` are terminal."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: RasenganConfig field names accepted as per-job solver overrides.
_CONFIG_FIELDS = {f.name for f in dataclasses.fields(RasenganConfig)}


def solver_config_from_dict(overrides: Optional[Dict[str, Any]]) -> RasenganConfig:
    """Build a :class:`RasenganConfig` from a JSON override dict.

    Unknown keys raise :class:`ServiceError` instead of being silently
    dropped — a typo in a remote submission must not run the wrong
    configuration and then be cached under its fingerprint.
    """
    overrides = dict(overrides or {})
    unknown = sorted(set(overrides) - _CONFIG_FIELDS)
    if unknown:
        raise ServiceError(
            f"unknown solver config field(s): {', '.join(unknown)}"
        )
    return RasenganConfig(**overrides)


@dataclass
class JobSpec:
    """Everything needed to execute one solve request.

    Attributes:
        problem: serialized problem payload
            (:func:`repro.problems.io.problem_to_dict` format).
        config: :class:`RasenganConfig` overrides (JSON-compatible dict).
        backend: execution backend name (``None`` = exact fast path).
        priority: higher drains first; FIFO within a level.
        timeout: wall-clock seconds from submission; the deadline covers
            queue wait *and* execution.  ``None`` = unlimited.
        max_retries: additional attempts after a failed execution.
        retry_backoff: base delay in seconds; attempt ``k`` (0-based)
            sleeps ``retry_backoff * 2**k`` before retrying.
    """

    problem: Dict[str, Any]
    config: Dict[str, Any] = field(default_factory=dict)
    backend: Optional[str] = None
    priority: int = 0
    timeout: Optional[float] = None
    max_retries: int = 0
    retry_backoff: float = 0.1

    def solver_config(self) -> RasenganConfig:
        """The validated solver configuration for this job."""
        return solver_config_from_dict(self.config)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "problem": self.problem,
            "config": dict(self.config),
            "backend": self.backend,
            "priority": self.priority,
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
        }


class Job:
    """One solve request moving through the service.

    State transitions are lock-protected and monotonic: once a job is
    terminal its state, result, and error never change, and the ``done``
    event is set exactly once.

    Every lifecycle transition is also appended to :attr:`timeline` — the
    job's flight recorder: submission, dedup coalescing, queue pickup,
    retries/backoffs, cancellation requests, and settlement, each stamped
    with seconds since submission.  Workers additionally attach the job's
    execution span tree as :attr:`trace` when telemetry is active; both
    ride along on :meth:`to_dict`, so a job record carries its own
    "why was this slow" answer.
    """

    def __init__(
        self,
        spec: JobSpec,
        *,
        fingerprint: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.id = uuid.uuid4().hex[:12]
        self.spec = spec
        self.fingerprint = fingerprint
        self.state = JobState.PENDING
        self.attempts = 0
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        #: id of the in-flight job this one coalesced onto (dedup).
        self.coalesced_into: Optional[str] = None
        #: True when the result came straight from the result store.
        self.from_cache = False
        self._clock = clock
        self.submitted_at = clock()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: flight-recorder events ({"event", "t", ...}), oldest first.
        self.timeline: List[Dict[str, Any]] = []
        #: execution span tree (Span.to_dict) when telemetry was active.
        self.trace: Optional[Dict[str, Any]] = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._cancel_event = threading.Event()
        self.cancel_requested = False
        self.record_event("submitted", priority=spec.priority)

    # ------------------------------------------------------------------
    # Deadline
    # ------------------------------------------------------------------
    @property
    def deadline(self) -> Optional[float]:
        """Absolute monotonic deadline, or ``None`` when unlimited."""
        if self.spec.timeout is None:
            return None
        return self.submitted_at + self.spec.timeout

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (may be negative)."""
        deadline = self.deadline
        if deadline is None:
            return None
        return deadline - self._clock()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------
    def record_event(self, event: str, **fields: Any) -> None:
        """Append a timeline event stamped with seconds since submission."""
        entry = self._event(event, **fields)
        with self._lock:
            self.timeline.append(entry)

    def _event(self, event: str, **fields: Any) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "event": event,
            "t": round(self._clock() - self.submitted_at, 6),
        }
        entry.update(fields)
        return entry

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark_running(self) -> bool:
        with self._lock:
            if self.state is not JobState.PENDING:
                return False
            self.state = JobState.RUNNING
            self.started_at = self._clock()
            self.timeline.append(
                self._event(
                    "started",
                    queued_seconds=round(self.started_at - self.submitted_at, 6),
                )
            )
            return True

    def mark_done(
        self, result: Dict[str, Any], *, from_cache: bool = False
    ) -> bool:
        return self._finish(JobState.DONE, result=result, from_cache=from_cache)

    def mark_failed(self, error: str) -> bool:
        return self._finish(JobState.FAILED, error=error)

    def cancel(self) -> bool:
        """Request cancellation.

        A queued job is cancelled immediately; a running job only gets
        the ``cancel_requested`` flag set (workers honour it between
        retry attempts — an in-flight solve is never interrupted).
        Returns True when the job ended up cancelled.
        """
        with self._lock:
            self.cancel_requested = True
            self._cancel_event.set()
            self.timeline.append(self._event("cancel_requested"))
            if self.state is JobState.PENDING:
                self.state = JobState.CANCELLED
                self.finished_at = self._clock()
                self.timeline.append(self._event("finished", state="cancelled"))
                self._done.set()
                return True
            return self.state is JobState.CANCELLED

    def mark_cancelled(self) -> bool:
        """Settle a non-terminal job as CANCELLED (worker-side honor path).

        Used by workers that observe ``cancel_requested`` between retry
        attempts — unlike :meth:`cancel`, this also settles a RUNNING
        job.  Returns True when the job ends up cancelled.
        """
        with self._lock:
            self.cancel_requested = True
            self._cancel_event.set()
            if self.state.terminal:
                return self.state is JobState.CANCELLED
            self.state = JobState.CANCELLED
            self.finished_at = self._clock()
            self.timeline.append(self._event("finished", state="cancelled"))
            self._done.set()
            return True

    def wait_cancel(self, timeout: Optional[float]) -> bool:
        """Block up to ``timeout`` seconds, waking early on cancellation.

        The retry-backoff sleep: returns True when cancellation was
        requested (callers should stop retrying immediately).
        """
        return self._cancel_event.wait(timeout)

    def _finish(self, state, *, result=None, error=None, from_cache=False) -> bool:
        with self._lock:
            if self.state.terminal:
                return False
            self.state = state
            self.result = result
            self.error = error
            self.from_cache = from_cache
            self.finished_at = self._clock()
            entry = self._event("finished", state=state.value)
            if from_cache:
                entry["from_cache"] = True
            self.timeline.append(entry)
            self._done.set()
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; True when it finished."""
        return self._done.wait(timeout)

    def to_dict(self, *, include_problem: bool = False) -> Dict[str, Any]:
        """JSON record of the job (the HTTP API's job resource)."""
        with self._lock:
            record: Dict[str, Any] = {
                "id": self.id,
                "state": self.state.value,
                "priority": self.spec.priority,
                "attempts": self.attempts,
                "fingerprint": self.fingerprint,
                "result": self.result,
                "error": self.error,
                "coalesced_into": self.coalesced_into,
                "from_cache": self.from_cache,
                "timeout": self.spec.timeout,
                "queued_seconds": (
                    (self.started_at or self.finished_at or self._clock())
                    - self.submitted_at
                ),
                "run_seconds": (
                    self.finished_at - self.started_at
                    if self.finished_at is not None and self.started_at is not None
                    else None
                ),
                "timeline": [dict(entry) for entry in self.timeline],
                "trace": self.trace,
            }
        if include_problem:
            record["spec"] = self.spec.to_dict()
        return record


class JobQueue:
    """Thread-safe priority queue of jobs.

    Ordering: highest ``spec.priority`` first, FIFO within equal
    priorities (a monotonic sequence number breaks ties, so heap order
    is total and never compares Job objects).
    """

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._condition = threading.Condition()
        self._counter = itertools.count()
        self._closed = False

    def __len__(self) -> int:
        with self._condition:
            return len(self._heap)

    def put(self, job: Job) -> None:
        """Enqueue ``job``; raises :class:`ServiceError` after close."""
        with self._condition:
            if self._closed:
                raise ServiceError("queue is closed")
            heapq.heappush(
                self._heap, (-job.spec.priority, next(self._counter), job)
            )
            self._condition.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the next runnable job.

        Blocks up to ``timeout`` seconds (forever when ``None``); returns
        ``None`` on timeout or once the queue is closed and drained.
        Jobs cancelled while queued are discarded here.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state is JobState.CANCELLED:
                        continue
                    return job
                if self._closed:
                    return None
                if deadline is None:
                    self._condition.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._condition.wait(remaining):
                        return None

    def close(self) -> None:
        """Refuse new jobs and wake every blocked :meth:`get`."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def drain_pending(self) -> List[Job]:
        """Remove and return all still-queued jobs (for shutdown paths)."""
        with self._condition:
            jobs = [entry[2] for entry in self._heap]
            self._heap.clear()
            return jobs


# ----------------------------------------------------------------------
# Deadline enforcement (shared by service workers and `solve --timeout`)
# ----------------------------------------------------------------------
class Deadline:
    """A wall-clock budget measured from construction."""

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    def remaining(self) -> Optional[float]:
        if self.seconds is None:
            return None
        return self.seconds - (self._clock() - self._start)

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0


def run_with_deadline(
    fn: Callable[[], Any],
    timeout: Optional[float],
    *,
    label: str = "job",
) -> Any:
    """Run ``fn()`` under a wall-clock limit.

    ``timeout=None`` calls ``fn`` inline.  Otherwise ``fn`` runs on a
    daemon thread and this call joins it for at most ``timeout`` seconds;
    on expiry :class:`JobTimeoutError` is raised.  The solver has no
    preemption points, so an expired computation is *abandoned* (the
    daemon thread finishes in the background and its result is dropped) —
    the caller gets a prompt, honest timeout instead of an unbounded
    wait.  Exceptions raised by ``fn`` propagate unchanged.
    """
    if timeout is None:
        return fn()
    if timeout <= 0:
        raise JobTimeoutError(f"{label}: deadline expired before execution")
    outcome: Dict[str, Any] = {}

    def _target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            outcome["error"] = exc

    thread = threading.Thread(
        target=_target, name=f"repro-deadline-{label}", daemon=True
    )
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise JobTimeoutError(
            f"{label}: exceeded wall-clock limit of {timeout:.3f}s"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]
