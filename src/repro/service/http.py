"""Minimal JSON/HTTP API over :class:`~repro.service.workers.SolverService`.

Stdlib-only (``http.server``).  Endpoints (see ``docs/SERVICE.md`` for
the full schema):

* ``POST /jobs`` — submit a solve; body carries ``problem`` *or*
  ``benchmark``/``case`` plus ``config``/``backend``/``priority``/
  ``timeout``/``max_retries``/``retry_backoff``; ``"wait": true`` blocks
  (up to ``wait_timeout`` seconds) until the job is terminal.
  Responds ``201`` with the job record.
* ``GET /jobs`` — all job records (summaries).
* ``GET /jobs/<id>`` — one job record (``404`` when unknown);
  ``?wait=SECONDS`` blocks until terminal or the wait expires.
* ``POST /jobs/<id>/cancel`` — request cancellation.
* ``GET /healthz`` — liveness: status, package version, worker count,
  queue depth, per-state job counts.
* ``GET /metrics`` — the active telemetry collector's counters and
  histogram aggregates.  Content-negotiated: ``Accept:
  application/json`` (what :class:`~repro.service.client.ServiceClient`
  sends) returns the JSON summary; anything else (curl, Prometheus
  scrapers) gets Prometheus text exposition with sanitized metric
  names and ``_bucket``/``_sum``/``_count`` histogram series.
  ``?format=json`` / ``?format=text`` override the header.

The server is a ``ThreadingHTTPServer``: handlers run on their own
threads and only touch the service through its thread-safe surface.
Request handling increments ``service.http.requests`` /
``service.http.errors`` and observes per-route/status latency into
``service.http.request_seconds.<method>.<route>.<status>``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import __version__, faults, telemetry
from repro.exceptions import ReproError
from repro.service.jobs import ServiceError
from repro.service.workers import SolverService

#: Submission body keys forwarded to SolverService.submit.
_SUBMIT_KEYS = (
    "benchmark",
    "case",
    "config",
    "backend",
    "priority",
    "timeout",
    "max_retries",
    "retry_backoff",
)


class _ApiError(Exception):
    """Internal: maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _metrics_payload() -> Dict[str, Any]:
    collector = telemetry.active()
    if collector is None:
        return {"enabled": False, "counters": {}, "histograms": {}}
    summary = collector.summary()
    return {
        "enabled": True,
        "counters": summary["counters"],
        "histograms": summary["histograms"],
        "spans": summary["spans"],
        "dropped_spans": summary["dropped_spans"],
    }


def _metrics_text() -> str:
    """Prometheus text exposition of the active collector.

    Dotted metric names are sanitized to the Prometheus grammar
    (``service.http.requests`` → ``service_http_requests``) and
    histograms expand into cumulative ``_bucket``/``_sum``/``_count``
    series — see :func:`repro.telemetry.prometheus_text`.
    """
    return telemetry.prometheus_text(telemetry.active())


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the attached :class:`SolverService`."""

    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    #: Set by ServiceServer on the handler class.
    service: SolverService = None  # type: ignore[assignment]
    quiet: bool = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise _ApiError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _ApiError(400, "JSON body must be an object")
        return payload

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", query

    def _dispatch(self, method: str) -> None:
        telemetry.add("service.http.requests")
        started = time.perf_counter()
        self._status = 0
        route = "unknown"
        try:
            # Chaos hook: an injected fault here exercises the 500 path
            # without touching the service (the server must stay alive).
            faults.point("http.handler")
            path, query = self._route()
            route = _route_name(path)
            handler = getattr(self, f"_{method}_{route}", None)
            if handler is None:
                raise _ApiError(404, f"no route for {method.upper()} {path}")
            handler(path, query)
        except _ApiError as exc:
            telemetry.add("service.http.errors")
            self._send_json(exc.status, {"error": str(exc)})
        except (ServiceError, ReproError, ValueError, TypeError) as exc:
            telemetry.add("service.http.errors")
            self._send_json(400, {"error": f"{type(exc).__name__}: {exc}"})
        except Exception as exc:  # noqa: BLE001 — keep the server alive
            telemetry.add("service.http.errors")
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            telemetry.observe(
                f"service.http.request_seconds.{method}.{route}."
                f"{self._status or 0}",
                time.perf_counter() - started,
            )

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._dispatch("get")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("post")

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _get_healthz(self, path: str, query: Dict[str, Any]) -> None:
        self._send_json(
            200,
            {
                "status": "ok",
                "version": __version__,
                "workers": self.service.workers,
                "queue_depth": len(self.service.queue),
                "jobs": self.service.counts(),
                "dedup_inflight": self.service.dedup.inflight(),
                "store_entries": len(self.service.store),
                "store_quarantined": self.service.store.quarantined,
                "interrupted_previous_run": len(
                    self.service.interrupted_jobs()
                ),
            },
        )

    def _get_metrics(self, path: str, query: Dict[str, Any]) -> None:
        wants_json = "application/json" in (self.headers.get("Accept") or "")
        fmt = query.get("format")
        if fmt == "json" or (fmt != "text" and wants_json):
            self._send_json(200, _metrics_payload())
        else:
            self._send_text(200, _metrics_text())

    def _get_jobs(self, path: str, query: Dict[str, Any]) -> None:
        parts = path.strip("/").split("/")
        if len(parts) == 1:
            records = [job.to_dict() for job in self.service.jobs()]
            self._send_json(200, {"jobs": records})
            return
        if len(parts) != 2:
            raise _ApiError(404, f"no route for GET {path}")
        job = self.service.get(parts[1])
        if job is None:
            raise _ApiError(404, f"unknown job {parts[1]!r}")
        if "wait" in query:
            try:
                wait_seconds = float(query["wait"])
            except ValueError as exc:
                raise _ApiError(400, "wait must be a number of seconds") from exc
            job.wait(wait_seconds)
        self._send_json(200, job.to_dict())

    def _post_jobs(self, path: str, query: Dict[str, Any]) -> None:
        parts = path.strip("/").split("/")
        if len(parts) == 1:
            self._submit(self._read_body())
            return
        if len(parts) == 3 and parts[2] == "cancel":
            job = self.service.get(parts[1])
            if job is None:
                raise _ApiError(404, f"unknown job {parts[1]!r}")
            self.service.cancel(job.id)
            self._send_json(200, job.to_dict())
            return
        raise _ApiError(404, f"no route for POST {path}")

    def _submit(self, body: Dict[str, Any]) -> None:
        wait = bool(body.pop("wait", False))
        wait_timeout = body.pop("wait_timeout", None)
        problem = body.pop("problem", None)
        kwargs = {}
        for key in _SUBMIT_KEYS:
            if key in body:
                kwargs[key] = body.pop(key)
        if body:
            raise _ApiError(
                400, f"unknown submission field(s): {', '.join(sorted(body))}"
            )
        job = self.service.submit(problem, **kwargs)
        if wait:
            job.wait(None if wait_timeout is None else float(wait_timeout))
        self._send_json(201, job.to_dict())


def _route_name(path: str) -> str:
    """Map a URL path to a handler-method suffix (first segment)."""
    first = path.strip("/").split("/", 1)[0]
    return first or "root"


class ServiceServer:
    """A threaded HTTP server bound to one :class:`SolverService`.

    Args:
        service: the (started) service to expose.
        host: bind address.
        port: TCP port; ``0`` picks an ephemeral port (see
            :attr:`address`).
        quiet: suppress per-request stderr logging.
    """

    def __init__(
        self,
        service: SolverService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quiet: bool = True,
    ) -> None:
        handler = type(
            "BoundServiceRequestHandler",
            (ServiceRequestHandler,),
            {"service": service, "quiet": quiet},
        )
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Serve requests on a background thread."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` foreground)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting requests and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
