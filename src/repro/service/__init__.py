"""repro.service — solve-as-a-service on top of the execution engine.

The repo's long-running entry point (``python -m repro serve``): many
callers multiplex solve jobs over one process's simulator resources
through a priority queue, a worker pool, content-addressed
deduplication, and a result store — see ``docs/SERVICE.md``.

Layers (each its own module, composable without the others):

* :mod:`repro.service.jobs` — job model, states, deadlines/retries, and
  the thread-safe priority :class:`~repro.service.jobs.JobQueue`;
* :mod:`repro.service.dedup` — canonical content hashing of
  (problem, solver config, backend) and in-flight coalescing;
* :mod:`repro.service.store` — LRU result store with crash-safe JSONL
  persistence (torn-tail quarantine, atomic compaction);
* :mod:`repro.service.journal` — append-only job-event journal so a
  restarted service can report what died mid-flight;
* :mod:`repro.service.workers` — :class:`SolverService`, the worker
  pool draining the queue through :mod:`repro.engine`;
* :mod:`repro.service.http` / :mod:`repro.service.client` — the JSON
  API and its Python client.

In-process use::

    from repro.service import SolverService

    with SolverService(workers=4) as service:
        job = service.submit(benchmark="F1", config={"seed": 7})
        job.wait()
        print(job.result["arg"])

Determinism contract: a service result is bit-for-bit identical to a
direct :class:`~repro.core.solver.RasenganSolver` run with the same
problem, config, and backend — which is exactly what makes sharing one
execution between deduplicated submissions sound.
"""

from repro.service.dedup import DedupIndex, job_fingerprint
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import ServiceServer
from repro.service.journal import JobJournal
from repro.service.jobs import (
    Deadline,
    Job,
    JobQueue,
    JobSpec,
    JobState,
    JobTimeoutError,
    ServiceError,
    run_with_deadline,
    solver_config_from_dict,
)
from repro.service.store import ResultStore
from repro.service.workers import SolverService, default_runner

__all__ = [
    "Deadline",
    "DedupIndex",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobTimeoutError",
    "ResultStore",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceServer",
    "SolverService",
    "default_runner",
    "job_fingerprint",
    "run_with_deadline",
    "solver_config_from_dict",
]
