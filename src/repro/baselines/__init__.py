"""Baseline variational algorithms the paper compares against.

* :mod:`repro.baselines.encoding` — QUBO/penalty encodings shared by the
  penalty-based methods.
* :mod:`repro.baselines.hea` — hardware-efficient ansatz (Kandala et al.).
* :mod:`repro.baselines.qaoa_penalty` — penalty-term-based QAOA, with
  FrozenQubits-style hotspot freezing and Red-QAOA-style parameter
  initialization.
* :mod:`repro.baselines.choco_q` — commute-Hamiltonian-based QAOA
  (Choco-Q), whose mixer is the sum of all transition Hamiltonians.
* :mod:`repro.baselines.optimizer` — the COBYLA driver shared by every
  method (paper, Section 5.1).
"""

from repro.baselines.common import BaselineResult, VariationalBaseline
from repro.baselines.encoding import PenaltyEncoding, qubo_coefficients
from repro.baselines.hea import HardwareEfficientAnsatz
from repro.baselines.qaoa_penalty import PenaltyQAOA
from repro.baselines.choco_q import ChocoQ
from repro.baselines.grover import GroverAdaptiveSearch, GroverResult
from repro.baselines.annealing import (
    AnnealResult,
    QuantumAnnealer,
    SimulatedAnnealing,
)
from repro.baselines.optimizer import minimize_cobyla, minimize_spsa

__all__ = [
    "BaselineResult",
    "VariationalBaseline",
    "PenaltyEncoding",
    "qubo_coefficients",
    "HardwareEfficientAnsatz",
    "PenaltyQAOA",
    "ChocoQ",
    "GroverAdaptiveSearch",
    "GroverResult",
    "SimulatedAnnealing",
    "QuantumAnnealer",
    "AnnealResult",
    "minimize_cobyla",
    "minimize_spsa",
]
