"""Commute-Hamiltonian-based QAOA (Choco-Q, HPCA'25).

The mixer is the sum of all transition Hamiltonians,
``H_m = sum_k H(u_k)``, which commutes with the constraint operators, so a
feasible initial state never leaves the feasible subspace.  The objective
layer is the diagonal phase ``exp(-i * gamma * H_obj)``.

Because both layers preserve the span of feasible basis states, the exact
noise-free simulation can be *projected onto the feasible subspace*: the
mixer becomes a small real-symmetric ``F x F`` matrix whose
eigendecomposition is computed once, making each evolution an ``O(F^2)``
matrix product instead of a ``2^n``-dimensional ``expm``.  This projection
is exact, not an approximation — it is the same structural fact Choco-Q's
correctness rests on.

The gate-level circuit (for depth accounting and noisy runs) Trotterises
the mixer into the product of per-vector transition circuits, which is the
role the "state-of-the-art unitary decomposition" plays in the paper's
Choco-Q setup and is why Choco-Q's depth is an order of magnitude above
Rasengan's segmented execution.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.common import VariationalBaseline
from repro.circuits.circuit import QuantumCircuit
from repro.core.transition import transition_circuit
from repro.linalg.bitvec import bits_to_int, int_to_bits
from repro.linalg.moves import move_partner_key
from repro.problems.base import ConstrainedBinaryProblem


class ChocoQ(VariationalBaseline):
    """Choco-Q with exact feasible-subspace simulation.

    Args:
        problem: problem instance.
        layers: QAOA depth ``p`` (paper default: 5).
        trotter_steps: mixer Trotter slices in the gate-level circuit.
        **kwargs: see :class:`~repro.baselines.common.VariationalBaseline`.
    """

    algorithm = "chocoq"

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        layers: int = 5,
        trotter_steps: int = 1,
        trotter_order: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(problem, **kwargs)
        if trotter_order not in (1, 2):
            raise ValueError("trotter_order must be 1 or 2")
        self.layers = layers
        self.trotter_steps = trotter_steps
        self.trotter_order = trotter_order
        self.basis = problem.homogeneous_basis

    @property
    def num_parameters(self) -> int:
        return 2 * self.layers

    def ansatz_structure(self):
        return {
            "layers": int(self.layers),
            "trotter_steps": int(self.trotter_steps),
            "trotter_order": int(self.trotter_order),
        }

    def initial_parameters(self) -> np.ndarray:
        return np.full(self.num_parameters, 0.1)

    # ------------------------------------------------------------------
    # Feasible-subspace projection
    # ------------------------------------------------------------------
    @functools.cached_property
    def _subspace(self) -> Tuple[List[int], Dict[int, int], np.ndarray, np.ndarray, np.ndarray]:
        """(keys, key->row, eigenvalues, eigenvectors, energies).

        ``H_m`` restricted to the feasible subspace is real symmetric
        (each ``H(u)`` pairs states symmetrically), so one ``eigh`` gives
        exact mixer evolution for every ``beta``.
        """
        n = self.problem.num_variables
        keys = list(self.problem.feasible_keys())
        index = {key: row for row, key in enumerate(keys)}
        dim = len(keys)
        mixer = np.zeros((dim, dim))
        for u in np.atleast_2d(self.basis):
            for key in keys:
                partner = move_partner_key(key, np.asarray(u, dtype=np.int64), n)
                if partner is not None and partner in index:
                    mixer[index[partner], index[key]] += 1.0
        eigenvalues, eigenvectors = np.linalg.eigh(mixer)
        energies = np.array(
            [self.problem.value(int_to_bits(key, n)) for key in keys]
        )
        return keys, index, eigenvalues, eigenvectors, energies

    def simulate(self, parameters: np.ndarray) -> np.ndarray:
        """Dense statevector (embedding the subspace amplitudes)."""
        amplitudes = self._simulate_subspace(parameters)
        keys = self._subspace[0]
        n = self.problem.num_variables
        state = np.zeros(1 << n, dtype=np.complex128)
        for key, amplitude in zip(keys, amplitudes):
            state[key] = amplitude
        return state

    def _simulate_subspace(self, parameters: np.ndarray) -> np.ndarray:
        keys, index, eigenvalues, eigenvectors, energies = self._subspace
        params = np.asarray(parameters, dtype=float)
        start_key = bits_to_int(self.problem.initial_feasible_solution())
        amplitudes = np.zeros(len(keys), dtype=np.complex128)
        amplitudes[index[start_key]] = 1.0
        for layer in range(self.layers):
            gamma = params[2 * layer]
            beta = params[2 * layer + 1]
            amplitudes = amplitudes * np.exp(-1j * gamma * energies)
            phases = np.exp(-1j * beta * eigenvalues)
            amplitudes = eigenvectors @ (phases * (eigenvectors.T @ amplitudes))
        return amplitudes

    # ------------------------------------------------------------------
    def build_circuit(self, parameters: np.ndarray) -> QuantumCircuit:
        """Gate-level Choco-Q: Trotterised mixer over transition circuits."""
        n = self.problem.num_variables
        params = np.asarray(parameters, dtype=float)
        circuit = QuantumCircuit(n, name="chocoq")
        circuit.prepare_bitstring(self.problem.initial_feasible_solution())
        rows = np.atleast_2d(self.basis)
        for layer in range(self.layers):
            gamma = float(params[2 * layer])
            beta = float(params[2 * layer + 1])
            circuit.compose(self.encoding.phase_separation_circuit(gamma))
            slice_angle = beta / self.trotter_steps
            for _ in range(self.trotter_steps):
                if self.trotter_order == 1:
                    for u in rows:
                        circuit.compose(transition_circuit(u, slice_angle, n))
                else:
                    # Symmetric (Strang) splitting: half-steps forward,
                    # then backward, per slice.
                    for u in rows:
                        circuit.compose(
                            transition_circuit(u, slice_angle / 2.0, n)
                        )
                    for u in rows[::-1]:
                        circuit.compose(
                            transition_circuit(u, slice_angle / 2.0, n)
                        )
        circuit.measure_all()
        return circuit
