"""Shared plumbing for the baseline variational algorithms.

Each baseline implements a fast dense simulation path
(:meth:`VariationalBaseline.simulate`) used for training, and a gate-level
circuit (:meth:`VariationalBaseline.build_circuit`) used for depth
accounting and noisy (backend) execution.  Training minimises the expected
penalty energy of the output distribution with COBYLA, matching the
paper's protocol (Section 5.1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.encoding import DEFAULT_PENALTY, PenaltyEncoding
from repro.baselines.optimizer import minimize_cobyla
from repro.circuits.circuit import QuantumCircuit
from repro.linalg.bitvec import int_to_bits
from repro.metrics.arg import approximation_ratio_gap
from repro.problems.base import ConstrainedBinaryProblem
from repro.simulators.backends import Backend
from repro.simulators.sampling import counts_from_probabilities
from repro import telemetry


@dataclass
class BaselineResult:
    """Outcome of one baseline training run."""

    algorithm: str
    problem_name: str
    best_parameters: np.ndarray
    expectation_value: float
    arg: float
    in_constraints_rate: float
    final_distribution: Dict[int, float]
    iterations: int
    history: List[float]
    num_parameters: int

    def summary(self) -> str:
        return (
            f"{self.algorithm}/{self.problem_name}: ARG={self.arg:.3f} "
            f"in-constraints={self.in_constraints_rate:.1%} "
            f"params={self.num_parameters}"
        )


class VariationalBaseline(abc.ABC):
    """Base class for HEA / P-QAOA / Choco-Q.

    Args:
        problem: problem instance.
        penalty: penalty coefficient for scoring (and for training, where
            the method is penalty-based).
        shots: measurement shots for sampling-based scoring; ``None``
            scores the exact distribution.
        max_iterations: COBYLA iteration budget.
        backend: optional gate-level backend; when given, training runs
            real (possibly noisy) circuits instead of the dense fast path.
        seed: RNG seed.
    """

    algorithm: str = "baseline"

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        penalty: float = DEFAULT_PENALTY,
        shots: Optional[int] = 1024,
        max_iterations: int = 300,
        backend: Optional[Backend] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.problem = problem
        self.encoding = PenaltyEncoding(problem, penalty)
        self.shots = shots
        self.max_iterations = max_iterations
        self.backend = backend
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_parameters(self) -> int:
        """Number of variational parameters."""

    @abc.abstractmethod
    def initial_parameters(self) -> np.ndarray:
        """Starting point for the optimizer."""

    @abc.abstractmethod
    def simulate(self, parameters: np.ndarray) -> np.ndarray:
        """Dense statevector of the ansatz at ``parameters``."""

    @abc.abstractmethod
    def build_circuit(self, parameters: np.ndarray) -> QuantumCircuit:
        """Gate-level circuit of the ansatz (for depth/noisy execution)."""

    # ------------------------------------------------------------------
    def distribution(self, parameters: np.ndarray) -> Dict[int, float]:
        """Output distribution at ``parameters`` (fast or backend path)."""
        telemetry.add("circuits.executed")
        if self.backend is not None:
            circuit = self.build_circuit(parameters)
            shots = self.shots or 1024
            telemetry.add("shots.total", shots)
            counts = self.backend.run(circuit, shots)
            total = sum(counts.values())
            return {key: count / total for key, count in counts.items()}
        probabilities = np.abs(self.simulate(parameters)) ** 2
        if self.shots is None:
            return {
                int(key): float(p)
                for key, p in enumerate(probabilities)
                if p > 1e-12
            }
        telemetry.add("shots.total", self.shots)
        counts = counts_from_probabilities(probabilities, self.shots, self._rng)
        return {key: count / self.shots for key, count in counts.items()}

    def penalty_expectation(self, distribution: Dict[int, float]) -> float:
        """Expected penalty energy — the training loss and the ARG input."""
        n = self.problem.num_variables
        return sum(
            probability
            * self.problem.penalty_value(int_to_bits(key, n), self.encoding.penalty)
            for key, probability in distribution.items()
        )

    # ------------------------------------------------------------------
    def solve(self) -> BaselineResult:
        """Train with COBYLA and score the final distribution."""
        history: List[float] = []

        def loss(parameters: np.ndarray) -> float:
            telemetry.add("optimizer.iterations")
            value = self.penalty_expectation(self.distribution(parameters))
            history.append(value)
            return value

        with telemetry.span(
            "baseline.solve",
            algorithm=self.algorithm,
            problem=self.problem.name,
        ):
            best = minimize_cobyla(
                loss, self.initial_parameters(), max_iterations=self.max_iterations
            )
            final = self.distribution(best)
        expectation = self.penalty_expectation(final)
        n = self.problem.num_variables
        rate = sum(
            probability
            for key, probability in final.items()
            if self.problem.is_feasible(int_to_bits(key, n))
        )
        return BaselineResult(
            algorithm=self.algorithm,
            problem_name=self.problem.name,
            best_parameters=np.asarray(best, dtype=float),
            expectation_value=expectation,
            arg=approximation_ratio_gap(self.problem.optimal_value, expectation),
            in_constraints_rate=rate,
            final_distribution=final,
            iterations=len(history),
            history=history,
            num_parameters=self.num_parameters,
        )
