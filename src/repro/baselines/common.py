"""Shared plumbing for the baseline variational algorithms.

Each baseline implements a fast dense simulation path
(:meth:`VariationalBaseline.simulate`) used for training, and a gate-level
circuit (:meth:`VariationalBaseline.build_circuit`) used for depth
accounting and noisy (backend) execution.  Both run through the shared
:class:`~repro.engine.ExecutionEngine` — the engine caches the synthesized
ansatz and rebinds angles per COBYLA evaluation, and owns all sampling
randomness.  Training minimises the expected penalty energy of the output
distribution with COBYLA, matching the paper's protocol (Section 5.1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.baselines.encoding import DEFAULT_PENALTY, PenaltyEncoding
from repro.baselines.optimizer import minimize_cobyla
from repro.circuits.circuit import QuantumCircuit
from repro.engine import AnsatzSpec, ExecutionEngine
from repro.engine.registry import BackendSpec
from repro.linalg.bitvec import int_to_bits
from repro.metrics.arg import approximation_ratio_gap
from repro.pipeline import compile_ansatz
from repro.problems.base import ConstrainedBinaryProblem
from repro.simulators.seeding import SeedBank, make_rng
from repro import telemetry


@dataclass
class BaselineResult:
    """Outcome of one baseline training run."""

    algorithm: str
    problem_name: str
    best_parameters: np.ndarray
    expectation_value: float
    arg: float
    in_constraints_rate: float
    final_distribution: Dict[int, float]
    iterations: int
    history: List[float]
    num_parameters: int

    def summary(self) -> str:
        return (
            f"{self.algorithm}/{self.problem_name}: ARG={self.arg:.3f} "
            f"in-constraints={self.in_constraints_rate:.1%} "
            f"params={self.num_parameters}"
        )


class VariationalBaseline(abc.ABC):
    """Base class for HEA / P-QAOA / Choco-Q.

    Args:
        problem: problem instance.
        penalty: penalty coefficient for scoring (and for training, where
            the method is penalty-based).
        shots: measurement shots for sampling-based scoring; ``None``
            scores the exact distribution.
        max_iterations: COBYLA iteration budget.
        backend: backend name or instance forwarded to the engine; when
            given, training runs real (possibly noisy) circuits instead of
            the dense fast path.
        seed: RNG seed.
        engine: share an existing :class:`ExecutionEngine` instead of
            building one (``backend`` is ignored then).
        engine_workers: process-pool width for a newly built engine.
    """

    algorithm: str = "baseline"

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        penalty: float = DEFAULT_PENALTY,
        shots: Optional[int] = 1024,
        max_iterations: int = 300,
        backend: BackendSpec = None,
        seed: Optional[int] = None,
        engine: Optional[ExecutionEngine] = None,
        engine_workers: Optional[int] = None,
    ) -> None:
        self.problem = problem
        self.encoding = PenaltyEncoding(problem, penalty)
        self.shots = shots
        self.max_iterations = max_iterations
        self._rng = make_rng(seed)
        bank = SeedBank(seed)
        if engine is None:
            engine = ExecutionEngine(
                backend, seed=bank.child(), workers=engine_workers
            )
        self.engine = engine
        self._spec: Optional[AnsatzSpec] = None
        self._spec_structure: Optional[Dict[str, Any]] = None

    @property
    def backend(self):
        """The engine's backend (``None`` in exact mode)."""
        return self.engine.backend

    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_parameters(self) -> int:
        """Number of variational parameters."""

    @abc.abstractmethod
    def initial_parameters(self) -> np.ndarray:
        """Starting point for the optimizer."""

    @abc.abstractmethod
    def simulate(self, parameters: np.ndarray) -> np.ndarray:
        """Dense statevector of the ansatz at ``parameters``."""

    @abc.abstractmethod
    def build_circuit(self, parameters: np.ndarray) -> QuantumCircuit:
        """Gate-level circuit of the ansatz (for depth/noisy execution)."""

    # ------------------------------------------------------------------
    def ansatz_structure(self) -> Dict[str, Any]:
        """JSON-compatible structural knobs of the ansatz circuit.

        Everything that changes the *shape* of the circuit (layer counts,
        frozen qubits, Trotterisation) belongs here: it is fingerprinted —
        together with the problem and the penalty encoding — into the
        ansatz's content address by :func:`repro.pipeline.compile_ansatz`.
        """
        return {}

    def ansatz_spec(self) -> AnsatzSpec:
        """This baseline's engine work description (content-addressed).

        The compiled-circuit cache key comes from the pipeline's
        encode/ansatz passes, so identical baseline instances (same
        problem, penalty, and structure) share one synthesized ansatz in
        the engine cache instead of each holding a process-unique key.
        The spec is rebuilt if the structure changes after construction
        (e.g. a later frozen-qubit selection).
        """
        structure = self.ansatz_structure()
        if self._spec is None or self._spec_structure != structure:
            artifact = compile_ansatz(
                self.problem,
                self.algorithm,
                self.num_parameters,
                structure,
                penalty=self.encoding.penalty,
            )
            self._spec = AnsatzSpec(
                key=artifact.cache_key,
                num_parameters=self.num_parameters,
                build=self.build_circuit,
                statevector=self.simulate,
            )
            self._spec_structure = structure
        return self._spec

    def bound_circuit(self, parameters: np.ndarray) -> QuantumCircuit:
        """Gate-level ansatz at ``parameters`` via the compiled cache."""
        return self.engine.ansatz_circuit(self.ansatz_spec(), parameters)

    def distribution(self, parameters: np.ndarray) -> Dict[int, float]:
        """Output distribution at ``parameters`` (engine-routed)."""
        return self.engine.sample_ansatz(
            self.ansatz_spec(), parameters, self.shots
        )

    def penalty_expectation(self, distribution: Dict[int, float]) -> float:
        """Expected penalty energy — the training loss and the ARG input."""
        n = self.problem.num_variables
        return sum(
            probability
            * self.problem.penalty_value(int_to_bits(key, n), self.encoding.penalty)
            for key, probability in distribution.items()
        )

    # ------------------------------------------------------------------
    def solve(self) -> BaselineResult:
        """Train with COBYLA and score the final distribution."""
        history: List[float] = []

        def loss(parameters: np.ndarray) -> float:
            telemetry.add("optimizer.iterations")
            value = self.penalty_expectation(self.distribution(parameters))
            history.append(value)
            return value

        with telemetry.span(
            "baseline.solve",
            algorithm=self.algorithm,
            problem=self.problem.name,
        ):
            best = minimize_cobyla(
                loss, self.initial_parameters(), max_iterations=self.max_iterations
            )
            final = self.distribution(best)
        expectation = self.penalty_expectation(final)
        n = self.problem.num_variables
        rate = sum(
            probability
            for key, probability in final.items()
            if self.problem.is_feasible(int_to_bits(key, n))
        )
        return BaselineResult(
            algorithm=self.algorithm,
            problem_name=self.problem.name,
            best_parameters=np.asarray(best, dtype=float),
            expectation_value=expectation,
            arg=approximation_ratio_gap(self.problem.optimal_value, expectation),
            in_constraints_rate=rate,
            final_distribution=final,
            iterations=len(history),
            history=history,
            num_parameters=self.num_parameters,
        )
