"""Annealing baselines: classical simulated annealing and a simulated
quantum annealer.

Quantum annealing is the other lineage the paper's related work discusses
(Section 6): it handles unconstrained QUBOs via adiabatic evolution but
"struggles to incorporate constraints effectively".  Two reference
implementations:

* :class:`SimulatedAnnealing` — classical Metropolis descent on the
  penalty energy; the customary classical yardstick for QUBO solvers.
* :class:`QuantumAnnealer` — dense-statevector integration of the
  time-dependent Hamiltonian ``H(s) = (1-s) H_X + s H_problem`` with a
  first-order Trotter schedule, i.e. the continuous process QAOA
  discretises.  Exact for small systems; used to demonstrate the
  constraint-handling gap Rasengan closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.encoding import DEFAULT_PENALTY, PenaltyEncoding
from repro.circuits.gates import single_qubit_matrix
from repro.engine import ExecutionEngine, ensure_engine
from repro.linalg.bitvec import int_to_bits
from repro.metrics.arg import approximation_ratio_gap
from repro.problems.base import ConstrainedBinaryProblem
from repro.simulators.seeding import make_rng
from repro.simulators.statevector import apply_single_qubit
from repro import telemetry


@dataclass
class AnnealResult:
    """Outcome of an annealing run."""

    problem_name: str
    best_value: float
    best_solution: np.ndarray
    arg: float
    in_constraints_rate: float
    history: List[float]


class SimulatedAnnealing:
    """Metropolis single-bit-flip annealing on the penalty energy.

    Args:
        problem: problem instance.
        penalty: penalty coefficient.
        sweeps: annealing sweeps (each sweep tries ``n`` flips).
        initial_temperature / final_temperature: geometric schedule ends.
        seed: RNG seed.
    """

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        penalty: float = DEFAULT_PENALTY,
        sweeps: int = 200,
        initial_temperature: Optional[float] = None,
        final_temperature: float = 0.05,
        seed: Optional[int] = None,
    ) -> None:
        self.problem = problem
        self.penalty = penalty
        self.sweeps = sweeps
        # Single-bit flips change the energy by O(penalty), so the hot end
        # of the schedule must be of that order to cross penalty walls.
        self.t_start = (
            initial_temperature if initial_temperature is not None else 2.0 * penalty
        )
        self.t_end = final_temperature
        self._rng = make_rng(seed)

    def solve(self) -> AnnealResult:
        n = self.problem.num_variables
        state = self._rng.integers(0, 2, size=n).astype(np.int8)
        energy = self.problem.penalty_value(state, self.penalty)
        best = state.copy()
        best_energy = energy
        history = [energy]
        ratio = (self.t_end / self.t_start) ** (1.0 / max(self.sweeps - 1, 1))
        temperature = self.t_start
        telemetry.add("annealing.sweeps", self.sweeps)
        for _ in range(self.sweeps):
            for _ in range(n):
                bit = int(self._rng.integers(0, n))
                state[bit] ^= 1
                candidate = self.problem.penalty_value(state, self.penalty)
                delta = candidate - energy
                if delta <= 0 or self._rng.random() < np.exp(-delta / temperature):
                    energy = candidate
                    if energy < best_energy:
                        best_energy = energy
                        best = state.copy()
                else:
                    state[bit] ^= 1  # reject
            history.append(energy)
            temperature *= ratio
        return AnnealResult(
            problem_name=self.problem.name,
            best_value=best_energy,
            best_solution=best,
            arg=approximation_ratio_gap(self.problem.optimal_value, best_energy),
            in_constraints_rate=float(self.problem.is_feasible(best)),
            history=history,
        )


class QuantumAnnealer:
    """Trotterised adiabatic evolution on a dense statevector.

    ``H(s) = -(1 - s) sum_i X_i + s * H_penalty`` from the uniform ground
    state of the mixer, stepped with first-order Trotter slices.  The
    final measurement distribution is scored exactly like the VQAs.

    Args:
        problem: problem instance.
        penalty: penalty coefficient inside ``H_penalty``.
        steps: Trotter slices (also the schedule resolution).
        total_time: total annealing time ``T`` (larger = more adiabatic).
        seed: RNG seed for the final measurement.
        engine: share an existing :class:`ExecutionEngine` (the final
            measurement routes through it either way).
    """

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        penalty: float = DEFAULT_PENALTY,
        steps: int = 100,
        total_time: float = 20.0,
        seed: Optional[int] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.problem = problem
        self.encoding = PenaltyEncoding(problem, penalty)
        self.steps = steps
        self.total_time = total_time
        self.engine = ensure_engine(engine, seed=seed)

    def final_state(self) -> np.ndarray:
        """Statevector after the full anneal."""
        n = self.problem.num_variables
        dim = 1 << n
        state = np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)
        # Normalise the problem Hamiltonian so the Trotter step size is
        # meaningful regardless of the penalty scale (the physical anneal
        # absorbs the scale into the schedule).
        energies = self.encoding.energies
        scale = float(np.abs(energies).max()) or 1.0
        energies = energies / scale
        dt = self.total_time / self.steps
        for step in range(self.steps):
            s = (step + 0.5) / self.steps
            # Problem phase: exp(-i s dt H_penalty) — diagonal.
            state = state * np.exp(-1j * s * dt * energies)
            # Mixer: exp(+i (1-s) dt sum X_i) = product of RX rotations.
            angle = -2.0 * (1.0 - s) * dt
            rx = single_qubit_matrix("rx", (angle,))
            for qubit in range(n):
                apply_single_qubit(state, rx, qubit, n)
        return state

    def solve(self, shots: int = 1024) -> AnnealResult:
        telemetry.add("annealing.trotter_steps", self.steps)
        state = self.final_state()
        probabilities = np.abs(state) ** 2
        n = self.problem.num_variables
        counts = self.engine.sample_distribution(
            probabilities / probabilities.sum(), shots
        )
        total_value = 0.0
        feasible = 0
        best_bits = None
        best_value = np.inf
        for sample, count in counts.items():
            bits = int_to_bits(int(sample), n)
            value = self.problem.penalty_value(bits, self.encoding.penalty)
            total_value += value * count
            if self.problem.is_feasible(bits):
                feasible += count
            if value < best_value:
                best_value = value
                best_bits = bits
        expectation = total_value / shots
        return AnnealResult(
            problem_name=self.problem.name,
            best_value=best_value,
            best_solution=best_bits,
            arg=approximation_ratio_gap(self.problem.optimal_value, expectation),
            in_constraints_rate=feasible / shots,
            history=[expectation],
        )
