"""Hardware-efficient ansatz (HEA), Kandala et al. (Nature'17).

Repeated layers of native single-qubit rotations (RY, RZ on every qubit)
with a linear chain of CX entanglers, trained against the penalty energy
(the paper adds a penalty method to HEA so its output can respect the
constraints "as much as possible", Section 5.1).

Parameter count is ``2 n (L + 1)`` — an initial rotation layer plus one
per entangling block — which is why Table 2 shows HEA using an order of
magnitude more parameters than the Hamiltonian-based methods.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import VariationalBaseline
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import single_qubit_matrix
from repro.problems.base import ConstrainedBinaryProblem
from repro.simulators.statevector import apply_controlled, apply_single_qubit


class HardwareEfficientAnsatz(VariationalBaseline):
    """HEA with RY/RZ rotation layers and CX-chain entanglers.

    Args:
        problem: problem instance.
        layers: number of entangling blocks (paper default: 5).
        **kwargs: see :class:`~repro.baselines.common.VariationalBaseline`.
    """

    algorithm = "hea"

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        layers: int = 5,
        **kwargs,
    ) -> None:
        super().__init__(problem, **kwargs)
        self.layers = layers

    @property
    def num_parameters(self) -> int:
        n = self.problem.num_variables
        return 2 * n * (self.layers + 1)

    def ansatz_structure(self):
        return {"layers": int(self.layers)}

    def initial_parameters(self) -> np.ndarray:
        return self._rng.uniform(-0.1, 0.1, size=self.num_parameters)

    # ------------------------------------------------------------------
    def _rotation_layer(
        self, state: np.ndarray, angles: np.ndarray, n: int
    ) -> np.ndarray:
        for qubit in range(n):
            ry = single_qubit_matrix("ry", (float(angles[2 * qubit]),))
            rz = single_qubit_matrix("rz", (float(angles[2 * qubit + 1]),))
            apply_single_qubit(state, ry, qubit, n)
            apply_single_qubit(state, rz, qubit, n)
        return state

    def simulate(self, parameters: np.ndarray) -> np.ndarray:
        n = self.problem.num_variables
        state = np.zeros(1 << n, dtype=np.complex128)
        state[0] = 1.0
        params = np.asarray(parameters, dtype=float).reshape(self.layers + 1, 2 * n)
        cx = single_qubit_matrix("x")
        state = self._rotation_layer(state, params[0], n)
        for layer in range(self.layers):
            for qubit in range(n - 1):
                apply_controlled(state, cx, (qubit,), (1,), qubit + 1, n)
            state = self._rotation_layer(state, params[layer + 1], n)
        return state

    def build_circuit(self, parameters: np.ndarray) -> QuantumCircuit:
        n = self.problem.num_variables
        params = np.asarray(parameters, dtype=float).reshape(self.layers + 1, 2 * n)
        circuit = QuantumCircuit(n, name="hea")

        def rotations(angles: np.ndarray) -> None:
            for qubit in range(n):
                circuit.ry(float(angles[2 * qubit]), qubit)
                circuit.rz(float(angles[2 * qubit + 1]), qubit)

        rotations(params[0])
        for layer in range(self.layers):
            for qubit in range(n - 1):
                circuit.cx(qubit, qubit + 1)
            rotations(params[layer + 1])
        circuit.measure_all()
        return circuit
