"""Penalty-term-based QAOA (P-QAOA), with the two optimization techniques
the paper combines it with (Section 5.1):

* **FrozenQubits** [3]: freeze the highest-degree ("hotspot") variables of
  the QUBO coupling graph at their values in a reference assignment,
  shrinking the circuit and smoothing the landscape.
* **Red-QAOA-style parameter initialization** [40]: a coarse single-layer
  ``(gamma, beta)`` grid search on the (frozen) energy landscape seeds
  every layer's initial parameters instead of starting from zero.

The phase-separation unitary is diagonal, so the fast simulation path is
an elementwise phase multiply of the cached penalty energies; the mixer is
a product of per-qubit RX rotations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.common import VariationalBaseline
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import single_qubit_matrix
from repro.problems.base import ConstrainedBinaryProblem
from repro.simulators.statevector import apply_single_qubit


class PenaltyQAOA(VariationalBaseline):
    """P-QAOA with optional FrozenQubits and Red-QAOA initialization.

    Args:
        problem: problem instance.
        layers: QAOA depth ``p`` (paper default: 5).
        frozen_qubits: number of hotspot variables to freeze (0 disables).
        parameter_init: ``"redqaoa"`` (grid-search seeding) or ``"zero"``.
        **kwargs: see :class:`~repro.baselines.common.VariationalBaseline`.
    """

    algorithm = "pqaoa"

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        layers: int = 5,
        frozen_qubits: int = 0,
        parameter_init: str = "redqaoa",
        **kwargs,
    ) -> None:
        super().__init__(problem, **kwargs)
        self.layers = layers
        self.parameter_init = parameter_init
        self.frozen: Dict[int, int] = {}
        if frozen_qubits > 0:
            self._freeze_hotspots(frozen_qubits)
        self._active = [
            qubit
            for qubit in range(problem.num_variables)
            if qubit not in self.frozen
        ]

    # ------------------------------------------------------------------
    # FrozenQubits
    # ------------------------------------------------------------------
    def _freeze_hotspots(self, count: int) -> None:
        """Clamp the ``count`` highest-degree variables.

        The reference values come from the problem's cheap feasible
        construction, the natural stand-in for FrozenQubits' majority-vote
        pre-solve.
        """
        degrees = self.encoding.variable_degrees()
        reference = self.problem.initial_feasible_solution()
        hotspots = np.argsort(-degrees)[:count]
        self.frozen = {int(q): int(reference[q]) for q in hotspots}

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return 2 * self.layers

    def ansatz_structure(self):
        # Frozen qubits change the circuit shape, so they are part of the
        # ansatz identity (sorted for a deterministic fingerprint).
        return {
            "layers": int(self.layers),
            "frozen": {str(q): int(v) for q, v in sorted(self.frozen.items())},
        }

    def initial_parameters(self) -> np.ndarray:
        if self.parameter_init == "zero":
            return np.zeros(self.num_parameters)
        gamma, beta = self._grid_search_seed()
        params = np.empty(self.num_parameters)
        params[0::2] = gamma
        params[1::2] = beta
        return params

    def _grid_search_seed(self) -> Tuple[float, float]:
        """Red-QAOA-style coarse sweep of a single-layer landscape.

        The 25-point sweep runs as one engine batch (the evaluations are
        independent, exact single-layer evolutions).
        """
        gammas = np.linspace(0.005, 0.1, 5)
        betas = np.linspace(0.1, 1.2, 5)
        grid = [
            (float(gamma), float(beta)) for gamma in gammas for beta in betas
        ]

        def landscape_value(point: Tuple[float, float]) -> float:
            state = self._evolve(list(point), layers=1)
            return float((np.abs(state) ** 2) @ self.encoding.energies)

        values = self.engine.run_batch(
            landscape_value, grid, label="redqaoa-grid"
        )
        best_index = int(np.argmin(values))
        return grid[best_index]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _initial_state(self) -> np.ndarray:
        """|+> on active qubits; frozen qubits pinned to their value."""
        n = self.problem.num_variables
        state = np.zeros(1 << n, dtype=np.complex128)
        state[0] = 1.0
        hadamard = single_qubit_matrix("h")
        x_gate = single_qubit_matrix("x")
        for qubit in range(n):
            if qubit in self.frozen:
                if self.frozen[qubit]:
                    apply_single_qubit(state, x_gate, qubit, n)
            else:
                apply_single_qubit(state, hadamard, qubit, n)
        return state

    def _evolve(self, parameters: np.ndarray, layers: Optional[int] = None) -> np.ndarray:
        n = self.problem.num_variables
        layers = self.layers if layers is None else layers
        params = np.asarray(parameters, dtype=float)
        state = self._initial_state()
        energies = self.encoding.energies
        for layer in range(layers):
            gamma = params[2 * layer]
            beta = params[2 * layer + 1]
            state = state * np.exp(-1j * gamma * energies)
            rx = single_qubit_matrix("rx", (2.0 * beta,))
            for qubit in self._active:
                apply_single_qubit(state, rx, qubit, n)
        return state

    def simulate(self, parameters: np.ndarray) -> np.ndarray:
        return self._evolve(parameters)

    # ------------------------------------------------------------------
    def build_circuit(self, parameters: np.ndarray) -> QuantumCircuit:
        n = self.problem.num_variables
        params = np.asarray(parameters, dtype=float)
        circuit = QuantumCircuit(n, name="pqaoa")
        for qubit in range(n):
            if qubit in self.frozen:
                if self.frozen[qubit]:
                    circuit.x(qubit)
            else:
                circuit.h(qubit)
        for layer in range(self.layers):
            gamma = float(params[2 * layer])
            beta = float(params[2 * layer + 1])
            circuit.compose(self.encoding.phase_separation_circuit(gamma))
            for qubit in self._active:
                circuit.rx(2.0 * beta, qubit)
        circuit.measure_all()
        return circuit
