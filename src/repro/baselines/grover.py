"""Grover adaptive search (GAS) for constrained binary optimization.

The related-work baseline of Gilliam et al. [18] (paper, Section 6):
repeatedly run Grover search with an oracle marking all states whose
penalty energy is *below the best value found so far*, using the
exponential schedule of Boyer et al. for the unknown number of marked
states.  The paper's criticism — the threshold/selection oracle is
expensive on hardware and the search wades through many invalid states —
is visible here as the oracle-call count and the infeasible-sample rate.

Simulation applies the Grover iterate ``G = D * O`` directly on a dense
statevector (the oracle is a diagonal sign flip off the cached energies;
the diffuser is the reflection about the uniform state), which is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.encoding import DEFAULT_PENALTY, PenaltyEncoding
from repro.engine import ExecutionEngine, ensure_engine
from repro.linalg.bitvec import int_to_bits
from repro.metrics.arg import approximation_ratio_gap
from repro.problems.base import ConstrainedBinaryProblem
from repro.simulators.seeding import make_rng


@dataclass
class GroverResult:
    """Outcome of one GAS run."""

    problem_name: str
    best_value: float
    best_solution: np.ndarray
    arg: float
    oracle_calls: int
    measurements: int
    infeasible_measurements: int
    history: List[float]

    @property
    def in_constraints_rate(self) -> float:
        if self.measurements == 0:
            return 0.0
        return 1.0 - self.infeasible_measurements / self.measurements


class GroverAdaptiveSearch:
    """Threshold-descending Grover search over the penalty energy.

    Args:
        problem: problem instance.
        penalty: penalty coefficient for the threshold oracle.
        max_rounds: number of threshold-improvement rounds.
        max_rotations_growth: Boyer et al. growth factor for the rotation
            count ceiling (8/7 in the original; larger is greedier).
        seed: RNG seed.
        engine: share an existing :class:`ExecutionEngine` (measurements
            route through it either way).
    """

    def __init__(
        self,
        problem: ConstrainedBinaryProblem,
        penalty: float = DEFAULT_PENALTY,
        max_rounds: int = 20,
        max_rotations_growth: float = 8.0 / 7.0,
        seed: Optional[int] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.problem = problem
        self.encoding = PenaltyEncoding(problem, penalty)
        self.max_rounds = max_rounds
        self.growth = max_rotations_growth
        self._rng = make_rng(seed)
        self.engine = ensure_engine(engine, seed=seed)

    # ------------------------------------------------------------------
    def _grover_iterate(self, state: np.ndarray, marked: np.ndarray) -> np.ndarray:
        """One ``D * O`` application (oracle then diffusion)."""
        state = state.copy()
        state[marked] *= -1.0
        dim = state.shape[0]
        mean = state.sum() / dim
        return 2.0 * mean - state

    def solve(self) -> GroverResult:
        """Run adaptive threshold descent and return the best sample."""
        energies = self.encoding.energies
        n = self.problem.num_variables
        dim = 1 << n
        uniform = np.full(dim, 1.0 / np.sqrt(dim))

        # Start from the cheap feasible construction, like a practitioner
        # would: GAS only needs *some* initial threshold.
        best_bits = self.problem.initial_feasible_solution()
        best_value = self.problem.penalty_value(best_bits, self.encoding.penalty)

        oracle_calls = 0
        measurements = 0
        infeasible = 0
        history: List[float] = [best_value]

        for _ in range(self.max_rounds):
            marked = np.flatnonzero(energies < best_value - 1e-12)
            if marked.size == 0:
                break  # threshold is already the global minimum
            ceiling = 1.0
            improved = False
            # Boyer et al. exponential schedule for unknown marked count.
            for _attempt in range(30):
                rotations = int(self._rng.integers(0, max(int(ceiling), 1))) + 1
                state = uniform
                for _ in range(rotations):
                    state = self._grover_iterate(state, marked)
                oracle_calls += rotations
                probabilities = np.abs(state) ** 2
                counts = self.engine.sample_distribution(
                    probabilities / probabilities.sum(), 1
                )
                sample = int(next(iter(counts)))
                measurements += 1
                bits = int_to_bits(sample, n)
                if not self.problem.is_feasible(bits):
                    infeasible += 1
                value = self.problem.penalty_value(bits, self.encoding.penalty)
                if value < best_value - 1e-12:
                    best_value = value
                    best_bits = bits
                    improved = True
                    break
                ceiling = min(ceiling * self.growth, np.sqrt(dim))
            history.append(best_value)
            if not improved:
                break

        return GroverResult(
            problem_name=self.problem.name,
            best_value=best_value,
            best_solution=best_bits,
            arg=approximation_ratio_gap(self.problem.optimal_value, best_value),
            oracle_calls=oracle_calls,
            measurements=measurements,
            infeasible_measurements=infeasible,
            history=history,
        )
