"""Classical optimizer drivers.

All algorithms in the paper (Rasengan and baselines) use constrained
optimization by linear approximation — COBYLA [33] — for parameter
updating.  A small SPSA implementation is provided as well because it is
the customary alternative for shot-noise-dominated landscapes; tests use
it to cross-check optimizer-agnostic behaviour.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import optimize as sciopt

from repro.simulators.seeding import SeedLike, make_rng
from repro import telemetry


def minimize_cobyla(
    loss: Callable[[np.ndarray], float],
    x0: np.ndarray,
    max_iterations: int = 300,
    rhobeg: float = 0.5,
) -> np.ndarray:
    """COBYLA minimisation; returns the best parameter vector found."""
    x0 = np.asarray(x0, dtype=float)
    if x0.size == 0:
        return x0
    with telemetry.span(
        "optimizer.cobyla", dimensions=int(x0.size), budget=max_iterations
    ):
        outcome = sciopt.minimize(
            loss,
            x0,
            method="COBYLA",
            options={"maxiter": max_iterations, "rhobeg": rhobeg},
        )
    return np.asarray(outcome.x, dtype=float)


def minimize_spsa(
    loss: Callable[[np.ndarray], float],
    x0: np.ndarray,
    max_iterations: int = 300,
    a: float = 0.2,
    c: float = 0.15,
    seed: SeedLike = None,
) -> np.ndarray:
    """Simultaneous-perturbation stochastic approximation.

    Two loss evaluations per iteration regardless of dimension; standard
    gain schedules ``a_k = a / (k+1)^0.602`` and ``c_k = c / (k+1)^0.101``.
    """
    rng = make_rng(seed)
    x = np.asarray(x0, dtype=float).copy()
    if x.size == 0:
        return x
    with telemetry.span(
        "optimizer.spsa", dimensions=int(x.size), budget=max_iterations
    ):
        best_x = x.copy()
        best_value = loss(x)
        for k in range(max_iterations):
            telemetry.add("optimizer.iterations")
            ak = a / (k + 1) ** 0.602
            ck = c / (k + 1) ** 0.101
            delta = rng.choice((-1.0, 1.0), size=x.shape)
            plus = loss(x + ck * delta)
            minus = loss(x - ck * delta)
            gradient = (plus - minus) / (2.0 * ck) * delta
            x = x - ak * gradient
            value = min(plus, minus)
            if value < best_value:
                best_value = value
                best_x = x.copy()
        final = loss(x)
        if final < best_value:
            best_x = x
    return best_x
