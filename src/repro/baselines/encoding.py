"""Penalty/QUBO encodings for the baseline algorithms.

Penalty-based methods (paper, Section 2.1) replace the constraints with a
soft quadratic penalty::

    E(x) = value(x) + penalty * || C x - b ||^2

All benchmark objectives are at most quadratic in the binary variables, so
the full energy is a QUBO.  :func:`qubo_coefficients` recovers the exact
coefficients numerically (constant, linear, pairwise) — ``f`` quadratic
implies ``J_ij = f(e_i + e_j) - f(e_i) - f(e_j) + f(0)`` identically.

:class:`PenaltyEncoding` caches the diagonal energy vector over all basis
states, which lets the dense simulators apply the phase-separation unitary
``exp(-i * gamma * H_obj)`` as an elementwise multiply, and provides the
gate-level phase-separation circuit (RZ + ZZ interactions) used for depth
accounting and noisy execution.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.linalg.bitvec import all_bitvectors
from repro.problems.base import ConstrainedBinaryProblem

#: Default penalty coefficient; large enough that one unit of constraint
#: violation always dominates objective differences on the benchmark scales.
DEFAULT_PENALTY = 50.0


def qubo_coefficients(
    problem: ConstrainedBinaryProblem, penalty: float
) -> Tuple[float, np.ndarray, Dict[Tuple[int, int], float]]:
    """Exact QUBO coefficients of the penalty energy.

    Returns:
        ``(constant, linear, quadratic)`` with ``quadratic`` keyed by
        ``(i, j)`` pairs, ``i < j``, containing only nonzero couplings.
    """
    n = problem.num_variables

    def energy(x: np.ndarray) -> float:
        violation = problem.constraint_matrix @ x.astype(np.int64) - problem.bound
        return problem.value(x) + penalty * float(violation @ violation)

    zero = np.zeros(n, dtype=np.int8)
    constant = energy(zero)
    linear = np.zeros(n)
    singles = []
    for i in range(n):
        e_i = zero.copy()
        e_i[i] = 1
        singles.append(e_i)
        linear[i] = energy(e_i) - constant
    quadratic: Dict[Tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            pair = singles[i] + singles[j]
            coupling = energy(pair) - energy(singles[i]) - energy(singles[j]) + constant
            if abs(coupling) > 1e-12:
                quadratic[(i, j)] = coupling
    return constant, linear, quadratic


class PenaltyEncoding:
    """Cached penalty-energy view of a problem.

    Attributes:
        problem: the underlying constrained problem.
        penalty: penalty coefficient ``lambda``.
    """

    def __init__(
        self, problem: ConstrainedBinaryProblem, penalty: float = DEFAULT_PENALTY
    ) -> None:
        self.problem = problem
        self.penalty = penalty

    @functools.cached_property
    def energies(self) -> np.ndarray:
        """Penalty energy of every basis state (vectorised, cached)."""
        n = self.problem.num_variables
        bits = all_bitvectors(n).astype(np.int64)
        residual = bits @ self.problem.constraint_matrix.T - self.problem.bound
        violation = (residual**2).sum(axis=1).astype(np.float64)
        values = np.array([self.problem.value(row) for row in bits])
        return values + self.penalty * violation

    @functools.cached_property
    def qubo(self) -> Tuple[float, np.ndarray, Dict[Tuple[int, int], float]]:
        return qubo_coefficients(self.problem, self.penalty)

    @property
    def coupling_pairs(self) -> List[Tuple[int, int]]:
        """Variable pairs with nonzero QUBO coupling (the ZZ interactions)."""
        return sorted(self.qubo[2])

    def variable_degrees(self) -> np.ndarray:
        """Coupling-graph degree of each variable.

        FrozenQubits freezes the highest-degree ("hotspot") variables.
        """
        degrees = np.zeros(self.problem.num_variables, dtype=np.int64)
        for i, j in self.qubo[2]:
            degrees[i] += 1
            degrees[j] += 1
        return degrees

    def phase_separation_circuit(self, gamma: float) -> QuantumCircuit:
        """Gate-level ``exp(-i * gamma * H_obj)`` (up to global phase).

        Standard QUBO-to-Ising construction: an RZ per linear/field term
        and a CX-RZ-CX sandwich per coupling.  Used for depth accounting
        and for noisy gate-level execution.
        """
        n = self.problem.num_variables
        _, linear, quadratic = self.qubo
        circuit = QuantumCircuit(n, name="phase_separation")
        # Ising fields: x_i = (1 - z_i) / 2 maps linear and coupling terms
        # onto single-qubit Z rotations with shifted angles.
        fields = linear.astype(np.float64).copy() / 2.0
        for (i, j), coupling in quadratic.items():
            fields[i] += coupling / 4.0
            fields[j] += coupling / 4.0
        for qubit in range(n):
            if abs(fields[qubit]) > 1e-12:
                circuit.rz(-2.0 * gamma * fields[qubit], qubit)
        for (i, j), coupling in quadratic.items():
            angle = gamma * coupling / 2.0
            circuit.cx(i, j)
            circuit.rz(angle, j)
            circuit.cx(i, j)
        return circuit
