"""repro.bench: schema round-trip, comparison verdicts, gate exit codes.

The statistical contract under test: shifts inside the noise threshold
are neutral, shifts far outside it are regressed, and the verdicts do
not flip when the bootstrap RNG seed changes.
"""

import json

import numpy as np
import pytest

from repro.bench import (
    SCHEMA_ID,
    BenchSchemaError,
    compare_reports,
    format_comparison,
    get_workload,
    load_report,
    new_report,
    run_workload,
    validate_report,
    workload_entry,
    workloads_for,
    write_report,
)
from repro.bench.cli import GATE_EXIT_CODE, _parse_threshold, main as bench_main


def make_samples(center, *, jitter=0.01, n=8, seed=0):
    """Deterministic timing-like samples around ``center`` seconds."""
    rng = np.random.default_rng(seed)
    return [float(center * (1.0 + jitter * rng.standard_normal())) for _ in range(n)]


def make_report(samples_by_name, *, counters=None, environment=None):
    workloads = {
        name: workload_entry(
            seed=17,
            samples_seconds=samples,
            counters=counters or {},
        )
        for name, samples in samples_by_name.items()
    }
    kwargs = {} if environment is None else {"environment": environment}
    return new_report("quick", workloads, repeats=len(samples_by_name), warmup=1, **kwargs)


class TestSchema:
    def test_round_trip(self, tmp_path):
        report = make_report({"w": make_samples(0.002)}, counters={"c": 3.0})
        path = tmp_path / "BENCH_quick.json"
        write_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded == report
        assert loaded["schema"] == SCHEMA_ID

    def test_forward_compat_unknown_fields_preserved(self, tmp_path):
        report = make_report({"w": make_samples(0.002)})
        report["future_field"] = {"nested": [1, 2, 3]}
        report["workloads"]["w"]["future_metric"] = 0.5
        path = tmp_path / "report.json"
        write_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded["future_field"] == {"nested": [1, 2, 3]}
        assert loaded["workloads"]["w"]["future_metric"] == 0.5
        validate_report(loaded)

    def test_rejects_non_object(self):
        with pytest.raises(BenchSchemaError, match="JSON object"):
            validate_report([1, 2, 3])

    def test_rejects_missing_samples(self):
        report = make_report({"w": make_samples(0.002)})
        del report["workloads"]["w"]["samples_seconds"]
        with pytest.raises(BenchSchemaError):
            validate_report(report)

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(BenchSchemaError):
            load_report(str(path))


class TestCompareVerdicts:
    @pytest.mark.parametrize(
        "shift,expected",
        [(0.0, "neutral"), (0.03, "neutral"), (0.30, "regressed")],
    )
    def test_known_shifts(self, shift, expected):
        base = make_report({"w": make_samples(1.0, seed=1)})
        cand = make_report({"w": make_samples(1.0 * (1 + shift), seed=2)})
        comparison = compare_reports(base, cand)
        assert comparison.workloads[0].verdict == expected

    @pytest.mark.parametrize("shift", [0.0, 0.03, 0.30])
    def test_verdict_stable_across_bootstrap_seeds(self, shift):
        base = make_report({"w": make_samples(1.0, seed=1)})
        cand = make_report({"w": make_samples(1.0 * (1 + shift), seed=2)})
        verdicts = {
            compare_reports(base, cand, seed=seed).workloads[0].verdict
            for seed in range(5)
        }
        assert len(verdicts) == 1

    def test_improvement_detected(self):
        base = make_report({"w": make_samples(1.0, seed=1)})
        cand = make_report({"w": make_samples(0.7, seed=2)})
        assert compare_reports(base, cand).workloads[0].verdict == "improved"

    def test_added_and_removed_never_gate(self):
        base = make_report({"old": make_samples(1.0)})
        cand = make_report({"new": make_samples(1.0)})
        comparison = compare_reports(base, cand)
        verdicts = {w.name: w.verdict for w in comparison.workloads}
        assert verdicts == {"old": "removed", "new": "added"}
        assert comparison.regressed == []

    def test_counter_drift_surfaced(self):
        base = make_report({"w": make_samples(1.0)}, counters={"runs": 4.0})
        cand = make_report({"w": make_samples(1.0)}, counters={"runs": 8.0})
        comparison = compare_reports(base, cand)
        assert comparison.workloads[0].counter_drift == {"runs": (4.0, 8.0)}
        assert comparison.counter_drifts

    def test_environment_mismatch_listed(self):
        base = make_report({"w": make_samples(1.0)}, environment={"python": "3.11"})
        cand = make_report({"w": make_samples(1.0)}, environment={"python": "3.12"})
        comparison = compare_reports(base, cand)
        assert comparison.environment_mismatch

    def test_format_contains_summary(self):
        base = make_report({"w": make_samples(1.0, seed=1)})
        cand = make_report({"w": make_samples(1.4, seed=2)})
        text = format_comparison(compare_reports(base, cand))
        assert "1 regressed" in text
        assert "bootstrap CI" in text


class TestGateExitCodes:
    def write(self, tmp_path, name, report):
        path = tmp_path / name
        write_report(report, str(path))
        return str(path)

    def test_gate_passes_on_unchanged_tree(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "base.json", make_report({"w": make_samples(1.0, seed=1)})
        )
        cand = self.write(
            tmp_path, "cand.json", make_report({"w": make_samples(1.0, seed=2)})
        )
        assert bench_main(["gate", "--against", base, "--candidate", cand]) == 0

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "base.json", make_report({"w": make_samples(1.0, seed=1)})
        )
        cand = self.write(
            tmp_path, "cand.json", make_report({"w": make_samples(1.5, seed=2)})
        )
        code = bench_main(["gate", "--against", base, "--candidate", cand])
        assert code == GATE_EXIT_CODE
        assert "regressed" in capsys.readouterr().err

    def test_gate_env_mismatch_warns_and_passes(self, tmp_path, capsys):
        base = self.write(
            tmp_path,
            "base.json",
            make_report(
                {"w": make_samples(1.0, seed=1)}, environment={"machine": "a"}
            ),
        )
        cand = self.write(
            tmp_path,
            "cand.json",
            make_report(
                {"w": make_samples(1.5, seed=2)}, environment={"machine": "b"}
            ),
        )
        assert bench_main(["gate", "--against", base, "--candidate", cand]) == 0
        code = bench_main(
            ["gate", "--against", base, "--candidate", cand, "--strict-env"]
        )
        assert code == GATE_EXIT_CODE

    def test_gate_bad_input_is_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        good = self.write(
            tmp_path, "good.json", make_report({"w": make_samples(1.0)})
        )
        code = bench_main(["gate", "--against", str(bad), "--candidate", good])
        assert code == 2

    def test_compare_cli_json(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "base.json", make_report({"w": make_samples(1.0, seed=1)})
        )
        cand = self.write(
            tmp_path, "cand.json", make_report({"w": make_samples(1.0, seed=2)})
        )
        assert bench_main(["compare", base, cand, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["regressed"] == 0


class TestThresholdParsing:
    @pytest.mark.parametrize("text,expected", [("25%", 0.25), ("0.25", 0.25), ("0", 0.0)])
    def test_accepted(self, text, expected):
        assert _parse_threshold(text) == pytest.approx(expected)

    def test_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_threshold("fast")


class TestRegistryAndRunner:
    def test_quick_suite_nonempty_and_sorted_membership(self):
        quick = workloads_for("quick")
        assert quick
        full = {w.name for w in workloads_for("full")}
        assert {w.name for w in quick} <= full

    def test_workload_counters_deterministic(self):
        workload = get_workload("micro.decompose.barenco")
        first = run_workload(workload, repeats=1, warmup=0)
        second = run_workload(workload, repeats=1, warmup=0)
        assert first["counters"] == second["counters"]
        assert first["seed"] == second["seed"] == workload.seed

    def test_run_workload_entry_schema(self):
        workload = get_workload("micro.decompose.barenco")
        entry = run_workload(workload, repeats=2, warmup=0)
        assert len(entry["samples_seconds"]) == 2
        report = new_report("quick", {workload.name: entry}, repeats=2, warmup=0)
        validate_report(report)

    def test_cli_list(self, capsys):
        assert bench_main(["list", "--suite", "quick"]) == 0
        out = capsys.readouterr().out
        assert "micro.statevector.apply" in out
