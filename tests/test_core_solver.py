"""End-to-end RasenganSolver behaviour."""

import numpy as np
import pytest

from repro.core.solver import RasenganConfig, RasenganResult, RasenganSolver
from repro.exceptions import SolverError
from repro.linalg.bitvec import int_to_bits
from repro.problems import make_benchmark
from repro.simulators.backends import IdealBackend, NoisyTrajectoryBackend
from repro.simulators.noise import NoiseModel


def exact_config(**overrides):
    defaults = dict(shots=None, max_iterations=200, seed=0)
    defaults.update(overrides)
    return RasenganConfig(**defaults)


class TestExactEngine:
    def test_f1_reaches_optimum(self):
        problem = make_benchmark("F1", 0)
        result = RasenganSolver(problem, config=exact_config()).solve()
        assert result.arg < 0.05
        assert result.best_sampled_value == problem.optimal_value
        assert result.in_constraints_rate == 1.0

    def test_output_is_feasible_distribution(self):
        problem = make_benchmark("J1", 0)
        result = RasenganSolver(problem, config=exact_config()).solve()
        for key in result.final_distribution:
            assert problem.is_feasible(int_to_bits(key, problem.num_variables))

    def test_distribution_normalised(self):
        problem = make_benchmark("K1", 0)
        result = RasenganSolver(problem, config=exact_config()).solve()
        assert sum(result.final_distribution.values()) == pytest.approx(1.0)

    def test_history_recorded(self):
        problem = make_benchmark("F1", 0)
        result = RasenganSolver(problem, config=exact_config(max_iterations=30)).solve()
        assert 0 < result.iterations <= 35
        assert len(result.history) == result.iterations

    def test_parameter_count_equals_schedule(self):
        problem = make_benchmark("F2", 0)
        solver = RasenganSolver(problem, config=exact_config())
        assert solver.num_parameters == len(solver.schedule)

    def test_execute_validates_length(self):
        problem = make_benchmark("F1", 0)
        solver = RasenganSolver(problem, config=exact_config())
        with pytest.raises(SolverError):
            solver.execute([0.1])

    def test_summary_renders(self):
        problem = make_benchmark("F1", 0)
        result = RasenganSolver(problem, config=exact_config(max_iterations=10)).solve()
        assert "ARG" in result.summary()


class TestSampledEngine:
    def test_shot_sampling_still_converges(self):
        problem = make_benchmark("F1", 0)
        config = exact_config(shots=2048, max_iterations=150)
        result = RasenganSolver(problem, config=config).solve()
        assert result.arg < 0.3
        assert result.best_sampled_value == problem.optimal_value


class TestAblationKnobs:
    def test_disable_prune_lengthens_schedule(self):
        problem = make_benchmark("F2", 0)
        pruned = RasenganSolver(problem, config=exact_config())
        unpruned = RasenganSolver(problem, config=exact_config(enable_prune=False))
        assert unpruned.num_parameters > pruned.num_parameters

    def test_disable_simplify_keeps_raw_basis(self):
        problem = make_benchmark("F2", 0)
        solver = RasenganSolver(problem, config=exact_config(enable_simplify=False))
        raw_rows = {tuple(r) for r in problem.homogeneous_basis}
        assert all(tuple(r) in raw_rows for r in solver.basis[: len(raw_rows)])

    def test_segment_grouping_reduces_segments(self):
        problem = make_benchmark("S1", 0)
        fine = RasenganSolver(problem, config=exact_config(transitions_per_segment=1))
        coarse = RasenganSolver(problem, config=exact_config(transitions_per_segment=4))
        assert coarse.num_segments < fine.num_segments

    def test_depth_costs_monotone(self):
        problem = make_benchmark("S1", 0)
        solver = RasenganSolver(problem, config=exact_config())
        assert solver.segment_two_qubit_cost() <= solver.chain_two_qubit_cost()


class TestBackendEngine:
    def test_ideal_backend_agrees_with_exact(self):
        problem = make_benchmark("F1", 0)
        exact = RasenganSolver(problem, config=exact_config()).solve()
        backend = IdealBackend(seed=1)
        sampled = RasenganSolver(
            problem, backend=backend, config=exact_config(shots=4096, max_iterations=80)
        ).solve()
        assert sampled.arg < exact.arg + 0.3
        assert sampled.in_constraints_rate == 1.0

    def test_noisy_backend_with_purification_stays_feasible(self):
        problem = make_benchmark("F1", 0)
        backend = NoisyTrajectoryBackend(
            NoiseModel.from_error_rates(
                single_qubit_error=0.001, two_qubit_error=0.01
            ),
            seed=2,
            max_trajectories=16,
        )
        config = exact_config(shots=512, max_iterations=15)
        result = RasenganSolver(problem, backend=backend, config=config).solve()
        assert not result.failed
        for key in result.final_distribution:
            assert problem.is_feasible(int_to_bits(key, problem.num_variables))

    def test_extreme_noise_fails_gracefully(self):
        problem = make_benchmark("F1", 0)
        backend = NoisyTrajectoryBackend(
            NoiseModel.from_error_rates(
                single_qubit_error=0.4, two_qubit_error=0.5, readout_error=0.4
            ),
            seed=3,
            max_trajectories=4,
        )
        config = exact_config(shots=64, max_iterations=4)
        result = RasenganSolver(problem, backend=backend, config=config).solve()
        # Either it survives purification or reports failure; never crashes.
        assert isinstance(result, RasenganResult)


class TestRestarts:
    def test_restarts_never_hurt_and_cure_s1(self):
        problem = make_benchmark("S1", 0)
        single = RasenganSolver(
            problem, config=exact_config(max_iterations=150, restarts=1)
        ).solve()
        multi = RasenganSolver(
            problem, config=exact_config(max_iterations=150, restarts=3)
        ).solve()
        assert multi.expectation_value <= single.expectation_value + 1e-9

    def test_restart_count_respected_in_history(self):
        problem = make_benchmark("F1", 0)
        single = RasenganSolver(
            problem, config=exact_config(max_iterations=20, restarts=1)
        ).solve()
        triple = RasenganSolver(
            problem, config=exact_config(max_iterations=20, restarts=3)
        ).solve()
        assert triple.iterations > single.iterations
