"""Quantile histograms, cross-process merging, and the export formats.

The Prometheus/Chrome exporters are validated with the same checkers
(``tools/check_trace_outputs.py``) the CI trace-export smoke job runs,
so the test suite and CI cannot disagree about what "valid" means.
"""

from __future__ import annotations

import io
import json

import pytest

from check_trace_outputs import check_chrome_trace, check_prometheus_text
from repro import telemetry
from repro.telemetry import (
    BUCKET_BASE,
    Histogram,
    Span,
    TelemetryCollector,
    bucket_bound,
    bucket_index,
    chrome_trace,
    prometheus_text,
    read_jsonl,
    sanitize_metric_name,
    write_chrome_trace,
    write_jsonl,
)


def _collector_with_data() -> TelemetryCollector:
    with telemetry.session() as collector:
        with telemetry.span("solve", label="F1"):
            with telemetry.span("restart", index=0):
                telemetry.add("circuits.executed", 4)
        telemetry.add("shots.total", 1024)
        for value in (0.001, 0.01, 0.1, 1.0):
            telemetry.observe("engine.execute_seconds", value)
    return collector


class TestQuantileHistogram:
    def test_bucket_index_bounds_value(self):
        for value in (1e-6, 0.003, 0.5, 1.0, 7.3, 1e4):
            index = bucket_index(value)
            assert bucket_bound(index - 1) < value <= bucket_bound(index)

    def test_quantile_relative_error_bounded(self):
        histogram = Histogram()
        values = [0.0001 * (1.17 ** i) for i in range(200)]
        for value in values:
            histogram.observe(value)
        values.sort()
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = values[min(len(values) - 1, int(q * len(values)))]
            approx = histogram.quantile(q)
            assert approx <= histogram.maximum
            # One log bucket of slack: <= BUCKET_BASE relative error.
            assert exact / BUCKET_BASE <= approx <= exact * BUCKET_BASE

    def test_single_observation_is_exact(self):
        histogram = Histogram()
        histogram.observe(3.7)
        assert histogram.p50 == 3.7
        assert histogram.p99 == 3.7

    def test_underflow_bucket(self):
        histogram = Histogram()
        for value in (-1.0, 0.0, 5.0):
            histogram.observe(value)
        assert histogram.underflow == 2
        assert histogram.quantile(0.5) == 0.0  # clamped above minimum
        assert histogram.minimum == -1.0

    def test_merge_equals_serial_observation(self):
        left, right, serial = Histogram(), Histogram(), Histogram()
        for index, value in enumerate((0.01, 0.5, 2.0, 8.0, 0.0, 30.0)):
            (left if index % 2 else right).observe(value)
            serial.observe(value)
        left.merge(right)
        assert left.count == serial.count
        assert left.total == serial.total
        assert left.minimum == serial.minimum
        assert left.maximum == serial.maximum
        assert left.buckets == serial.buckets
        assert left.underflow == serial.underflow
        assert left.p50 == serial.p50 and left.p99 == serial.p99

    def test_to_dict_round_trip(self):
        histogram = Histogram()
        for value in (0.2, 0.4, 9.0):
            histogram.observe(value)
        clone = Histogram.from_dict(histogram.to_dict())
        assert clone.buckets == histogram.buckets
        assert clone.count == histogram.count
        assert clone.p90 == histogram.p90

    def test_legacy_payload_without_buckets(self):
        # Trace files written before log-bucketing carried only the
        # streaming aggregates; quantiles degrade to interpolation.
        legacy = Histogram.from_dict(
            {"count": 10, "total": 55.0, "min": 1.0, "max": 10.0}
        )
        assert legacy.count == 10
        assert legacy.buckets == {}
        assert legacy.quantile(0.0) == 1.0
        assert legacy.quantile(1.0) == 10.0
        assert legacy.quantile(0.5) == pytest.approx(5.5)


class TestCollectorMerge:
    def test_merge_delta_matches_serial_totals(self):
        serial = TelemetryCollector()
        parent = TelemetryCollector()
        child = TelemetryCollector()
        for collector in (serial, parent):
            collector.add("circuits.executed", 3)
            collector.observe("engine.execute_seconds", 0.25)
        serial.add("circuits.executed", 2)
        serial.observe("engine.execute_seconds", 0.75)
        child.add("circuits.executed", 2)
        child.observe("engine.execute_seconds", 0.75)
        parent.merge(child.to_delta())
        assert parent.counters == serial.counters
        assert (
            parent.histograms["engine.execute_seconds"].buckets
            == serial.histograms["engine.execute_seconds"].buckets
        )

    def test_merge_stitches_spans_under_parent(self):
        parent = TelemetryCollector()
        anchor = Span(name="engine.map", start=0.0, end=1.0)
        parent.roots.append(anchor)
        child = TelemetryCollector()
        root = Span(name="restart", start=0.1, end=0.9)
        root.attributes["worker_pid"] = 4242
        child.roots.append(root)
        child._span_count = 1
        parent.merge(child.to_delta(), parent=anchor)
        assert [node.name for node in anchor.children] == ["restart"]
        assert anchor.children[0].attributes["worker_pid"] == 4242

    def test_read_jsonl_accumulates_into_existing_collector(self):
        collector = _collector_with_data()
        buffer = io.StringIO()
        write_jsonl(collector, buffer)
        first = read_jsonl(io.StringIO(buffer.getvalue()))
        merged = read_jsonl(io.StringIO(buffer.getvalue()), into=first)
        assert merged is first
        assert merged.counter("shots.total") == 2 * collector.counter(
            "shots.total"
        )
        assert (
            merged.histograms["engine.execute_seconds"].count
            == 2 * collector.histograms["engine.execute_seconds"].count
        )
        assert len(merged.roots) == 2 * len(collector.roots)


class TestPrometheusExport:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("engine.cache.hits") == "engine_cache_hits"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a-b c") == "a_b_c"
        assert sanitize_metric_name("ok_name:sub") == "ok_name:sub"

    def test_disabled_telemetry_still_renders(self):
        text = prometheus_text(None)
        assert "telemetry_enabled 0" in text
        assert check_prometheus_text(text) == []

    def test_export_passes_checker(self):
        text = prometheus_text(_collector_with_data())
        assert check_prometheus_text(text) == []
        assert "circuits_executed 4" in text
        assert "shots_total 1024" in text
        assert 'engine_execute_seconds_bucket{le="+Inf"} 4' in text
        assert "engine_execute_seconds_count 4" in text

    def test_histogram_buckets_cumulative(self):
        text = prometheus_text(_collector_with_data())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("engine_execute_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_checker_flags_bad_payloads(self):
        assert check_prometheus_text("bad.name 1\n")
        assert check_prometheus_text("name_without_value\n")
        decreasing = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        problems = check_prometheus_text(decreasing)
        assert any("decrease" in problem for problem in problems)


class TestChromeTraceExport:
    def test_export_passes_checker(self):
        document = chrome_trace(_collector_with_data())
        assert check_chrome_trace(document) == []
        names = [event["name"] for event in document["traceEvents"]]
        assert names == ["solve", "restart"]
        assert document["traceEvents"][0]["args"]["label"] == "F1"

    def test_worker_pid_routes_subtree(self):
        collector = TelemetryCollector()
        root = Span(name="engine.map", start=0.0, end=1.0)
        stitched = Span(name="restart", start=0.2, end=0.8)
        stitched.attributes["worker_pid"] = 777
        inner = Span(name="iteration", start=0.3, end=0.4)
        stitched.children.append(inner)
        root.children.append(stitched)
        collector.roots.append(root)
        document = chrome_trace(collector)
        by_name = {event["name"]: event for event in document["traceEvents"]}
        assert by_name["engine.map"]["pid"] != 777
        assert by_name["restart"]["pid"] == 777
        assert by_name["iteration"]["pid"] == 777  # inherited down the tree
        assert check_chrome_trace(document) == []

    def test_timestamps_relative_and_microseconds(self):
        collector = TelemetryCollector()
        collector.roots.append(Span(name="a", start=100.0, end=100.5))
        collector.roots.append(Span(name="b", start=100.25, end=100.75))
        document = chrome_trace(collector)
        a, b = document["traceEvents"]
        assert a["ts"] == 0.0
        assert b["ts"] == pytest.approx(0.25e6)
        assert a["dur"] == pytest.approx(0.5e6)
        assert a["tid"] != b["tid"]  # one track per root

    def test_write_chrome_trace_to_path(self, tmp_path):
        destination = tmp_path / "trace.json"
        write_chrome_trace(_collector_with_data(), destination)
        document = json.loads(destination.read_text())
        assert check_chrome_trace(document) == []

    def test_checker_flags_bad_payloads(self):
        assert check_chrome_trace([]) == [
            "top level must be an object, got list"
        ]
        assert check_chrome_trace({}) == ["missing traceEvents array"]
        problems = check_chrome_trace(
            {"traceEvents": [{"ph": "B", "name": "x"}]}
        )
        assert any("ph must be 'X'" in problem for problem in problems)
