"""QuantumCircuit container behaviour."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Instruction
from repro.exceptions import CircuitError


class TestConstruction:
    def test_negative_width_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_out_of_range_qubit_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.x(2)

    def test_len_and_iter(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        assert len(qc) == 2
        assert [instr.name for instr in qc] == ["h", "cx"]

    def test_getitem(self):
        qc = QuantumCircuit(1)
        qc.rz(0.5, 0)
        assert qc[0].params == (0.5,)

    def test_repr(self):
        qc = QuantumCircuit(3, name="bell")
        assert "bell" in repr(qc)


class TestBuilders:
    def test_all_single_qubit_builders(self):
        qc = QuantumCircuit(1)
        qc.x(0); qc.y(0); qc.z(0); qc.h(0); qc.s(0); qc.sdg(0); qc.sx(0)
        qc.rx(0.1, 0); qc.ry(0.2, 0); qc.rz(0.3, 0); qc.p(0.4, 0)
        qc.u(0.1, 0.2, 0.3, 0)
        assert len(qc) == 12

    def test_controlled_builders(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1); qc.cz(0, 1); qc.cp(0.1, 0, 1); qc.crx(0.2, 0, 1)
        qc.swap(0, 1); qc.ccx(0, 1, 2)
        qc.mcx([0, 1, 2], 3)
        qc.mcp(0.3, [0, 1], 2)
        qc.mcrx(0.4, [0, 1], 2, ctrl_state=(1, 0))
        assert len(qc) == 9
        assert qc[8].ctrl_state == (1, 0)

    def test_params_coerced_to_float(self):
        qc = QuantumCircuit(1)
        qc.rx(1, 0)
        assert isinstance(qc[0].params[0], float)

    def test_measure_all(self):
        qc = QuantumCircuit(3)
        qc.measure_all()
        assert len(qc) == 3
        assert all(instr.name == "measure" for instr in qc)


class TestCompose:
    def test_compose_appends(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        a.compose(b)
        assert [instr.name for instr in a] == ["h", "cx"]

    def test_compose_width_check(self):
        a = QuantumCircuit(1)
        b = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            a.compose(b)

    def test_copy_is_independent(self):
        a = QuantumCircuit(1)
        a.x(0)
        b = a.copy()
        b.x(0)
        assert len(a) == 1
        assert len(b) == 2


class TestPrepareBitstring:
    def test_applies_x_on_ones(self):
        qc = QuantumCircuit(4)
        qc.prepare_bitstring([1, 0, 1, 0])
        targets = [instr.qubits[0] for instr in qc]
        assert targets == [0, 2]

    def test_length_mismatch(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.prepare_bitstring([1, 0, 1])


class TestParameterCount:
    def test_counts_rotations_only(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.rx(0.1, 0)
        qc.mcrx(0.2, [0], 1)
        qc.cx(0, 1)
        assert qc.num_parameters_like() == 2
