"""Move-set arithmetic and connectivity augmentation."""

import numpy as np

from repro.linalg.bitvec import bits_to_int
from repro.linalg.feasible import enumerate_feasible_bruteforce
from repro.linalg.moves import (
    augment_moves_for_connectivity,
    candidate_combinations,
    expand_closure,
    move_partner_key,
)
from repro.linalg.nullspace import integer_nullspace
from repro.problems import make_benchmark


class TestMovePartner:
    def test_plus_direction(self):
        # x=(0,1), u=(1,-1) -> x+u=(1,0).
        assert move_partner_key(0b10, np.array([1, -1]), 2) == 0b01

    def test_minus_direction(self):
        assert move_partner_key(0b01, np.array([1, -1]), 2) == 0b10

    def test_no_partner(self):
        # x=(0,0), u=(1,-1): x+u=(1,-1) invalid, x-u=(-1,1) invalid.
        assert move_partner_key(0b00, np.array([1, -1]), 2) is None

    def test_partner_is_involution(self):
        u = np.array([1, 0, -1, 1])
        for key in range(16):
            partner = move_partner_key(key, u, 4)
            if partner is not None:
                assert move_partner_key(partner, u, 4) == key


class TestExpandClosure:
    def test_reaches_all_paper_solutions(self, paper_constraints):
        matrix, bound, particular = paper_constraints
        basis = integer_nullspace(matrix, require_signed_unit=True)
        reached = {bits_to_int(particular)}
        expand_closure(list(basis), reached, 5)
        expected = {
            bits_to_int(x) for x in enumerate_feasible_bruteforce(matrix, bound)
        }
        assert reached == expected


class TestCandidateCombinations:
    def test_all_signed_unit(self, paper_basis):
        for vector in candidate_combinations(paper_basis, 3):
            assert set(np.unique(vector)).issubset({-1, 0, 1})

    def test_all_in_nullspace(self, paper_constraints, paper_basis):
        matrix, _, _ = paper_constraints
        for vector in candidate_combinations(paper_basis, 3):
            assert not (matrix @ vector).any()

    def test_dedup_up_to_sign(self, paper_basis):
        vectors = [tuple(v) for v in candidate_combinations(paper_basis, 3)]
        for vec in vectors:
            assert tuple(-x for x in vec) not in vectors or vec == tuple(
                -x for x in vec
            )

    def test_empty_basis(self):
        assert candidate_combinations(np.zeros((0, 4), dtype=int)) == []


class TestAugmentation:
    def test_no_op_when_connected(self, paper_constraints):
        matrix, _, particular = paper_constraints
        basis = integer_nullspace(matrix, require_signed_unit=True)
        moves = augment_moves_for_connectivity(basis, particular)
        # Paper example is fully connected by single moves already.
        assert moves.shape == basis.shape

    def test_repairs_simplified_graph_coloring_basis(self):
        # Algorithm 1 sparsifies the G1 basis so aggressively that no
        # single vector connects the two proper colorings any more;
        # augmentation must restore connectivity.
        from repro.core.simplify import simplify_basis

        problem = make_benchmark("G1", 0)
        basis = simplify_basis(problem.homogeneous_basis, iterate=True)
        initial = problem.initial_feasible_solution()

        stalled = {bits_to_int(initial)}
        expand_closure(list(basis), stalled, problem.num_variables)
        assert len(stalled) < problem.num_feasible_solutions

        moves = augment_moves_for_connectivity(basis, initial)
        assert moves.shape[0] > basis.shape[0]
        reached = {bits_to_int(initial)}
        expand_closure(list(moves), reached, problem.num_variables)
        assert len(reached) == problem.num_feasible_solutions

    def test_added_moves_stay_in_nullspace(self):
        from repro.core.simplify import simplify_basis

        problem = make_benchmark("G1", 0)
        basis = simplify_basis(problem.homogeneous_basis, iterate=True)
        initial = problem.initial_feasible_solution()
        moves = augment_moves_for_connectivity(basis, initial)
        residual = problem.constraint_matrix @ moves.T
        assert not residual.any()

    def test_original_basis_preserved_as_prefix(self):
        problem = make_benchmark("G3", 0)
        basis = problem.homogeneous_basis
        initial = problem.initial_feasible_solution()
        moves = augment_moves_for_connectivity(basis, initial)
        assert np.array_equal(moves[: basis.shape[0]], basis)

    def test_full_coverage_on_all_benchmarks(self):
        from repro.problems import BENCHMARK_IDS

        for benchmark_id in BENCHMARK_IDS:
            problem = make_benchmark(benchmark_id, 0)
            initial = problem.initial_feasible_solution()
            moves = augment_moves_for_connectivity(
                problem.homogeneous_basis, initial
            )
            reached = {bits_to_int(initial)}
            expand_closure(list(moves), reached, problem.num_variables)
            assert len(reached) == problem.num_feasible_solutions, benchmark_id
