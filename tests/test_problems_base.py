"""ConstrainedBinaryProblem base behaviour."""

import numpy as np
import pytest

from repro.exceptions import ProblemError
from repro.linalg.bitvec import bits_to_int
from repro.problems.base import ConstrainedBinaryProblem


class _LinearToy(ConstrainedBinaryProblem):
    """min c.x  s.t.  x_0 + x_1 = 1 over 3 variables."""

    def __init__(self, sense="min"):
        matrix = np.array([[1, 1, 0]])
        bound = np.array([1])
        super().__init__("toy", matrix, bound, sense=sense)
        self.costs = np.array([2.0, 5.0, 1.0])

    def objective(self, x):
        return float(self.costs @ np.asarray(x, dtype=float))


class TestValidation:
    def test_bound_shape_checked(self):
        with pytest.raises(ProblemError):
            _Bad = type(
                "Bad",
                (ConstrainedBinaryProblem,),
                {"objective": lambda self, x: 0.0},
            )
            _Bad("bad", np.eye(2, dtype=int), np.array([1, 2, 3]))

    def test_sense_checked(self):
        with pytest.raises(ProblemError):
            _LinearToy(sense="maximize")

    def test_repr(self):
        assert "toy" in repr(_LinearToy())


class TestScoring:
    def test_value_min(self):
        toy = _LinearToy()
        assert toy.value([1, 0, 0]) == 2.0

    def test_value_max_negates(self):
        toy = _LinearToy(sense="max")
        assert toy.value([1, 0, 0]) == -2.0

    def test_penalty_value(self):
        toy = _LinearToy()
        # x = (1,1,0): violation |2-1| = 1.
        assert toy.penalty_value([1, 1, 0], 10.0) == pytest.approx(7.0 + 10.0)

    def test_feasibility(self):
        toy = _LinearToy()
        assert toy.is_feasible([1, 0, 0])
        assert not toy.is_feasible([1, 1, 0])
        assert toy.constraint_violation([0, 0, 1]) == 1


class TestFeasibleSpace:
    def test_enumeration(self):
        toy = _LinearToy()
        assert toy.num_feasible_solutions == 4  # 2 choices x 2 free values

    def test_optimum(self):
        toy = _LinearToy()
        assert toy.optimal_value == 2.0
        assert toy.value(toy.optimal_solution) == 2.0

    def test_mean_feasible_value(self):
        toy = _LinearToy()
        values = [toy.value(x) for x in toy.feasible_solutions]
        assert toy.mean_feasible_value() == pytest.approx(np.mean(values))

    def test_initial_feasible(self):
        toy = _LinearToy()
        assert toy.is_feasible(toy.initial_feasible_solution())

    def test_homogeneous_basis_in_nullspace(self):
        toy = _LinearToy()
        basis = toy.homogeneous_basis
        assert not (toy.constraint_matrix @ basis.T).any()

    def test_feasible_keys_sorted(self):
        toy = _LinearToy()
        keys = toy.feasible_keys()
        assert list(keys) == sorted(keys)
        assert keys == tuple(bits_to_int(x) for x in toy.feasible_solutions)


class TestDistributionHelpers:
    def test_expectation_raw(self):
        toy = _LinearToy()
        counts = {bits_to_int([1, 0, 0]): 1, bits_to_int([0, 1, 0]): 1}
        assert toy.expectation_from_counts(counts) == pytest.approx(3.5)

    def test_expectation_with_penalty(self):
        toy = _LinearToy()
        counts = {bits_to_int([1, 1, 0]): 1}
        assert toy.expectation_from_counts(counts, penalty=100.0) == pytest.approx(107.0)

    def test_expectation_empty_rejected(self):
        with pytest.raises(ProblemError):
            _LinearToy().expectation_from_counts({})

    def test_in_constraints_rate(self):
        toy = _LinearToy()
        counts = {
            bits_to_int([1, 0, 0]): 3,
            bits_to_int([1, 1, 0]): 1,
        }
        assert toy.in_constraints_rate(counts) == pytest.approx(0.75)

    def test_in_constraints_rate_empty(self):
        assert _LinearToy().in_constraints_rate({}) == 0.0
