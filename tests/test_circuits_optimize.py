"""Peephole optimization: exactness and effectiveness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.optimize import optimize_circuit
from repro.circuits.unitary import circuit_unitary, unitaries_equal


class TestCancellation:
    def test_double_x_cancels(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.x(0)
        assert len(optimize_circuit(qc)) == 0

    def test_double_cx_cancels(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(0, 1)
        assert len(optimize_circuit(qc)) == 0

    def test_reversed_cx_not_cancelled(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        assert len(optimize_circuit(qc)) == 2

    def test_cancellation_through_disjoint_wires(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.x(2)  # disjoint — must not block the H pair
        qc.h(0)
        optimized = optimize_circuit(qc)
        assert [instr.name for instr in optimized] == ["x"]

    def test_blocking_gate_prevents_cancellation(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.t(0)
        qc.h(0)
        assert len(optimize_circuit(qc)) == 3

    def test_cascaded_cancellation(self):
        qc = QuantumCircuit(1)
        qc.x(0); qc.h(0); qc.h(0); qc.x(0)
        assert len(optimize_circuit(qc)) == 0


class TestRotationMerging:
    def test_rz_merge(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0)
        qc.rz(0.4, 0)
        optimized = optimize_circuit(qc)
        assert len(optimized) == 1
        assert optimized[0].params[0] == pytest.approx(0.7)

    def test_opposite_rotations_vanish(self):
        qc = QuantumCircuit(1)
        qc.rx(0.9, 0)
        qc.rx(-0.9, 0)
        assert len(optimize_circuit(qc)) == 0

    def test_identity_rotation_dropped(self):
        qc = QuantumCircuit(1)
        qc.p(2 * np.pi, 0)
        assert len(optimize_circuit(qc)) == 0

    def test_rz_two_pi_kept(self):
        # RZ(2*pi) = -I: a global phase, but significant under controls;
        # only the true identity period 4*pi is dropped.
        qc = QuantumCircuit(1)
        qc.rz(2 * np.pi, 0)
        assert len(optimize_circuit(qc)) == 1
        qc2 = QuantumCircuit(1)
        qc2.rz(4 * np.pi, 0)
        assert len(optimize_circuit(qc2)) == 0

    def test_controlled_rotation_merge_same_pattern(self):
        qc = QuantumCircuit(3)
        qc.mcrx(0.2, [0, 1], 2, ctrl_state=(1, 0))
        qc.mcrx(0.3, [0, 1], 2, ctrl_state=(1, 0))
        optimized = optimize_circuit(qc)
        assert len(optimized) == 1
        assert optimized[0].params[0] == pytest.approx(0.5)

    def test_different_patterns_not_merged(self):
        qc = QuantumCircuit(3)
        qc.mcrx(0.2, [0, 1], 2, ctrl_state=(1, 0))
        qc.mcrx(0.3, [0, 1], 2, ctrl_state=(0, 1))
        assert len(optimize_circuit(qc)) == 2


class TestExactness:
    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_random_circuits_preserve_unitary(self, seed):
        rng = np.random.default_rng(seed)
        qc = QuantumCircuit(3)
        for _ in range(25):
            kind = rng.integers(0, 6)
            q = int(rng.integers(0, 3))
            if kind == 0:
                qc.x(q)
            elif kind == 1:
                qc.h(q)
            elif kind == 2:
                qc.rz(float(rng.uniform(-3, 3)), q)
            elif kind == 3:
                a, b = rng.choice(3, size=2, replace=False)
                qc.cx(int(a), int(b))
            elif kind == 4:
                qc.rx(float(rng.uniform(-3, 3)), q)
            else:
                qc.t(q)
        optimized = optimize_circuit(qc)
        assert len(optimized) <= len(qc)
        assert unitaries_equal(
            circuit_unitary(optimized), circuit_unitary(qc), atol=1e-9
        )

    def test_shrinks_transition_roundtrip(self):
        # tau(u, t) followed by tau(u, -t): the optimizer should strip the
        # CX ladders and merged MCRX entirely.
        from repro.core.transition import transition_circuit

        u = np.array([1, -1, 0, 1])
        qc = transition_circuit(u, 0.7, 4)
        qc.compose(transition_circuit(u, -0.7, 4))
        optimized = optimize_circuit(qc)
        assert len(optimized) == 0

    def test_measure_untouched(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.measure(0)
        qc.h(0)
        optimized = optimize_circuit(qc)
        # Measurement is a barrier for the optimizer: H...H stays.
        assert [instr.name for instr in optimized] == ["h", "measure", "h"]
