"""HEA, P-QAOA and Choco-Q baselines."""

import numpy as np
import pytest

from repro.baselines import ChocoQ, HardwareEfficientAnsatz, PenaltyQAOA
from repro.linalg.bitvec import int_to_bits
from repro.problems import make_benchmark
from repro.simulators.statevector import simulate_statevector


@pytest.fixture(scope="module")
def f1():
    return make_benchmark("F1", 0)


class TestHEA:
    def test_parameter_count(self, f1):
        hea = HardwareEfficientAnsatz(f1, layers=5, shots=None)
        assert hea.num_parameters == 2 * f1.num_variables * 6

    def test_simulate_matches_circuit(self, f1):
        hea = HardwareEfficientAnsatz(f1, layers=2, shots=None, seed=0)
        params = hea.initial_parameters()
        fast = hea.simulate(params)
        circuit = hea.build_circuit(params)
        gate = simulate_statevector(circuit)
        np.testing.assert_allclose(fast, gate, atol=1e-9)

    def test_zero_parameters_give_all_zero_state(self, f1):
        hea = HardwareEfficientAnsatz(f1, layers=1, shots=None)
        state = hea.simulate(np.zeros(hea.num_parameters))
        assert abs(state[0]) == pytest.approx(1.0)

    def test_solve_returns_result(self, f1):
        hea = HardwareEfficientAnsatz(f1, layers=2, shots=None, max_iterations=40, seed=1)
        result = hea.solve()
        assert result.algorithm == "hea"
        assert result.arg >= 0
        assert 0 <= result.in_constraints_rate <= 1


class TestPenaltyQAOA:
    def test_parameter_count_is_2p(self, f1):
        qaoa = PenaltyQAOA(f1, layers=5, shots=None)
        assert qaoa.num_parameters == 10

    def test_simulate_matches_circuit(self, f1):
        qaoa = PenaltyQAOA(f1, layers=2, shots=None, parameter_init="zero")
        params = np.array([0.03, 0.4, 0.05, 0.2])
        fast = qaoa.simulate(params)
        gate = simulate_statevector(qaoa.build_circuit(params))
        # Equal up to global phase (constant QUBO term dropped in circuit).
        overlap = abs(np.vdot(fast, gate))
        assert overlap == pytest.approx(1.0, abs=1e-8)

    def test_zero_params_give_uniform_distribution(self, f1):
        qaoa = PenaltyQAOA(f1, layers=1, shots=None, parameter_init="zero")
        state = qaoa.simulate(np.zeros(2))
        probabilities = np.abs(state) ** 2
        np.testing.assert_allclose(
            probabilities, np.full_like(probabilities, probabilities[0]), atol=1e-10
        )

    def test_frozen_qubits_pin_hotspots(self, f1):
        qaoa = PenaltyQAOA(f1, layers=1, frozen_qubits=2, shots=None,
                           parameter_init="zero")
        assert len(qaoa.frozen) == 2
        state = qaoa.simulate(np.zeros(2))
        probabilities = np.abs(state) ** 2
        for key in np.flatnonzero(probabilities > 1e-12):
            bits = int_to_bits(int(key), f1.num_variables)
            for qubit, value in qaoa.frozen.items():
                assert bits[qubit] == value

    def test_redqaoa_init_beats_zero_init_loss_single_layer(self, f1):
        # The grid search optimises the single-layer landscape directly,
        # so at p=1 the seeded start must not lose to the uniform start.
        seeded = PenaltyQAOA(f1, layers=1, shots=None, parameter_init="redqaoa")
        zero = PenaltyQAOA(f1, layers=1, shots=None, parameter_init="zero")
        loss_seeded = seeded.penalty_expectation(
            seeded.distribution(seeded.initial_parameters())
        )
        loss_zero = zero.penalty_expectation(
            zero.distribution(zero.initial_parameters())
        )
        assert loss_seeded <= loss_zero + 1e-9


class TestChocoQ:
    def test_parameter_count_is_2p(self, f1):
        assert ChocoQ(f1, layers=5, shots=None).num_parameters == 10

    def test_state_stays_in_feasible_subspace(self, f1):
        chocoq = ChocoQ(f1, layers=3, shots=None)
        state = chocoq.simulate(np.array([0.3, 0.7, 0.1, 0.5, 0.2, 0.9]))
        feasible = set(f1.feasible_keys())
        for key in np.flatnonzero(np.abs(state) > 1e-10):
            assert int(key) in feasible

    def test_subspace_evolution_is_unitary(self, f1):
        chocoq = ChocoQ(f1, layers=2, shots=None)
        state = chocoq.simulate(np.array([0.4, 0.6, 0.2, 0.8]))
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_mixer_matches_trotterized_circuit_weakly(self, f1):
        # First-order Trotter at small angle approximates the exact mixer.
        chocoq = ChocoQ(f1, layers=1, shots=None, trotter_steps=8)
        params = np.array([0.0, 0.15])
        exact = chocoq.simulate(params)
        gate = simulate_statevector(chocoq.build_circuit(params))
        overlap = abs(np.vdot(exact, gate))
        assert overlap > 0.97

    def test_solve_hits_full_constraint_rate(self, f1):
        chocoq = ChocoQ(f1, layers=3, shots=None, max_iterations=60)
        result = chocoq.solve()
        assert result.in_constraints_rate == pytest.approx(1.0)
        assert result.arg < 2.0


class TestCrossAlgorithmOrdering:
    def test_paper_table1_shape(self, f1):
        # Rasengan < Choco-Q << penalty methods on ARG (noise-free).
        from repro.core.solver import RasenganConfig, RasenganSolver

        rasengan = RasenganSolver(
            f1, config=RasenganConfig(shots=None, max_iterations=200, seed=0)
        ).solve()
        chocoq = ChocoQ(f1, layers=5, shots=None, max_iterations=150).solve()
        pqaoa = PenaltyQAOA(f1, layers=5, shots=None, max_iterations=150, seed=0).solve()
        assert rasengan.arg <= chocoq.arg + 0.05
        assert chocoq.arg < pqaoa.arg


class TestChocoQTrotter:
    def test_second_order_beats_first_order(self, f1):
        params = np.array([0.0, 0.35])
        first = ChocoQ(f1, layers=1, shots=None, trotter_steps=2, trotter_order=1)
        second = ChocoQ(f1, layers=1, shots=None, trotter_steps=2, trotter_order=2)
        exact = first.simulate(params)
        overlap_1 = abs(np.vdot(exact, simulate_statevector(first.build_circuit(params))))
        overlap_2 = abs(np.vdot(exact, simulate_statevector(second.build_circuit(params))))
        assert overlap_2 >= overlap_1 - 1e-9

    def test_invalid_order_rejected(self, f1):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            ChocoQ(f1, trotter_order=3)

    def test_more_steps_converge_to_exact(self, f1):
        params = np.array([0.0, 0.4])
        exact = ChocoQ(f1, layers=1, shots=None).simulate(params)
        overlaps = []
        for steps in (1, 4, 16):
            algo = ChocoQ(f1, layers=1, shots=None, trotter_steps=steps)
            gate = simulate_statevector(algo.build_circuit(params))
            overlaps.append(abs(np.vdot(exact, gate)))
        assert overlaps == sorted(overlaps)
        assert overlaps[-1] > 0.999
