"""Latency model accounting."""

import pytest

from repro.circuits.latency import DeviceTimings, LatencyModel
from repro.metrics.latency import algorithm_latency, latency_breakdown_table


class TestLatencyModel:
    def test_circuit_duration(self):
        model = LatencyModel(timings=DeviceTimings(
            single_qubit_gate=1.0, two_qubit_gate=10.0))
        assert model.circuit_duration(3, 2) == pytest.approx(23.0)

    def test_quantum_scales_with_shots(self):
        model = LatencyModel()
        small = model.training_latency(
            iterations=10, shots=100, depth_1q=10, depth_2q=10, num_parameters=5
        )
        large = model.training_latency(
            iterations=10, shots=1000, depth_1q=10, depth_2q=10, num_parameters=5
        )
        assert large.quantum > small.quantum

    def test_segments_multiply_quantum_time(self):
        model = LatencyModel()
        one = model.training_latency(
            iterations=10, shots=100, depth_1q=10, depth_2q=10,
            num_parameters=5, segments=1,
        )
        four = model.training_latency(
            iterations=10, shots=100, depth_1q=10, depth_2q=10,
            num_parameters=5, segments=4,
        )
        assert four.quantum == pytest.approx(4 * one.quantum)

    def test_purification_accounted_separately(self):
        model = LatencyModel()
        report = model.training_latency(
            iterations=10, shots=100, depth_1q=10, depth_2q=10,
            num_parameters=5, purify=True, distinct_states=8,
        )
        assert report.purification > 0
        assert report.total == pytest.approx(
            report.quantum + report.classical + report.purification
        )

    def test_purification_is_tiny_fraction(self):
        # Paper: purification < 0.01% of training time.
        model = LatencyModel()
        report = model.training_latency(
            iterations=100, shots=1024, depth_1q=50, depth_2q=50,
            num_parameters=10, segments=3, purify=True, distinct_states=24,
        )
        assert report.purification / report.total < 1e-3

    def test_as_dict(self):
        model = LatencyModel()
        report = model.training_latency(
            iterations=1, shots=1, depth_1q=1, depth_2q=1, num_parameters=1
        )
        assert set(report.as_dict()) == {"quantum", "classical", "purification", "total"}


class TestAlgorithmLatency:
    def _report(self, algorithm, **kwargs):
        defaults = dict(
            iterations=100, shots=1024, depth_1q=60, depth_2q=50, num_parameters=10
        )
        defaults.update(kwargs)
        return algorithm_latency(algorithm, **defaults)

    def test_penalty_methods_have_higher_classical_cost(self):
        hea = self._report("hea")
        chocoq = self._report("chocoq")
        assert hea.classical > chocoq.classical

    def test_rasengan_includes_purification(self):
        rasengan = self._report("rasengan", segments=3)
        assert rasengan.purification > 0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            self._report("annealing")

    def test_breakdown_table_renders(self):
        reports = {"hea": self._report("hea"), "rasengan": self._report("rasengan")}
        text = latency_breakdown_table(reports)
        assert "hea" in text and "rasengan" in text

    def test_rasengan_beats_chocoq_at_paper_depths(self):
        # Table 1 shape: segmented shallow circuits beat one deep circuit.
        chocoq = self._report("chocoq", depth_2q=1400, depth_1q=300)
        rasengan = self._report("rasengan", depth_2q=50, depth_1q=60, segments=3)
        assert rasengan.total < chocoq.total
