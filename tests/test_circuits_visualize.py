"""Text circuit drawing."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.visualize import draw


class TestDraw:
    def test_bell(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        text = draw(qc)
        assert text.splitlines()[0].startswith("q0:")
        assert "[H]" in text
        assert "●" in text
        assert "X" in text

    def test_rows_aligned(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.mcrx(0.5, [0], 2, ctrl_state=(0,))
        qc.measure_all()
        lines = draw(qc).splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_zero_control_marker(self):
        qc = QuantumCircuit(2)
        qc.mcx([0], 1, ctrl_state=(0,))
        assert "○" in draw(qc)

    def test_parameterised_label(self):
        qc = QuantumCircuit(1)
        qc.rz(0.25, 0)
        assert "RZ(0.25)" in draw(qc)

    def test_empty_circuit(self):
        text = draw(QuantumCircuit(2))
        assert text.splitlines() == ["q0: ", "q1: "]

    def test_wrapping(self):
        qc = QuantumCircuit(1)
        for _ in range(100):
            qc.x(0)
        text = draw(qc, max_width=40)
        assert "..." in text

    def test_measure_label(self):
        qc = QuantumCircuit(1)
        qc.measure(0)
        assert "[M]" in draw(qc)

    def test_layering_matches_depth(self):
        from repro.circuits.depth import circuit_depth

        qc = QuantumCircuit(2)
        qc.x(0)
        qc.x(1)
        qc.cx(0, 1)
        text = draw(qc)
        # Two layers: parallel X's then the CX.
        assert circuit_depth(qc) == 2
        assert text.count("X") >= 3
