"""Gate definitions and matrices."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import (
    Instruction,
    gate_category,
    gate_matrix,
    single_qubit_matrix,
)
from repro.exceptions import CircuitError

ANGLES = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False)


def _assert_unitary(matrix):
    dim = matrix.shape[0]
    np.testing.assert_allclose(
        matrix @ matrix.conj().T, np.eye(dim), atol=1e-10
    )


class TestSingleQubitMatrices:
    @pytest.mark.parametrize(
        "name", ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"]
    )
    def test_fixed_gates_unitary(self, name):
        _assert_unitary(single_qubit_matrix(name))

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p"])
    def test_rotations_unitary(self, name):
        _assert_unitary(single_qubit_matrix(name, (0.7,)))

    def test_u_gate_unitary(self):
        _assert_unitary(single_qubit_matrix("u", (0.3, 1.1, -0.4)))

    def test_sx_squares_to_x(self):
        sx = single_qubit_matrix("sx")
        np.testing.assert_allclose(sx @ sx, single_qubit_matrix("x"), atol=1e-12)

    def test_h_involution(self):
        h = single_qubit_matrix("h")
        np.testing.assert_allclose(h @ h, np.eye(2), atol=1e-12)

    def test_s_is_sqrt_z(self):
        s = single_qubit_matrix("s")
        np.testing.assert_allclose(s @ s, single_qubit_matrix("z"), atol=1e-12)

    def test_rx_pi_is_minus_i_x(self):
        rx = single_qubit_matrix("rx", (math.pi,))
        np.testing.assert_allclose(rx, -1j * single_qubit_matrix("x"), atol=1e-12)

    @given(theta=ANGLES, phi=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_rz_angles_add(self, theta, phi):
        a = single_qubit_matrix("rz", (theta,))
        b = single_qubit_matrix("rz", (phi,))
        np.testing.assert_allclose(
            a @ b, single_qubit_matrix("rz", (theta + phi,)), atol=1e-9
        )

    def test_unknown_raises(self):
        with pytest.raises(CircuitError):
            single_qubit_matrix("bogus")


class TestInstruction:
    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Instruction("cx", (1, 1))

    def test_ctrl_state_length_checked(self):
        with pytest.raises(CircuitError):
            Instruction("mcx", (0, 1, 2), ctrl_state=(1,))

    def test_num_controls(self):
        assert Instruction("cx", (0, 1)).num_controls == 1
        assert Instruction("ccx", (0, 1, 2)).num_controls == 2
        assert Instruction("mcp", (0, 1, 2, 3), (0.5,)).num_controls == 3
        assert Instruction("h", (0,)).num_controls == 0

    def test_default_control_pattern(self):
        instr = Instruction("mcx", (0, 1, 2))
        assert instr.control_pattern == (1, 1)

    def test_base_name(self):
        assert Instruction("mcrx", (0, 1), (0.1,)).base_name == "rx"
        assert Instruction("cz", (0, 1)).base_name == "z"

    def test_is_unitary(self):
        assert Instruction("x", (0,)).is_unitary
        assert not Instruction("measure", (0,)).is_unitary


class TestGateMatrix:
    def test_cx_matrix(self):
        # Little-endian: control = qubit order index 0.
        cx = gate_matrix(Instruction("cx", (0, 1)))
        expected = np.zeros((4, 4))
        # |00> -> |00>, |01>(q0=1) -> |11>, |10> -> |10>, |11> -> |01>.
        expected[0, 0] = expected[2, 2] = 1
        expected[3, 1] = expected[1, 3] = 1
        np.testing.assert_allclose(cx, expected, atol=1e-12)

    def test_controlled_pattern_zero(self):
        cx0 = gate_matrix(Instruction("mcx", (0, 1), ctrl_state=(0,)))
        # Control fires when qubit0 = 0.
        expected = np.zeros((4, 4))
        expected[2, 0] = expected[0, 2] = 1  # |00> <-> |10>
        expected[1, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(cx0, expected, atol=1e-12)

    def test_mcp_diagonal(self):
        matrix = gate_matrix(Instruction("mcp", (0, 1, 2), (0.9,)))
        diag = np.diag(matrix)
        expected = np.ones(8, dtype=complex)
        expected[7] = np.exp(1j * 0.9)
        np.testing.assert_allclose(diag, expected, atol=1e-12)
        np.testing.assert_allclose(matrix, np.diag(diag), atol=1e-12)

    def test_swap(self):
        swap = gate_matrix(Instruction("swap", (0, 1)))
        _assert_unitary(swap)
        state = np.zeros(4)
        state[1] = 1  # |q0=1, q1=0>
        np.testing.assert_allclose(swap @ state, [0, 0, 1, 0], atol=1e-12)

    def test_measure_has_no_matrix(self):
        with pytest.raises(CircuitError):
            gate_matrix(Instruction("measure", (0,)))


class TestGateCategory:
    def test_categories(self):
        assert gate_category(Instruction("x", (0,))) == "1q"
        assert gate_category(Instruction("cx", (0, 1))) == "2q"
        assert gate_category(Instruction("mcx", (0, 1, 2))) == "multi"
        assert gate_category(Instruction("measure", (0,))) == "measure"
        assert gate_category(Instruction("barrier", ())) == "barrier"
