"""Purification-based error mitigation (Section 4.3)."""

import numpy as np
import pytest

from repro.core.purification import purify_counts, purify_probabilities
from repro.exceptions import NoFeasibleStateError
from repro.linalg.bitvec import bits_to_int


@pytest.fixture
def system(paper_constraints):
    matrix, bound, _ = paper_constraints
    return matrix, bound


class TestPurifyCounts:
    def test_removes_infeasible(self, system):
        matrix, bound = system
        feasible_key = bits_to_int([0, 0, 0, 1, 0])
        infeasible_key = bits_to_int([1, 1, 1, 1, 1])
        counts = {feasible_key: 60, infeasible_key: 40}
        purified, rate = purify_counts(counts, matrix, bound)
        assert purified == {feasible_key: 60}
        assert rate == pytest.approx(0.6)

    def test_figure8_rate(self, system):
        # Figure 8: 20 of 100 shots removed -> rate 0.8 and the surviving
        # state's share of the next segment is 60/80.
        matrix, bound = system
        good = bits_to_int([0, 0, 0, 1, 0])
        good2 = bits_to_int([1, 0, 1, 0, 0])
        bad = bits_to_int([1, 1, 1, 1, 1])
        counts = {good: 60, good2: 20, bad: 20}
        purified, rate = purify_counts(counts, matrix, bound)
        assert rate == pytest.approx(0.8)
        share = purified[good] / sum(purified.values())
        assert share == pytest.approx(60 / 80)

    def test_all_feasible_untouched(self, system):
        matrix, bound = system
        key = bits_to_int([0, 0, 0, 1, 0])
        purified, rate = purify_counts({key: 10}, matrix, bound)
        assert purified == {key: 10}
        assert rate == 1.0

    def test_all_infeasible_raises(self, system):
        matrix, bound = system
        with pytest.raises(NoFeasibleStateError):
            purify_counts({bits_to_int([1, 1, 1, 1, 1]): 5}, matrix, bound)

    def test_empty_counts_raise(self, system):
        matrix, bound = system
        with pytest.raises(NoFeasibleStateError):
            purify_counts({}, matrix, bound)


class TestPurifyProbabilities:
    def test_renormalises(self, system):
        matrix, bound = system
        good = bits_to_int([0, 0, 0, 1, 0])
        bad = bits_to_int([1, 1, 1, 1, 1])
        purified, mass = purify_probabilities({good: 0.5, bad: 0.5}, matrix, bound)
        assert purified[good] == pytest.approx(1.0)
        assert mass == pytest.approx(0.5)

    def test_zero_mass_raises(self, system):
        matrix, bound = system
        with pytest.raises(NoFeasibleStateError):
            purify_probabilities({bits_to_int([1, 1, 0, 0, 0]): 1.0}, matrix, bound)

    def test_preserves_relative_weights(self, system):
        matrix, bound = system
        a = bits_to_int([0, 0, 0, 1, 0])
        b = bits_to_int([1, 0, 1, 0, 0])
        bad = bits_to_int([1, 1, 1, 1, 1])
        purified, _ = purify_probabilities(
            {a: 0.3, b: 0.1, bad: 0.6}, matrix, bound
        )
        assert purified[a] / purified[b] == pytest.approx(3.0)

    def test_empty_distribution_raises(self, system):
        matrix, bound = system
        with pytest.raises(NoFeasibleStateError):
            purify_probabilities({}, matrix, bound)

    def test_all_infeasible_raises(self, system):
        matrix, bound = system
        distribution = {
            bits_to_int([1, 1, 1, 1, 1]): 0.7,
            bits_to_int([1, 1, 0, 0, 0]): 0.3,
        }
        with pytest.raises(NoFeasibleStateError):
            purify_probabilities(distribution, matrix, bound)

    def test_underflow_mass_renormalises(self, system):
        # Deep noisy chains can shrink every feasible amplitude to the
        # denormal range; the fsum-based renormalisation must still return
        # a unit-mass distribution instead of dividing by 0 or drifting.
        matrix, bound = system
        a = bits_to_int([0, 0, 0, 1, 0])
        b = bits_to_int([1, 0, 1, 0, 0])
        bad = bits_to_int([1, 1, 1, 1, 1])
        distribution = {a: 3e-300, b: 1e-300, bad: 1.0}
        purified, mass = purify_probabilities(distribution, matrix, bound)
        assert mass > 0
        assert sum(purified.values()) == pytest.approx(1.0)
        assert purified[a] / purified[b] == pytest.approx(3.0)

    def test_many_tiny_contributions_sum_stably(self, system):
        matrix, bound = system
        a = bits_to_int([0, 0, 0, 1, 0])
        b = bits_to_int([1, 0, 1, 0, 0])
        # One dominant state plus a tiny one: naive accumulation order can
        # lose the tiny term entirely; fsum keeps the ratio exact.
        distribution = {a: 1.0, b: 1e-17}
        purified, mass = purify_probabilities(distribution, matrix, bound)
        assert mass == pytest.approx(1.0)
        assert b in purified
        assert sum(purified.values()) == pytest.approx(1.0)
