"""Coverage timelines and pruning speedup (Figure 17)."""

import numpy as np
import pytest

from repro.core.expansion import coverage_timeline, expansion_speedup
from repro.core.prune import prune_schedule
from repro.problems import make_benchmark


class TestCoverageTimeline:
    def test_paper_example(self, paper_basis, paper_constraints):
        _, _, particular = paper_constraints
        timeline = coverage_timeline(paper_basis, particular)
        assert timeline.chain_length == 9
        assert timeline.final_coverage == 5
        assert timeline.covered == tuple(sorted(timeline.covered))

    def test_full_coverage_position(self, paper_basis, paper_constraints):
        _, _, particular = paper_constraints
        timeline = coverage_timeline(paper_basis, particular)
        position = timeline.full_coverage_position
        assert timeline.covered[position] == 5
        if position > 0:
            assert timeline.covered[position - 1] < 5

    def test_explicit_schedule(self, paper_basis, paper_constraints):
        _, _, particular = paper_constraints
        timeline = coverage_timeline(paper_basis, particular, [1, 2])
        assert timeline.chain_length == 2

    def test_fraction_in_unit_interval(self, paper_basis, paper_constraints):
        _, _, particular = paper_constraints
        timeline = coverage_timeline(paper_basis, particular)
        assert 0 < timeline.full_coverage_fraction <= 1


class TestExpansionSpeedup:
    def test_pruning_speeds_up_paper_example(self, paper_basis, paper_constraints):
        _, _, particular = paper_constraints
        pruned = prune_schedule(paper_basis, particular)
        speedup = expansion_speedup(paper_basis, particular, pruned.schedule)
        assert speedup >= 1.0

    @pytest.mark.parametrize("benchmark_id", ["F2", "K2", "S1", "G3"])
    def test_pruned_chain_reaches_same_coverage(self, benchmark_id):
        problem = make_benchmark(benchmark_id, 0)
        basis = problem.homogeneous_basis
        initial = problem.initial_feasible_solution()
        pruned = prune_schedule(basis, initial)
        full = coverage_timeline(basis, initial)
        short = coverage_timeline(basis, initial, pruned.schedule)
        assert short.final_coverage == full.final_coverage
        assert expansion_speedup(basis, initial, pruned.schedule) >= 1.0
