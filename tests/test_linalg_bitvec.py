"""Bit-vector encoding conventions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg.bitvec import (
    all_bitvectors,
    bits_to_int,
    hamming_weight,
    int_to_bits,
    is_binary_vector,
    is_signed_unit_vector,
)


class TestBitsToInt:
    def test_zero(self):
        assert bits_to_int([0, 0, 0]) == 0

    def test_little_endian(self):
        assert bits_to_int([1, 0, 1]) == 5

    def test_all_ones(self):
        assert bits_to_int([1] * 8) == 255

    def test_empty(self):
        assert bits_to_int([]) == 0

    def test_numpy_input(self):
        assert bits_to_int(np.array([0, 1, 1], dtype=np.int8)) == 6


class TestIntToBits:
    def test_roundtrip_examples(self):
        for value in (0, 1, 5, 13, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_dtype(self):
        assert int_to_bits(3, 4).dtype == np.int8

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, 16)) == value


class TestAllBitvectors:
    def test_shape(self):
        assert all_bitvectors(4).shape == (16, 4)

    def test_rows_match_encoding(self):
        table = all_bitvectors(5)
        for key in (0, 7, 19, 31):
            assert np.array_equal(table[key], int_to_bits(key, 5))

    def test_zero_width(self):
        assert all_bitvectors(0).shape == (1, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            all_bitvectors(-1)


class TestPredicates:
    def test_hamming_weight(self):
        assert hamming_weight([1, 0, 1, 1]) == 3

    def test_hamming_weight_empty(self):
        assert hamming_weight([]) == 0

    def test_is_binary(self):
        assert is_binary_vector([0, 1, 1])
        assert not is_binary_vector([0, 2, 1])
        assert not is_binary_vector([-1, 0, 1])

    def test_is_signed_unit(self):
        assert is_signed_unit_vector([-1, 0, 1])
        assert not is_signed_unit_vector([-2, 0, 1])
        assert is_signed_unit_vector([])
