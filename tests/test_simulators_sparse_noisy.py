"""Sparse trajectory backend: agreement with dense paths and scale."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.core.transition import transition_circuit
from repro.exceptions import SimulationError
from repro.simulators.backends import IdealBackend, NoisyTrajectoryBackend
from repro.simulators.density import DensityMatrixSimulator
from repro.simulators.noise import NoiseModel, amplitude_damping, depolarizing
from repro.simulators.sparse_noisy import SparseTrajectoryBackend


class TestGeneralSparseGates:
    def test_h_on_sparse_state(self):
        from repro.simulators.sparsestate import SparseState
        from repro.simulators.statevector import simulate_statevector

        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        sparse = SparseState(2)
        sparse.run(qc)
        dense = simulate_statevector(qc)
        np.testing.assert_allclose(sparse.to_dense(), dense, atol=1e-10)

    def test_decomposed_transition_round_trip(self):
        # H gates inside the decomposition densify transiently; the final
        # state must still match the exact transition.
        from repro.circuits.decompose import decompose_circuit
        from repro.simulators.sparsestate import SparseState

        u = np.array([1, 0, -1, 1])
        flat = decompose_circuit(transition_circuit(u, 0.8, 4))
        sparse = SparseState.from_bits([0, 0, 1, 0])
        sparse.run(flat)
        exact = SparseState.from_bits([0, 0, 1, 0])
        exact.apply_transition(u, 0.8)
        np.testing.assert_allclose(
            sparse.to_dense(), exact.to_dense(), atol=1e-9
        )


class TestAgreementWithDense:
    def test_noiseless_matches_ideal(self):
        qc = QuantumCircuit(3)
        qc.x(0)
        qc.compose(transition_circuit(np.array([-1, 1, 0]), 0.6, 3))
        qc.measure_all()
        sparse = SparseTrajectoryBackend(NoiseModel(), seed=0)
        ideal = IdealBackend(seed=0)
        counts_sparse = sparse.run(qc, 50_000)
        counts_ideal = ideal.run(qc, 50_000)
        for key in set(counts_sparse) | set(counts_ideal):
            assert abs(
                counts_sparse.get(key, 0) - counts_ideal.get(key, 0)
            ) < 1500

    def test_depolarizing_matches_density_matrix(self):
        model = NoiseModel(
            single_qubit=[depolarizing(0.05)], two_qubit=[depolarizing(0.08)]
        )
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.cx(0, 1)
        exact = DensityMatrixSimulator(model).probabilities(qc)
        backend = SparseTrajectoryBackend(model, seed=5, max_trajectories=4000)
        counts = backend.run(qc, 4000)
        empirical = np.zeros(4)
        for key, count in counts.items():
            empirical[key] = count / 4000
        np.testing.assert_allclose(empirical, exact, atol=0.03)

    def test_amplitude_damping_matches_density_matrix(self):
        model = NoiseModel(single_qubit=[amplitude_damping(0.3)])
        qc = QuantumCircuit(1)
        qc.x(0)
        exact = DensityMatrixSimulator(model).probabilities(qc)
        backend = SparseTrajectoryBackend(model, seed=2, max_trajectories=3000)
        counts = backend.run(qc, 3000)
        assert counts.get(0, 0) / 3000 == pytest.approx(exact[0], abs=0.03)

    def test_matches_dense_trajectory_backend_statistics(self):
        model = NoiseModel.from_error_rates(
            single_qubit_error=0.002, two_qubit_error=0.02
        )
        qc = QuantumCircuit(3)
        qc.prepare_bitstring([1, 0, 0])
        qc.compose(transition_circuit(np.array([-1, 1, 0]), 0.7, 3))
        sparse = SparseTrajectoryBackend(model, seed=9, max_trajectories=600)
        dense = NoisyTrajectoryBackend(model, seed=9, max_trajectories=600)
        counts_sparse = sparse.run(qc, 6000)
        counts_dense = dense.run(qc, 6000)
        for key in set(counts_sparse) | set(counts_dense):
            assert abs(
                counts_sparse.get(key, 0) - counts_dense.get(key, 0)
            ) < 500


class TestScale:
    def test_runs_beyond_dense_reach(self):
        """A 30-qubit noisy transition execution — impossible densely."""
        n = 30
        u = np.zeros(n, dtype=np.int64)
        u[0], u[1] = -1, 1
        qc = QuantumCircuit(n)
        bits = [0] * n
        bits[0] = 1
        qc.prepare_bitstring(bits)
        qc.compose(transition_circuit(u, 0.5, n))
        model = NoiseModel.from_error_rates(
            single_qubit_error=0.001, two_qubit_error=0.01
        )
        backend = SparseTrajectoryBackend(model, seed=0, max_trajectories=8)
        counts = backend.run(qc, 256)
        assert sum(counts.values()) == 256

    def test_support_limit_guard(self):
        qc = QuantumCircuit(8)
        for qubit in range(8):
            qc.h(qubit)
        backend = SparseTrajectoryBackend(
            NoiseModel(), seed=0, support_limit=10
        )
        with pytest.raises(SimulationError):
            backend.run(qc, 4)

    def test_zero_shots(self):
        backend = SparseTrajectoryBackend(NoiseModel(), seed=0)
        assert backend.run(QuantumCircuit(2), 0) == {}


class TestSolverIntegration:
    def test_rasengan_on_sparse_noisy_backend(self):
        from repro.core.solver import RasenganConfig, RasenganSolver
        from repro.problems import make_benchmark

        problem = make_benchmark("F1", 0)
        model = NoiseModel.from_error_rates(
            single_qubit_error=0.0005, two_qubit_error=0.005
        )
        backend = SparseTrajectoryBackend(model, seed=1, max_trajectories=16)
        config = RasenganConfig(shots=512, max_iterations=15, seed=1)
        result = RasenganSolver(problem, backend=backend, config=config).solve()
        assert not result.failed
        assert result.in_constraints_rate == 1.0
