"""Extension baselines: Grover adaptive search and annealing."""

import numpy as np
import pytest

from repro.baselines import (
    GroverAdaptiveSearch,
    QuantumAnnealer,
    SimulatedAnnealing,
)
from repro.baselines.optimizer import minimize_spsa
from repro.problems import make_benchmark


@pytest.fixture(scope="module")
def f1():
    return make_benchmark("F1", 0)


class TestGroverAdaptiveSearch:
    def test_finds_optimum_on_small_problem(self, f1):
        result = GroverAdaptiveSearch(f1, seed=0, max_rounds=30).solve()
        assert result.best_value == pytest.approx(f1.optimal_value)
        assert result.arg == pytest.approx(0.0)

    def test_threshold_history_monotone(self, f1):
        result = GroverAdaptiveSearch(f1, seed=1).solve()
        assert result.history == sorted(result.history, reverse=True)

    def test_best_solution_feasible(self, f1):
        result = GroverAdaptiveSearch(f1, seed=2).solve()
        assert f1.is_feasible(result.best_solution)

    def test_oracle_calls_counted(self, f1):
        result = GroverAdaptiveSearch(f1, seed=0).solve()
        assert result.oracle_calls > 0
        assert result.measurements > 0

    def test_wades_through_infeasible_states(self):
        # The paper's criticism: the unstructured search produces many
        # invalid samples on constraint-heavy problems.
        problem = make_benchmark("G1", 0)
        result = GroverAdaptiveSearch(problem, seed=0, max_rounds=10).solve()
        assert result.in_constraints_rate < 1.0


class TestSimulatedAnnealing:
    def test_solves_small_problem(self, f1):
        result = SimulatedAnnealing(f1, seed=0, sweeps=300).solve()
        assert result.best_value == pytest.approx(f1.optimal_value)
        assert result.in_constraints_rate == 1.0

    def test_history_tracks_sweeps(self, f1):
        result = SimulatedAnnealing(f1, seed=0, sweeps=50).solve()
        assert len(result.history) == 51

    def test_deterministic_given_seed(self, f1):
        a = SimulatedAnnealing(f1, seed=5, sweeps=50).solve()
        b = SimulatedAnnealing(f1, seed=5, sweeps=50).solve()
        assert a.best_value == b.best_value

    def test_more_sweeps_no_worse(self, f1):
        short = SimulatedAnnealing(f1, seed=3, sweeps=5).solve()
        long = SimulatedAnnealing(f1, seed=3, sweeps=400).solve()
        assert long.best_value <= short.best_value


class TestQuantumAnnealer:
    def test_final_state_normalised(self, f1):
        state = QuantumAnnealer(f1, steps=40, total_time=8.0).final_state()
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-9)

    def test_slow_anneal_beats_fast_anneal(self, f1):
        fast = QuantumAnnealer(f1, steps=30, total_time=1.0, seed=0).solve()
        slow = QuantumAnnealer(f1, steps=120, total_time=30.0, seed=0).solve()
        assert slow.arg < fast.arg

    def test_constraint_handling_gap_vs_rasengan(self, f1):
        # Related-work shape: annealing on the penalty landscape leaves
        # substantial infeasible mass; Rasengan never does.
        from repro.core.solver import RasenganConfig, RasenganSolver

        annealer = QuantumAnnealer(f1, steps=120, total_time=30.0, seed=0).solve()
        rasengan = RasenganSolver(
            f1, config=RasenganConfig(shots=None, max_iterations=150, seed=0)
        ).solve()
        assert rasengan.in_constraints_rate == 1.0
        assert annealer.in_constraints_rate < 1.0
        assert rasengan.arg <= annealer.arg + 1e-9


class TestSpsaOptimizer:
    def test_minimises_quadratic(self):
        target = np.array([0.5, -1.0, 2.0])

        def loss(x):
            return float(((x - target) ** 2).sum())

        best = minimize_spsa(loss, np.zeros(3), max_iterations=500, seed=0)
        assert loss(best) < loss(np.zeros(3))

    def test_empty_parameters(self):
        best = minimize_spsa(lambda x: 0.0, np.array([]), max_iterations=5)
        assert best.size == 0
