"""Depth and gate-count accounting."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depth import (
    CX_PER_NONZERO,
    CostModel,
    circuit_depth,
    gate_counts,
    transition_cx_cost,
    two_qubit_depth,
    two_qubit_gate_count,
)


class TestCircuitDepth:
    def test_empty(self):
        assert circuit_depth(QuantumCircuit(3)) == 0

    def test_parallel_gates_share_a_layer(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.x(1)
        assert circuit_depth(qc) == 1

    def test_serial_gates_stack(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.x(0)
        assert circuit_depth(qc) == 2

    def test_two_qubit_gate_blocks_both_tracks(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.cx(0, 1)
        qc.x(1)
        assert circuit_depth(qc) == 3

    def test_barrier_synchronises(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.barrier()
        qc.x(1)
        # Without the barrier both X's would share layer 1.
        assert circuit_depth(qc) == 2

    def test_decomposed_depth_larger_for_mc_gate(self):
        qc = QuantumCircuit(4)
        qc.mcrx(0.3, [0, 1, 2], 3)
        assert circuit_depth(qc) == 1
        assert circuit_depth(qc, decompose=True) > 1


class TestTwoQubitDepth:
    def test_single_qubit_gates_free(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(0)
        qc.cx(0, 1)
        assert two_qubit_depth(qc) == 1

    def test_chain(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        assert two_qubit_depth(qc) == 2

    def test_parallel_cx(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1)
        qc.cx(2, 3)
        assert two_qubit_depth(qc) == 1


class TestGateCounts:
    def test_histogram(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        qc.cx(0, 1)
        assert gate_counts(qc) == {"h": 2, "cx": 1}

    def test_two_qubit_count_after_decompose(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        assert two_qubit_gate_count(qc) == 6  # standard Toffoli CX count

    def test_logical_two_qubit_count(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        assert two_qubit_gate_count(qc, decompose=False) == 1


class TestTransitionCost:
    def test_linear_model(self):
        assert transition_cx_cost(3) == 3 * CX_PER_NONZERO

    def test_zero(self):
        assert transition_cx_cost(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            transition_cx_cost(-1)

    def test_exact_model_redirected(self):
        with pytest.raises(ValueError):
            transition_cx_cost(3, CostModel.EXACT)
