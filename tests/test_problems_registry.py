"""Benchmark registry: the 20 Table-2 families."""

import numpy as np
import pytest

from repro.exceptions import ProblemError
from repro.problems import (
    BENCHMARK_IDS,
    benchmark_spec,
    benchmark_suite,
    make_benchmark,
)


class TestRegistry:
    def test_twenty_families(self):
        assert len(BENCHMARK_IDS) == 20

    def test_table2_order(self):
        assert BENCHMARK_IDS[:4] == ("F1", "F2", "F3", "F4")
        assert BENCHMARK_IDS[-4:] == ("G1", "G2", "G3", "G4")

    def test_unknown_id(self):
        with pytest.raises(ProblemError):
            benchmark_spec("Z9")

    def test_domains(self):
        domains = {benchmark_spec(bid).domain for bid in BENCHMARK_IDS}
        assert domains == {"flp", "kpp", "jsp", "scp", "gcp"}

    @pytest.mark.parametrize("benchmark_id", BENCHMARK_IDS)
    def test_every_family_instantiates(self, benchmark_id):
        problem = make_benchmark(benchmark_id, case=0)
        assert problem.num_variables > 0
        assert problem.is_feasible(problem.initial_feasible_solution())

    @pytest.mark.parametrize("benchmark_id", BENCHMARK_IDS)
    def test_signed_unit_basis_exists(self, benchmark_id):
        problem = make_benchmark(benchmark_id, case=0)
        basis = problem.homogeneous_basis
        assert set(np.unique(basis)).issubset({-1, 0, 1})
        assert not (problem.constraint_matrix @ basis.T).any()

    def test_cases_are_randomized_but_reproducible(self):
        a0 = make_benchmark("F2", case=0)
        a0_again = make_benchmark("F2", case=0)
        a1 = make_benchmark("F2", case=1)
        assert a0.optimal_value == a0_again.optimal_value
        # Structure identical, costs differ across cases.
        assert a0.num_variables == a1.num_variables

    def test_scales_grow_within_family(self):
        for family in "FKJSG":
            sizes = [
                make_benchmark(f"{family}{scale}", 0).num_variables
                for scale in (1, 2, 3, 4)
            ]
            assert sizes[0] == min(sizes)
            assert sizes[-1] >= sizes[1]

    def test_suite_builder(self):
        suite = benchmark_suite(cases=2)
        assert set(suite) == set(BENCHMARK_IDS)
        assert all(len(instances) == 2 for instances in suite.values())

    def test_scp_has_largest_feasible_space(self):
        # Paper: SCP's feasible-solution count grows fastest; S4 largest.
        counts = {
            bid: make_benchmark(bid, 0).num_feasible_solutions
            for bid in BENCHMARK_IDS
        }
        assert max(counts, key=counts.get) == "S4"
