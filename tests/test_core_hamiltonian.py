"""Transition Hamiltonian: Definition 1 and Equation 6."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hamiltonian import TransitionHamiltonian
from repro.exceptions import ProblemError
from repro.linalg.bitvec import bits_to_int, int_to_bits

SIGNED_UNIT_VECTORS = st.lists(
    st.sampled_from([-1, 0, 1]), min_size=2, max_size=6
).filter(lambda v: any(v))


class TestConstruction:
    def test_rejects_non_signed_unit(self):
        with pytest.raises(ProblemError):
            TransitionHamiltonian((0, 2, -1))

    def test_from_vector(self):
        h = TransitionHamiltonian.from_vector(np.array([1, 0, -1]))
        assert h.basis_vector == (1, 0, -1)
        assert h.support == (0, 2)
        assert h.num_nonzero == 2
        assert h.num_qubits == 3


class TestPairingAction:
    def test_partner_plus(self):
        h = TransitionHamiltonian((1, -1))
        partner = h.partner_of(np.array([0, 1]))
        assert partner is not None
        np.testing.assert_array_equal(partner, [1, 0])

    def test_partner_none(self):
        h = TransitionHamiltonian((1, -1))
        assert h.partner_of(np.array([0, 0])) is None
        assert h.partner_of(np.array([1, 1])) is None

    @given(vec=SIGNED_UNIT_VECTORS, key_seed=st.integers(min_value=0, max_value=63))
    @settings(max_examples=80, deadline=None)
    def test_partner_involution(self, vec, key_seed):
        h = TransitionHamiltonian(tuple(vec))
        n = len(vec)
        key = key_seed % (1 << n)
        partner = h.partner_key(key, n)
        if partner is not None:
            assert h.partner_key(partner, n) == key
            assert partner != key


class TestMatrixForm:
    def test_matches_definition_on_paper_vector(self):
        # u2 = (-1, 0, -1, 1, 0): |x_p> = |00010> pairs with |10100>.
        h = TransitionHamiltonian((-1, 0, -1, 1, 0))
        matrix = h.to_matrix()
        x_p = bits_to_int([0, 0, 0, 1, 0])
        x_g = bits_to_int([1, 0, 1, 0, 0])
        assert matrix[x_g, x_p] == 1
        assert matrix[x_p, x_g] == 1

    def test_hermitian(self):
        h = TransitionHamiltonian((1, -1, 0, 1))
        matrix = h.to_matrix()
        np.testing.assert_allclose(matrix, matrix.conj().T, atol=1e-12)

    @given(vec=SIGNED_UNIT_VECTORS)
    @settings(max_examples=40, deadline=None)
    def test_matrix_matches_pairing(self, vec):
        h = TransitionHamiltonian(tuple(vec))
        n = len(vec)
        matrix = h.to_matrix()
        for key in range(1 << n):
            partner = h.partner_key(key, n)
            column = matrix[:, key]
            if partner is None:
                assert not column.any()
            else:
                assert column[partner] == 1
                assert np.count_nonzero(column) == 1

    def test_h_squared_is_identity_on_pairs(self):
        # H^2 |x> = |x> whenever H |x> != 0 (the premise of Equation 2).
        h = TransitionHamiltonian((1, -1, 1))
        matrix = h.to_matrix()
        squared = matrix @ matrix
        for key in range(8):
            if matrix[:, key].any():
                expected = np.zeros(8)
                expected[key] = 1
                np.testing.assert_allclose(squared[:, key], expected, atol=1e-12)


class TestEvolution:
    def test_unitary(self):
        h = TransitionHamiltonian((1, 0, -1))
        op = h.evolution_matrix(0.7)
        np.testing.assert_allclose(op @ op.conj().T, np.eye(8), atol=1e-10)

    def test_matches_expm(self):
        from scipy.linalg import expm

        h = TransitionHamiltonian((1, -1, 0, 1))
        time = 0.93
        expected = expm(-1j * time * h.to_matrix())
        np.testing.assert_allclose(h.evolution_matrix(time), expected, atol=1e-9)

    def test_equation_six(self):
        # exp(-iHt)|x_p> = cos t |x_p> - i sin t |x_g>.
        h = TransitionHamiltonian((1, -1))
        time = 0.4
        op = h.evolution_matrix(time)
        x_p = bits_to_int([0, 1])
        x_g = bits_to_int([1, 0])
        state = np.zeros(4, dtype=complex)
        state[x_p] = 1.0
        out = op @ state
        assert out[x_p] == pytest.approx(np.cos(time))
        assert out[x_g] == pytest.approx(-1j * np.sin(time))

    def test_fixed_points_untouched(self):
        h = TransitionHamiltonian((1, -1))
        op = h.evolution_matrix(1.2)
        for bits in ([0, 0], [1, 1]):
            key = bits_to_int(bits)
            state = np.zeros(4, dtype=complex)
            state[key] = 1.0
            np.testing.assert_allclose(op @ state, state, atol=1e-12)

    def test_time_pi_over_two_is_full_transfer(self):
        # At t = pi/2 the state collapses onto the partner basis state —
        # the mechanism that lets Rasengan end in a basis state.
        h = TransitionHamiltonian((1, -1))
        op = h.evolution_matrix(np.pi / 2)
        x_p = bits_to_int([0, 1])
        x_g = bits_to_int([1, 0])
        state = np.zeros(4, dtype=complex)
        state[x_p] = 1.0
        out = op @ state
        assert abs(out[x_g]) == pytest.approx(1.0)
        assert abs(out[x_p]) == pytest.approx(0.0, abs=1e-12)
