"""Direct tests of the paper's quantitative claims.

Each test names the claim it checks (section/equation/theorem) so this
file doubles as a verification index for the reproduction.
"""

import numpy as np
import pytest

from repro.core.hamiltonian import TransitionHamiltonian
from repro.core.prune import build_schedule, prune_schedule
from repro.core.solver import RasenganConfig, RasenganSolver
from repro.core.transition import transition_cx_exact
from repro.circuits.depth import CX_PER_NONZERO, transition_cx_cost
from repro.linalg.bitvec import int_to_bits
from repro.linalg.tum import is_totally_unimodular
from repro.problems import BENCHMARK_IDS, make_benchmark


class TestEquationSix:
    """exp(-iHt)|x_p> = cos(t)|x_p> - i sin(t)|x_g> (Section 3.1)."""

    @pytest.mark.parametrize("time", [0.1, 0.75, np.pi / 2, 2.0])
    def test_amplitudes(self, time):
        h = TransitionHamiltonian((1, 0, -1))
        op = h.evolution_matrix(time)
        x_p = 0b100  # (0,0,1): +u valid -> (1,0,0)
        x_g = 0b001
        state = np.zeros(8, dtype=complex)
        state[x_p] = 1.0
        out = op @ state
        assert out[x_p] == pytest.approx(np.cos(time))
        assert out[x_g] == pytest.approx(-1j * np.sin(time))


class TestTheoremOne:
    """m rounds of m transitions cover the feasible space for TU systems."""

    @pytest.mark.parametrize("benchmark_id", ["F1", "K1", "J1", "J2"])
    def test_m_squared_chain_covers_tu_benchmarks(self, benchmark_id):
        problem = make_benchmark(benchmark_id, 0)
        if not is_totally_unimodular(problem.constraint_matrix, max_order=4):
            pytest.skip("constraint matrix not (verifiably) TU")
        basis = problem.homogeneous_basis
        result = prune_schedule(
            basis,
            problem.initial_feasible_solution(),
            build_schedule(basis.shape[0]),
            early_stop=False,
        )
        assert result.total_reachable == problem.num_feasible_solutions

    def test_paper_example_coverage(self, paper_basis, paper_constraints):
        matrix, bound, particular = paper_constraints
        assert is_totally_unimodular(matrix)
        result = prune_schedule(paper_basis, particular)
        assert result.total_reachable == 5


class TestNoiseFreeFeasibilityInvariant:
    """The algorithm never leaves the feasible space (Sections 3-4)."""

    @pytest.mark.parametrize("benchmark_id", ["F2", "K2", "S1", "G3"])
    def test_generic_times_reach_only_feasible_states(self, benchmark_id):
        problem = make_benchmark(benchmark_id, 0)
        solver = RasenganSolver(
            problem, config=RasenganConfig(shots=None, max_iterations=1, seed=0)
        )
        rng = np.random.default_rng(1)
        times = rng.uniform(0.2, 1.3, size=solver.num_parameters)
        distribution, rate = solver.execute(times)
        assert rate == pytest.approx(1.0)
        feasible = set(problem.feasible_keys())
        assert set(distribution) <= feasible

    @pytest.mark.parametrize("benchmark_id", ["F1", "K2", "J2"])
    def test_generic_times_cover_whole_feasible_space(self, benchmark_id):
        # The "cover all feasible solutions (noise-free)" contribution
        # claim: no accidental destructive cancellation at generic times.
        problem = make_benchmark(benchmark_id, 0)
        solver = RasenganSolver(
            problem,
            config=RasenganConfig(
                shots=None, max_iterations=1, seed=0, min_seed_probability=0.0
            ),
        )
        rng = np.random.default_rng(3)
        times = rng.uniform(0.3, 1.2, size=solver.num_parameters)
        distribution, _ = solver.execute(times)
        assert set(distribution) == set(problem.feasible_keys())


class TestCircuitCostClaims:
    """CX cost is linear in the nonzero count (Section 3.2)."""

    def test_linear_model_34k(self):
        for k in (1, 2, 5, 11):
            assert transition_cx_cost(k) == 34 * k

    def test_exact_cost_beats_linear_model_for_small_k(self):
        # For the control counts that survive simplification, the
        # ancilla-free decomposition is far below the 34k budget.
        for k in (2, 3, 4):
            assert transition_cx_exact(k) < CX_PER_NONZERO * k

    def test_exact_cost_monotone_in_k(self):
        costs = [transition_cx_exact(k) for k in (2, 3, 4, 5, 6)]
        assert costs == sorted(costs)

    def test_single_bit_transition_needs_no_cx(self):
        assert transition_cx_exact(1, num_qubits=3) == 0


class TestPurificationClaims:
    """Purification guarantees a 100% in-constraints output (Section 4.3)."""

    def test_every_benchmark_outputs_feasible_only(self):
        for benchmark_id in ("F1", "K1", "J1"):
            problem = make_benchmark(benchmark_id, 0)
            result = RasenganSolver(
                problem,
                config=RasenganConfig(shots=512, max_iterations=30, seed=0),
            ).solve()
            assert result.in_constraints_rate == 1.0
            n = problem.num_variables
            for key in result.final_distribution:
                assert problem.is_feasible(int_to_bits(key, n))


class TestParameterCountClaims:
    """Hamiltonian-based methods use ~10 params; HEA ~10x more (Table 2)."""

    def test_chocoq_always_ten(self):
        from repro.baselines import ChocoQ

        for benchmark_id in ("F1", "S1"):
            problem = make_benchmark(benchmark_id, 0)
            assert ChocoQ(problem, layers=5, shots=None).num_parameters == 10

    def test_hea_order_of_magnitude_more(self):
        from repro.baselines import HardwareEfficientAnsatz

        problem = make_benchmark("F1", 0)
        hea = HardwareEfficientAnsatz(problem, layers=5, shots=None)
        solver = RasenganSolver(
            problem, config=RasenganConfig(shots=None, max_iterations=1)
        )
        assert hea.num_parameters > 10 * solver.num_parameters
