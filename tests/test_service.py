"""Service-layer units: queue, deadlines, dedup, store, worker pool."""

from __future__ import annotations

import threading
import time

import pytest

from repro import telemetry
from repro.problems import make_benchmark
from repro.problems.io import problem_to_dict
from repro.service import (
    Job,
    JobQueue,
    JobSpec,
    JobState,
    JobTimeoutError,
    ResultStore,
    ServiceError,
    SolverService,
    job_fingerprint,
    run_with_deadline,
    solver_config_from_dict,
)

F1 = problem_to_dict(make_benchmark("F1", 0))
K1 = problem_to_dict(make_benchmark("K1", 0))

#: A solver config small enough for sub-second real executions.
QUICK = {"seed": 7, "shots": None, "max_iterations": 5}


def make_job(problem=F1, **spec_kwargs) -> Job:
    spec = JobSpec(problem=problem, **spec_kwargs)
    return Job(spec, fingerprint=job_fingerprint(spec))


# ----------------------------------------------------------------------
# Queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_priority_order_highest_first(self):
        queue = JobQueue()
        low = make_job(priority=0)
        high = make_job(priority=5)
        mid = make_job(priority=1)
        for job in (low, high, mid):
            queue.put(job)
        assert [queue.get(0.1) for _ in range(3)] == [high, mid, low]

    def test_fifo_within_priority(self):
        queue = JobQueue()
        jobs = [make_job(priority=2) for _ in range(4)]
        for job in jobs:
            queue.put(job)
        assert [queue.get(0.1) for _ in range(4)] == jobs

    def test_get_timeout_returns_none(self):
        assert JobQueue().get(timeout=0.01) is None

    def test_cancelled_jobs_are_skipped(self):
        queue = JobQueue()
        first, second = make_job(priority=9), make_job(priority=1)
        queue.put(first)
        queue.put(second)
        assert first.cancel()
        assert queue.get(0.1) is second

    def test_close_wakes_blocked_get(self):
        queue = JobQueue()
        got = []
        thread = threading.Thread(target=lambda: got.append(queue.get()))
        thread.start()
        queue.close()
        thread.join(2.0)
        assert not thread.is_alive()
        assert got == [None]
        with pytest.raises(ServiceError):
            queue.put(make_job())


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestRunWithDeadline:
    def test_no_timeout_runs_inline(self):
        assert run_with_deadline(lambda: 42, None) == 42

    def test_fast_function_completes(self):
        assert run_with_deadline(lambda: "ok", 5.0) == "ok"

    def test_slow_function_times_out(self):
        with pytest.raises(JobTimeoutError):
            run_with_deadline(lambda: time.sleep(5.0), 0.05)

    def test_expired_deadline_fails_before_execution(self):
        ran = []
        with pytest.raises(JobTimeoutError):
            run_with_deadline(lambda: ran.append(1), 0.0)
        assert not ran

    def test_exception_propagates(self):
        def boom():
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            run_with_deadline(boom, 5.0)


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
class TestJobFingerprint:
    def test_stable_across_config_defaults(self):
        explicit = JobSpec(problem=F1, config={"seed": 7, "shots": 1024})
        implicit = JobSpec(problem=F1, config={"seed": 7})
        assert job_fingerprint(explicit) == job_fingerprint(implicit)

    def test_engine_workers_is_not_identity(self):
        serial = JobSpec(problem=F1, config={"seed": 7})
        parallel = JobSpec(problem=F1, config={"seed": 7, "engine_workers": 4})
        assert job_fingerprint(serial) == job_fingerprint(parallel)

    def test_seed_and_problem_change_identity(self):
        base = JobSpec(problem=F1, config={"seed": 7})
        assert job_fingerprint(base) != job_fingerprint(
            JobSpec(problem=F1, config={"seed": 8})
        )
        assert job_fingerprint(base) != job_fingerprint(
            JobSpec(problem=K1, config={"seed": 7})
        )

    def test_backend_changes_identity(self):
        base = JobSpec(problem=F1)
        assert job_fingerprint(base) != job_fingerprint(
            JobSpec(problem=F1, backend="ideal")
        )

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ServiceError, match="shotz"):
            solver_config_from_dict({"shotz": 12})


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_lru_eviction(self):
        store = ResultStore(capacity=2)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        assert store.get("a") == {"v": 1}  # refresh 'a'
        store.put("c", {"v": 3})  # evicts 'b'
        assert store.get("b") is None
        assert store.get("a") == {"v": 1}
        assert store.get("c") == {"v": 3}

    def test_jsonl_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(capacity=8, path=path)
        store.put("a", {"arg": 0.5})
        store.put("a", {"arg": 0.25})  # last record wins on reload
        store.put("b", {"arg": 1.0})
        reloaded = ResultStore(capacity=8, path=path)
        assert len(reloaded) == 2
        assert reloaded.get("a") == {"arg": 0.25}
        assert reloaded.get("b") == {"arg": 1.0}

    def test_midfile_corruption_raises(self, tmp_path):
        # Structural damage (garbage with intact records after it) must
        # still refuse to load; only a torn *tail* is quarantined.
        path = tmp_path / "bad.jsonl"
        good = '{"fingerprint": "a", "result": {"v": 1}}'
        path.write_text(f"not json\n{good}\n")
        with pytest.raises(ServiceError, match="corrupt"):
            ResultStore(path=str(path))

    def test_torn_tail_is_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        good = '{"fingerprint": "a", "result": {"v": 1}}'
        path.write_text(f'{good}\n{{"fingerprint": "b", "res')  # torn append
        store = ResultStore(path=str(path))
        assert store.get("a") == {"v": 1}
        assert store.quarantined == 1


# ----------------------------------------------------------------------
# Worker pool behaviour (injected runners; no real solves)
# ----------------------------------------------------------------------
class TestServiceRetries:
    def test_flaky_runner_retries_with_backoff(self):
        calls = []
        sleeps = []

        def flaky(spec):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient backend failure")
            return {"ok": True}

        with telemetry.session() as collector:
            service = SolverService(
                workers=1, runner=flaky, sleep=sleeps.append
            ).start()
            job = service.submit(
                F1, config=QUICK, max_retries=3, retry_backoff=0.05
            )
            assert job.wait(5.0)
            service.close()
        assert job.state is JobState.DONE
        assert job.result == {"ok": True}
        assert job.attempts == 3
        assert sleeps == [0.05, 0.1]  # exponential backoff
        assert collector.counter("service.jobs.retries") == 2
        assert collector.counter("service.jobs.executed") == 1

    def test_exhausted_retries_fail(self):
        def always_broken(spec):
            raise RuntimeError("permanently broken")

        with telemetry.session() as collector:
            service = SolverService(
                workers=1, runner=always_broken, sleep=lambda _: None
            ).start()
            job = service.submit(F1, config=QUICK, max_retries=2)
            assert job.wait(5.0)
            service.close()
        assert job.state is JobState.FAILED
        assert "permanently broken" in job.error
        assert job.attempts == 3
        assert collector.counter("service.jobs.failed") == 1

    def test_job_timeout_fails_without_retry(self):
        def slow(spec):
            time.sleep(5.0)
            return {}

        with telemetry.session() as collector:
            service = SolverService(workers=1, runner=slow).start()
            job = service.submit(F1, config=QUICK, timeout=0.05, max_retries=5)
            assert job.wait(5.0)
            service.close(drain=False)
        assert job.state is JobState.FAILED
        assert "wall-clock" in job.error
        assert job.attempts == 1
        assert collector.counter("service.jobs.timeouts") == 1


class TestServiceDedup:
    def test_identical_submissions_coalesce_to_one_execution(self):
        release = threading.Event()
        executions = []
        lock = threading.Lock()

        def gated(spec):
            with lock:
                executions.append(spec.problem["name"])
            release.wait(5.0)
            return {"answer": spec.problem["name"]}

        with telemetry.session() as collector:
            service = SolverService(workers=2, runner=gated).start()
            same = [service.submit(F1, config=QUICK) for _ in range(4)]
            other = service.submit(K1, config=QUICK)
            release.set()
            for job in same + [other]:
                assert job.wait(5.0)
            service.close()
        assert len(executions) == 2  # one per distinct fingerprint
        results = {job.result["answer"] for job in same}
        assert len(results) == 1
        assert collector.counter("service.dedup.unique") == 2
        assert collector.counter("service.dedup.coalesced") == 3
        assert collector.counter("service.dedup.shared_results") == 3
        assert collector.counter("service.jobs.executed") == 2
        followers = [job for job in same if job.coalesced_into is not None]
        assert len(followers) == 3
        assert all(f.coalesced_into == same[0].id for f in followers)

    def test_store_hit_completes_without_execution(self):
        executions = []

        def runner(spec):
            executions.append(1)
            return {"value": 1}

        service = SolverService(workers=1, runner=runner).start()
        first = service.submit(F1, config=QUICK)
        assert first.wait(5.0)
        second = service.submit(F1, config=QUICK)
        assert second.wait(1.0)
        service.close()
        assert len(executions) == 1
        assert second.from_cache
        assert second.result == first.result

    def test_failed_primary_propagates_to_followers(self):
        release = threading.Event()

        def failing(spec):
            release.wait(5.0)
            raise RuntimeError("engine exploded")

        service = SolverService(workers=1, runner=failing).start()
        primary = service.submit(F1, config=QUICK)
        follower = service.submit(F1, config=QUICK)
        release.set()
        assert primary.wait(5.0) and follower.wait(5.0)
        service.close()
        assert primary.state is JobState.FAILED
        assert follower.state is JobState.FAILED
        assert "engine exploded" in follower.error


class TestServiceLifecycle:
    def test_graceful_drain_finishes_all_jobs_and_joins_threads(self):
        def runner(spec):
            time.sleep(0.02)
            return {"done": True}

        service = SolverService(workers=3, runner=runner).start()
        jobs = [
            service.submit(F1, config={**QUICK, "seed": seed})
            for seed in range(8)
        ]
        threads = list(service._threads)
        service.close(drain=True)
        assert all(job.state is JobState.DONE for job in jobs)
        assert all(not thread.is_alive() for thread in threads)

    def test_fast_close_cancels_queued_jobs(self):
        started = threading.Event()
        release = threading.Event()

        def runner(spec):
            started.set()
            release.wait(5.0)
            return {"done": True}

        service = SolverService(workers=1, runner=runner).start()
        running = service.submit(F1, config=QUICK)
        queued = service.submit(K1, config=QUICK)
        assert started.wait(5.0)
        release.set()
        service.close(drain=False)
        assert running.wait(5.0)
        assert running.state is JobState.DONE
        assert queued.state is JobState.CANCELLED

    def test_cancel_pending_job(self):
        release = threading.Event()

        def runner(spec):
            release.wait(5.0)
            return {}

        service = SolverService(workers=1, runner=runner).start()
        blocker = service.submit(F1, config=QUICK)
        victim = service.submit(K1, config=QUICK)
        assert service.cancel(victim.id)
        release.set()
        blocker.wait(5.0)
        service.close()
        assert victim.state is JobState.CANCELLED
        assert blocker.state is JobState.DONE

    def test_cancelling_follower_keeps_primary_coalescing(self):
        release = threading.Event()

        def runner(spec):
            release.wait(5.0)
            return {"v": 1}

        service = SolverService(workers=1, runner=runner).start()
        primary = service.submit(F1, config=QUICK)
        follower_a = service.submit(F1, config=QUICK)
        follower_b = service.submit(F1, config=QUICK)
        assert service.cancel(follower_a.id)
        release.set()
        assert primary.wait(5.0) and follower_b.wait(5.0)
        service.close()
        assert primary.state is JobState.DONE
        assert follower_a.state is JobState.CANCELLED
        assert follower_b.state is JobState.DONE
        assert follower_b.result == primary.result

    def test_submit_validates_arguments(self):
        service = SolverService(workers=1, runner=lambda spec: {})
        with pytest.raises(ServiceError):
            service.submit(F1, benchmark="F1")
        with pytest.raises(ServiceError):
            service.submit()
        service.close()

    def test_priority_orders_execution(self):
        order = []
        release = threading.Event()

        def runner(spec):
            if not release.is_set():
                release.wait(5.0)
            order.append(spec.priority)
            return {}

        service = SolverService(workers=1, runner=runner).start()
        blocker = service.submit(F1, config=QUICK, priority=100)
        jobs = [
            service.submit(K1, config={**QUICK, "seed": seed}, priority=p)
            for seed, p in enumerate((0, 5, 1))
        ]
        release.set()
        for job in [blocker] + jobs:
            assert job.wait(5.0)
        service.close()
        assert order == [100, 5, 1, 0]


# ----------------------------------------------------------------------
# Real end-to-end execution (one tiny solve)
# ----------------------------------------------------------------------
class TestServiceRealSolve:
    def test_service_result_matches_direct_solver_bit_for_bit(self):
        from repro.core.solver import RasenganConfig, RasenganSolver

        solver = RasenganSolver(
            make_benchmark("F1", 0),
            config=RasenganConfig(**solver_config_overrides()),
        )
        try:
            direct = solver.solve().to_json_dict()
        finally:
            solver.engine.close()

        service = SolverService(workers=2).start()
        job = service.submit(benchmark="F1", config=solver_config_overrides())
        assert job.wait(60.0)
        service.close()
        assert job.state is JobState.DONE
        assert job.result == direct


def solver_config_overrides():
    return dict(QUICK)
