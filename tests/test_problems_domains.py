"""The five benchmark problem formulations."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import ProblemError
from repro.problems import (
    FacilityLocationProblem,
    GraphColoringProblem,
    JobSchedulingProblem,
    KPartitionProblem,
    SetCoverProblem,
)


class TestFacilityLocation:
    def test_shapes(self):
        problem = FacilityLocationProblem([5, 7], [[1, 2], [3, 4]])
        # f + 2 f d variables; d + f d constraints.
        assert problem.num_variables == 2 + 2 * 4
        assert problem.num_constraints == 2 + 4

    def test_objective_by_hand(self):
        problem = FacilityLocationProblem([5, 7], [[1, 2], [3, 4]])
        x = np.zeros(problem.num_variables, dtype=np.int8)
        x[problem.y_index(0)] = 1
        x[problem.x_index(0, 0)] = 1
        x[problem.x_index(0, 1)] = 1
        assert problem.objective(x) == pytest.approx(5 + 1 + 2)

    def test_initial_feasible_and_linear_shape(self):
        problem = FacilityLocationProblem.random(3, 2, seed=1)
        init = problem.initial_feasible_solution()
        assert problem.is_feasible(init)
        assert init[problem.y_index(0)] == 1

    def test_link_constraint_enforced(self):
        problem = FacilityLocationProblem([5, 7], [[1, 2], [3, 4]])
        # Assign demand to a closed facility: infeasible for every slack.
        x = np.zeros(problem.num_variables, dtype=np.int8)
        x[problem.x_index(1, 0)] = 1
        x[problem.x_index(1, 1)] = 1
        assert not problem.is_feasible(x)

    def test_optimum_picks_cheapest_configuration(self):
        problem = FacilityLocationProblem(
            [1, 100], [[1, 1], [1, 1]], name="cheap-first"
        )
        best = problem.optimal_solution
        assert best[problem.y_index(0)] == 1
        assert best[problem.y_index(1)] == 0

    def test_bad_shapes_rejected(self):
        with pytest.raises(ProblemError):
            FacilityLocationProblem([1, 2, 3], [[1, 2], [3, 4]])


class TestKPartition:
    def _triangle(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1, weight=2)
        graph.add_edge(1, 2, weight=3)
        graph.add_edge(0, 2, weight=4)
        return graph

    def test_shapes(self):
        problem = KPartitionProblem(self._triangle(), [2, 1])
        assert problem.num_variables == 6
        assert problem.num_constraints == 3 + 2

    def test_cut_objective_by_hand(self):
        problem = KPartitionProblem(self._triangle(), [2, 1])
        x = np.zeros(6, dtype=np.int8)
        # 0,1 in part 0; 2 in part 1: cut = w(1,2) + w(0,2) = 7.
        x[problem.x_index(0, 0)] = 1
        x[problem.x_index(1, 0)] = 1
        x[problem.x_index(2, 1)] = 1
        assert problem.objective(x) == pytest.approx(7.0)

    def test_initial_feasible(self):
        problem = KPartitionProblem.random(5, 3, seed=2)
        assert problem.is_feasible(problem.initial_feasible_solution())

    def test_balance_enforced(self):
        problem = KPartitionProblem(self._triangle(), [2, 1])
        x = np.zeros(6, dtype=np.int8)
        for node in range(3):
            x[problem.x_index(node, 0)] = 1  # all in part 0
        assert not problem.is_feasible(x)

    def test_part_sizes_must_sum(self):
        with pytest.raises(ProblemError):
            KPartitionProblem(self._triangle(), [2, 2])


class TestJobScheduling:
    def test_shapes(self):
        problem = JobSchedulingProblem([3, 5, 2], 2)
        assert problem.num_variables == 6
        assert problem.num_constraints == 3

    def test_objective_and_makespan(self):
        problem = JobSchedulingProblem([3, 5, 2], 2)
        x = np.zeros(6, dtype=np.int8)
        x[problem.x_index(0, 0)] = 1  # 3 on m0
        x[problem.x_index(1, 1)] = 1  # 5 on m1
        x[problem.x_index(2, 0)] = 1  # 2 on m0
        assert problem.objective(x) == pytest.approx(25 + 25)
        assert problem.makespan(x) == pytest.approx(5.0)

    def test_optimum_balances_load(self):
        problem = JobSchedulingProblem([3, 5, 2], 2)
        best = problem.optimal_solution
        loads = sorted(problem.machine_loads(best))
        assert loads == [5.0, 5.0]

    def test_initial_feasible(self):
        problem = JobSchedulingProblem.random(6, 3, seed=3)
        assert problem.is_feasible(problem.initial_feasible_solution())

    def test_validation(self):
        with pytest.raises(ProblemError):
            JobSchedulingProblem([], 2)
        with pytest.raises(ProblemError):
            JobSchedulingProblem([1, 2], 0)


class TestSetCover:
    def test_shapes(self, small_scp):
        # 3 sets + each element covered twice -> one slack each.
        assert small_scp.num_variables == 3 + 3
        assert small_scp.num_constraints == 3

    def test_objective_counts_only_set_vars(self, small_scp):
        x = np.zeros(small_scp.num_variables, dtype=np.int8)
        x[small_scp.x_index(0)] = 1
        x[small_scp.x_index(2)] = 1
        assert small_scp.objective(x) == pytest.approx(2 + 4)

    def test_select_all_is_feasible(self, small_scp):
        init = small_scp.initial_feasible_solution()
        assert small_scp.is_feasible(init)
        assert init[: small_scp.num_sets].all()

    def test_optimum_is_min_cost_cover(self, small_scp):
        # Covers: {0,1}+{1,2} costs 5; {0,1}+{0,2} costs 6; {1,2}+{0,2} = 7.
        assert small_scp.optimal_value == pytest.approx(5.0)

    def test_uncovered_element_rejected(self):
        with pytest.raises(ProblemError):
            SetCoverProblem([{0}], [1], num_elements=2)

    def test_random_instances_have_rich_feasible_space(self):
        problem = SetCoverProblem.random(5, 4, seed=4)
        assert problem.num_feasible_solutions > 10


class TestGraphColoring:
    def _p3(self, costs=(1, 4)):
        return GraphColoringProblem(nx.path_graph(3), 2, costs, name="p3")

    def test_shapes(self):
        problem = self._p3()
        assert problem.num_variables == 3 * 2 + 2 * 2
        assert problem.num_constraints == 3 + 2 * 2

    def test_proper_colorings_only(self):
        problem = self._p3()
        colorings = {
            tuple(problem.coloring_of(x).values())
            for x in problem.feasible_solutions
        }
        assert colorings == {(0, 1, 0), (1, 0, 1)}

    def test_objective_prefers_cheap_color(self):
        problem = self._p3(costs=(1, 4))
        best = problem.coloring_of(problem.optimal_solution)
        # Cheapest proper coloring uses color 0 twice: (0,1,0).
        assert tuple(best.values()) == (0, 1, 0)

    def test_initial_feasible_greedy(self):
        problem = self._p3()
        assert problem.is_feasible(problem.initial_feasible_solution())

    def test_palette_too_small(self):
        triangle = nx.complete_graph(3)
        problem = GraphColoringProblem(triangle, 2, [1, 2])
        with pytest.raises(ProblemError):
            problem.initial_feasible_solution()

    def test_costs_length_checked(self):
        with pytest.raises(ProblemError):
            GraphColoringProblem(nx.path_graph(2), 2, [1])
