"""Dense statevector simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.simulators.statevector import StatevectorSimulator, simulate_statevector


class TestBasics:
    def test_initial_state_default(self):
        qc = QuantumCircuit(2)
        state = simulate_statevector(qc)
        np.testing.assert_allclose(state, [1, 0, 0, 0])

    def test_initial_bits(self):
        qc = QuantumCircuit(3)
        state = simulate_statevector(qc, initial_bits=[1, 0, 1])
        assert state[0b101] == 1.0

    def test_both_initials_rejected(self):
        sim = StatevectorSimulator()
        qc = QuantumCircuit(1)
        with pytest.raises(SimulationError):
            sim.run(qc, initial_state=np.array([1, 0]), initial_bits=[0])

    def test_wrong_initial_shape(self):
        sim = StatevectorSimulator()
        with pytest.raises(SimulationError):
            sim.run(QuantumCircuit(2), initial_state=np.ones(3))

    def test_reset_rejected(self):
        qc = QuantumCircuit(1)
        qc.reset(0)
        with pytest.raises(SimulationError):
            simulate_statevector(qc)

    def test_measure_is_noop(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.measure_all()
        state = simulate_statevector(qc)
        np.testing.assert_allclose(np.abs(state) ** 2, [0.5, 0.5])


class TestCanonicalStates:
    def test_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        state = simulate_statevector(qc)
        expected = np.zeros(4, dtype=complex)
        expected[0b00] = expected[0b11] = 1 / math.sqrt(2)
        np.testing.assert_allclose(state, expected, atol=1e-12)

    def test_ghz_state(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        for q in range(3):
            qc.cx(q, q + 1)
        probabilities = StatevectorSimulator().probabilities(qc)
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[15] == pytest.approx(0.5)

    def test_x_flips(self):
        qc = QuantumCircuit(2)
        qc.x(1)
        state = simulate_statevector(qc)
        assert state[0b10] == 1.0


class TestGateAlgebra:
    @given(theta=st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_rx_inverse(self, theta):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.rx(theta, 0)
        qc.rx(-theta, 0)
        state = simulate_statevector(qc)
        np.testing.assert_allclose(np.abs(state) ** 2, [0.5, 0.5], atol=1e-10)

    def test_hzh_equals_x(self):
        a = QuantumCircuit(1)
        a.h(0); a.z(0); a.h(0)
        b = QuantumCircuit(1)
        b.x(0)
        np.testing.assert_allclose(
            simulate_statevector(a), simulate_statevector(b), atol=1e-12
        )

    def test_cx_self_inverse(self):
        qc = QuantumCircuit(2)
        qc.h(0); qc.h(1)
        qc.cx(0, 1); qc.cx(0, 1)
        state = simulate_statevector(qc)
        np.testing.assert_allclose(np.abs(state) ** 2, np.full(4, 0.25), atol=1e-12)

    def test_norm_preserved_random_circuit(self):
        rng = np.random.default_rng(7)
        qc = QuantumCircuit(4)
        for _ in range(30):
            kind = rng.integers(0, 4)
            if kind == 0:
                qc.rx(rng.uniform(-3, 3), int(rng.integers(0, 4)))
            elif kind == 1:
                qc.h(int(rng.integers(0, 4)))
            elif kind == 2:
                a, b = rng.choice(4, size=2, replace=False)
                qc.cx(int(a), int(b))
            else:
                qc.mcp(rng.uniform(-3, 3), [0, 1], 3)
        state = simulate_statevector(qc)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-10)

    def test_swap_matches_three_cx(self):
        a = QuantumCircuit(2)
        a.h(0); a.rx(0.3, 1)
        a.swap(0, 1)
        b = QuantumCircuit(2)
        b.h(0); b.rx(0.3, 1)
        b.cx(0, 1); b.cx(1, 0); b.cx(0, 1)
        np.testing.assert_allclose(
            simulate_statevector(a), simulate_statevector(b), atol=1e-12
        )


class TestControlledPatterns:
    def test_zero_control_fires_on_zero(self):
        qc = QuantumCircuit(2)
        qc.mcx([0], 1, ctrl_state=(0,))
        state = simulate_statevector(qc)  # input |00>
        assert state[0b10] == 1.0

    def test_pattern_multi(self):
        qc = QuantumCircuit(3)
        qc.x(0)  # state |001> (q0=1)
        qc.mcx([0, 1], 2, ctrl_state=(1, 0))
        state = simulate_statevector(qc)
        assert abs(state[0b101]) == pytest.approx(1.0)
