"""Problem serialization round trips."""

import numpy as np
import pytest

from repro.exceptions import ProblemError
from repro.problems import BENCHMARK_IDS, make_benchmark
from repro.problems.io import (
    canonical_problem_payload,
    problem_fingerprint,
    problem_from_dict,
    problem_from_json,
    problem_to_dict,
    problem_to_json,
)


class TestRoundTrip:
    @pytest.mark.parametrize("benchmark_id", ["F1", "K2", "J3", "S1", "G1"])
    def test_dict_round_trip_preserves_semantics(self, benchmark_id):
        problem = make_benchmark(benchmark_id, case=2)
        clone = problem_from_dict(problem_to_dict(problem))
        assert clone.name == problem.name
        assert clone.num_variables == problem.num_variables
        np.testing.assert_array_equal(
            clone.constraint_matrix, problem.constraint_matrix
        )
        np.testing.assert_array_equal(clone.bound, problem.bound)
        assert clone.optimal_value == problem.optimal_value
        assert clone.feasible_keys() == problem.feasible_keys()

    @pytest.mark.parametrize("benchmark_id", BENCHMARK_IDS)
    def test_every_family_serialisable(self, benchmark_id):
        problem = make_benchmark(benchmark_id, case=0)
        payload = problem_to_dict(problem)
        assert payload["type"] in (
            "facility_location", "k_partition", "job_scheduling",
            "set_cover", "graph_coloring",
        )
        clone = problem_from_dict(payload)
        assert clone.num_variables == problem.num_variables

    def test_json_round_trip(self):
        problem = make_benchmark("K1", 0)
        clone = problem_from_json(problem_to_json(problem))
        assert clone.optimal_value == problem.optimal_value

    def test_objective_preserved_on_random_points(self):
        problem = make_benchmark("J2", 1)
        clone = problem_from_dict(problem_to_dict(problem))
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = rng.integers(0, 2, size=problem.num_variables)
            assert clone.objective(x) == pytest.approx(problem.objective(x))

    def test_unknown_type_rejected(self):
        with pytest.raises(ProblemError):
            problem_from_dict({"type": "knapsack"})

    def test_unserialisable_type_rejected(self):
        from repro.problems.base import ConstrainedBinaryProblem

        class Custom(ConstrainedBinaryProblem):
            def objective(self, x):
                return 0.0

        custom = Custom("c", np.ones((1, 2), dtype=np.int64), np.array([1]))
        with pytest.raises(ProblemError):
            problem_to_dict(custom)


class TestProblemFingerprint:
    @pytest.mark.parametrize("benchmark_id", BENCHMARK_IDS)
    def test_deterministic_across_reconstruction(self, benchmark_id):
        problem = make_benchmark(benchmark_id, case=0)
        clone = problem_from_dict(problem_to_dict(problem))
        assert problem_fingerprint(problem) == problem_fingerprint(clone)

    def test_instance_and_payload_agree(self):
        problem = make_benchmark("F1", 0)
        assert problem_fingerprint(problem) == problem_fingerprint(
            problem_to_dict(problem)
        )

    def test_stable_across_dict_key_order(self):
        payload = problem_to_dict(make_benchmark("S1", 0))
        reversed_payload = dict(reversed(list(payload.items())))
        assert problem_fingerprint(payload) == problem_fingerprint(
            reversed_payload
        )

    def test_stable_across_numpy_dtypes(self):
        from repro.problems import FacilityLocationProblem

        base = FacilityLocationProblem([1, 2], [[3, 4], [5, 6]], name="flp")
        narrow = FacilityLocationProblem(
            np.array([1, 2], dtype=np.int32),
            np.array([[3, 4], [5, 6]], dtype=np.float32),
            name="flp",
        )
        assert problem_fingerprint(base) == problem_fingerprint(narrow)

    def test_distinguishes_different_instances(self):
        assert problem_fingerprint(make_benchmark("F1", 0)) != problem_fingerprint(
            make_benchmark("F1", 1)
        )
        assert problem_fingerprint(make_benchmark("F1", 0)) != problem_fingerprint(
            make_benchmark("K1", 0)
        )

    def test_name_is_part_of_identity(self):
        from repro.problems import FacilityLocationProblem

        a = FacilityLocationProblem([1.0], [[2.0]], name="one")
        b = FacilityLocationProblem([1.0], [[2.0]], name="two")
        assert problem_fingerprint(a) != problem_fingerprint(b)

    def test_canonical_payload_is_plain_json(self):
        import json

        payload = canonical_problem_payload(make_benchmark("K1", 0))
        assert json.loads(json.dumps(payload)) == payload

    def test_kpp_serialization_preserves_edge_order(self):
        """Edge order fixes the objective's float summation order, so a
        round trip must reproduce it exactly (bit-for-bit objectives)."""
        problem = make_benchmark("K2", 3)
        payload = problem_to_dict(problem)
        assert [tuple(edge) for edge in payload["edges"]] == [
            (u, v, w) for u, v, w in problem._edges
        ]
