"""Solver extensions: warm start, adaptive shots, diagnostics."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    basis_table,
    example_transition_drawing,
    report,
    schedule_summary,
    segment_summary,
)
from repro.core.solver import RasenganConfig, RasenganSolver
from repro.core.warmstart import hill_climb_initial_solution
from repro.problems import make_benchmark


class TestWarmStart:
    def test_never_worse_than_domain_construction(self):
        for benchmark_id in ("F1", "K2", "J2", "S1"):
            problem = make_benchmark(benchmark_id, 0)
            solver = RasenganSolver(
                problem, config=RasenganConfig(shots=None, max_iterations=1)
            )
            improved = hill_climb_initial_solution(problem, solver.basis)
            assert problem.is_feasible(improved)
            assert problem.value(improved) <= problem.value(
                problem.initial_feasible_solution()
            )

    def test_reaches_local_optimum(self):
        problem = make_benchmark("J1", 0)
        solver = RasenganSolver(
            problem, config=RasenganConfig(shots=None, max_iterations=1)
        )
        improved = hill_climb_initial_solution(problem, solver.basis)
        # No single move improves further.
        from repro.linalg.moves import move_masks, partner_key_from_masks
        from repro.linalg.bitvec import bits_to_int, int_to_bits

        key = bits_to_int(improved)
        value = problem.value(improved)
        for u in solver.basis:
            masks = move_masks(np.asarray(u, dtype=np.int64))
            partner = partner_key_from_masks(key, *masks)
            if partner is not None:
                assert problem.value(
                    int_to_bits(partner, problem.num_variables)
                ) >= value - 1e-12

    def test_warm_start_config_solves(self):
        problem = make_benchmark("F2", 0)
        config = RasenganConfig(
            shots=None, max_iterations=150, warm_start=True, seed=0
        )
        result = RasenganSolver(problem, config=config).solve()
        assert result.arg < 0.1

    def test_warm_start_preserves_coverage(self):
        problem = make_benchmark("S1", 0)
        config = RasenganConfig(shots=None, max_iterations=1, warm_start=True)
        solver = RasenganSolver(problem, config=config)
        assert solver.pruned.total_reachable == problem.num_feasible_solutions


class TestAdaptiveShots:
    def test_growth_schedule(self):
        problem = make_benchmark("F1", 0)
        config = RasenganConfig(shots=100, shots_growth=2.0, max_iterations=1)
        solver = RasenganSolver(problem, config=config)
        assert solver._segment_shots(0, 100) == 100
        assert solver._segment_shots(1, 100) == 200
        assert solver._segment_shots(3, 100) == 800

    def test_uniform_schedule_is_identity(self):
        problem = make_benchmark("F1", 0)
        solver = RasenganSolver(
            problem, config=RasenganConfig(shots=100, max_iterations=1)
        )
        assert solver._segment_shots(5, 100) == 100

    def test_growth_still_converges(self):
        problem = make_benchmark("F1", 0)
        config = RasenganConfig(
            shots=512, shots_growth=1.5, max_iterations=120, seed=0
        )
        result = RasenganSolver(problem, config=config).solve()
        assert result.arg < 0.5


class TestDiagnostics:
    @pytest.fixture
    def solver(self):
        problem = make_benchmark("F1", 0)
        return RasenganSolver(
            problem, config=RasenganConfig(shots=None, max_iterations=1)
        )

    def test_basis_table_rows(self, solver):
        table = basis_table(solver)
        assert len(table.splitlines()) == solver.basis.shape[0] + 1

    def test_schedule_summary_mentions_pruning(self, solver):
        text = schedule_summary(solver)
        assert "canonical chain" in text
        assert "retained" in text

    def test_segment_summary_rows(self, solver):
        text = segment_summary(solver)
        assert len(text.splitlines()) == solver.num_segments + 1

    def test_transition_drawing(self, solver):
        drawing = example_transition_drawing(solver)
        assert drawing.startswith("q0:")

    def test_full_report(self, solver):
        text = report(solver)
        assert solver.problem.name in text
        assert "move set" in text
        assert "segments" in text
