"""Unit tests for the repro.faults injection subsystem."""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    PerturbDirective,
    TruncateDirective,
    WorkerCrash,
)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    faults.uninstall()


class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule("x", "explode")

    def test_probability_and_every_are_exclusive(self):
        with pytest.raises(ValueError, match="at most one"):
            FaultRule("x", "raise", probability=0.5, every=2)

    def test_prefix_matching(self):
        rule = FaultRule("store.*", "raise")
        assert rule.matches("store.append")
        assert rule.matches("store.compact")
        assert not rule.matches("worker.run")

    def test_parse_round_trips_options(self):
        rule = FaultRule.parse("engine.execute:raise:p=0.25,max=3")
        assert rule.point == "engine.execute"
        assert rule.action == "raise"
        assert rule.probability == 0.25
        assert rule.max_fires == 3

        rule = FaultRule.parse("store.append:truncate:every=5,fraction=0.3")
        assert rule.every == 5
        assert rule.fraction == 0.3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultRule.parse("no-action")
        with pytest.raises(ValueError):
            FaultRule.parse("p:raise:bogus=1")


class TestInjectorDeterminism:
    def test_every_nth_fires_on_schedule(self):
        injector = FaultInjector(
            FaultPlan([FaultRule("p", "raise", every=3)], seed=0)
        )
        outcomes = []
        for _ in range(9):
            try:
                injector.fire("p")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("boom")
        assert outcomes == ["ok", "ok", "boom"] * 3

    def test_same_seed_same_sequence(self):
        def run(seed):
            injector = FaultInjector(
                FaultPlan([FaultRule("p", "raise", probability=0.4)], seed=seed)
            )
            fired = []
            for index in range(50):
                try:
                    injector.fire("p")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired, list(injector.log)

        first, log_a = run(11)
        second, log_b = run(11)
        different, _ = run(12)
        assert first == second
        assert log_a == log_b
        assert first != different
        assert any(first)  # p=0.4 over 50 calls must fire sometimes
        assert not all(first)

    def test_per_point_streams_are_independent(self):
        """Interleaving calls to other points never shifts a point's decisions."""
        plan = [FaultRule("a", "raise", probability=0.5)]
        solo = FaultInjector(FaultPlan(plan, seed=3))
        interleaved = FaultInjector(FaultPlan(plan, seed=3))

        def decisions(injector, with_noise):
            fired = []
            for _ in range(20):
                if with_noise:
                    injector.fire("noise")  # no rule matches; still counted
                try:
                    injector.fire("a")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert decisions(solo, False) == decisions(interleaved, True)

    def test_plans_are_reusable_fire_counters_are_injector_state(self):
        """One plan must seed any number of independent injectors: the
        per-rule max_fires counter lives on the injector's private rule
        copies, not on the shared plan."""
        plan = FaultPlan([FaultRule("p", "raise", every=1, max_fires=1)])

        def failures(injector):
            count = 0
            for _ in range(3):
                try:
                    injector.fire("p")
                except InjectedFault:
                    count += 1
            return count

        assert failures(FaultInjector(plan)) == 1
        assert failures(FaultInjector(plan)) == 1  # fresh counter
        assert plan.rules[0].fired == 0  # the plan itself is untouched

    def test_max_fires_caps_injections(self):
        injector = FaultInjector(
            FaultPlan([FaultRule("p", "raise", every=1, max_fires=2)], seed=0)
        )
        failures = 0
        for _ in range(5):
            try:
                injector.fire("p")
            except InjectedFault:
                failures += 1
        assert failures == 2
        assert len(injector.log) == 2

    def test_kill_raises_worker_crash_past_except_exception(self):
        injector = FaultInjector(
            FaultPlan([FaultRule("p", "kill", every=1)], seed=0)
        )
        with pytest.raises(WorkerCrash):
            try:
                injector.fire("p")
            except Exception:  # noqa: BLE001 — the point of the test
                pytest.fail("WorkerCrash must not be caught by except Exception")

    def test_latency_sleeps(self):
        injector = FaultInjector(
            FaultPlan([FaultRule("p", "latency", every=1, delay=0.05)], seed=0)
        )
        start = time.monotonic()
        injector.fire("p")
        assert time.monotonic() - start >= 0.04

    def test_truncate_returns_directive(self):
        injector = FaultInjector(
            FaultPlan([FaultRule("p", "truncate", every=1, fraction=0.5)], seed=0)
        )
        directive = injector.fire("p")
        assert isinstance(directive, TruncateDirective)
        cut = directive.cut(b"0123456789\n")
        assert 1 <= len(cut) < 11
        assert b"\n" not in cut

    def test_perturb_returns_directive_with_scale(self):
        injector = FaultInjector(
            FaultPlan(
                [FaultRule("verify.*", "perturb", every=1, scale=0.01)],
                seed=0,
            )
        )
        directive = injector.fire("verify.sparse-vs-dense")
        assert isinstance(directive, PerturbDirective)
        assert directive.point == "verify.sparse-vs-dense"
        assert directive.scale == 0.01

    def test_perturb_parse_round_trips_scale(self):
        rule = FaultRule.parse("verify.arg-vs-bruteforce:perturb:scale=1e-2")
        assert rule.action == "perturb"
        assert rule.scale == 0.01

    def test_truncate_sites_ignore_perturb_directives(self):
        # The store/journal appenders must only honour *truncate*
        # directives; a perturb directive at their points is not a torn
        # write and must not be treated as one.
        directive = PerturbDirective("store.append", 0.01)
        assert not isinstance(directive, TruncateDirective)

    def test_thread_safety_counts_every_call(self):
        injector = FaultInjector(
            FaultPlan([FaultRule("p", "raise", every=10)], seed=0)
        )

        def hammer():
            for _ in range(100):
                try:
                    injector.fire("p")
                except InjectedFault:
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert injector.calls("p") == 400
        assert len(injector.log) == 40  # every 10th of 400


class TestModuleSwitch:
    def test_point_is_noop_without_plan(self):
        assert faults.active() is None
        assert faults.point("anything") is None

    def test_session_installs_and_uninstalls(self):
        plan = FaultPlan([FaultRule("p", "raise", every=1)], seed=0)
        with faults.session(plan) as injector:
            assert faults.active() is injector
            with pytest.raises(InjectedFault):
                faults.point("p")
        assert faults.active() is None
        assert faults.point("p") is None

    def test_smoke_plan_parses_and_is_survivable(self):
        plan = FaultPlan.smoke(seed=5)
        assert any(rule.action == "kill" for rule in plan.rules)
        assert all(
            rule.action != "kill" or rule.max_fires is not None
            for rule in plan.rules
        )
