"""Transpilation: native-basis translation and routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.transpile import (
    NATIVE_BASIS,
    CouplingMap,
    grid_coupling,
    linear_coupling,
    route_circuit,
    to_native_basis,
    transpile,
    zyz_angles,
)
from repro.circuits.unitary import circuit_unitary, unitaries_equal
from repro.exceptions import CircuitError
from repro.simulators.statevector import simulate_statevector

ANGLES = st.floats(min_value=-3.1, max_value=3.1, allow_nan=False)


class TestZyzAngles:
    @given(theta=ANGLES, phi=ANGLES, lam=ANGLES)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, theta, phi, lam):
        from repro.circuits.gates import single_qubit_matrix

        u = single_qubit_matrix("u", (abs(theta), phi, lam))
        t, p, l = zyz_angles(u)
        rz_p = single_qubit_matrix("rz", (p,))
        ry_t = single_qubit_matrix("ry", (t,))
        rz_l = single_qubit_matrix("rz", (l,))
        rebuilt = rz_p @ ry_t @ rz_l
        assert unitaries_equal(rebuilt, u, up_to_global_phase=True)

    def test_identity(self):
        theta, _, _ = zyz_angles(np.eye(2, dtype=complex))
        assert theta == pytest.approx(0.0)

    def test_pauli_x(self):
        from repro.circuits.gates import single_qubit_matrix

        theta, _, _ = zyz_angles(single_qubit_matrix("x"))
        assert theta == pytest.approx(np.pi)


class TestToNativeBasis:
    def _roundtrip(self, build, n):
        qc = QuantumCircuit(n)
        build(qc)
        native = to_native_basis(qc)
        for instr in native:
            assert instr.name in NATIVE_BASIS or instr.name in (
                "measure", "reset", "barrier",
            )
        assert unitaries_equal(
            circuit_unitary(native), circuit_unitary(qc), up_to_global_phase=True
        )

    def test_hadamard(self):
        self._roundtrip(lambda qc: qc.h(0), 1)

    def test_mixed_rotations(self):
        self._roundtrip(
            lambda qc: (qc.ry(0.7, 0), qc.rx(0.2, 1), qc.u(0.3, 1.1, -0.4, 0)), 2
        )

    def test_entangled(self):
        self._roundtrip(lambda qc: (qc.h(0), qc.cx(0, 1), qc.t(1)), 2)

    def test_multi_controlled(self):
        self._roundtrip(lambda qc: qc.mcrx(0.9, [0, 1], 2, ctrl_state=(1, 0)), 3)

    def test_fusion_shrinks_gate_count(self):
        qc = QuantumCircuit(1)
        for _ in range(10):
            qc.rz(0.1, 0)
            qc.ry(0.2, 0)
        native = to_native_basis(qc)
        # Ten rotation pairs fuse into a single ZSX pattern (<= 5 gates).
        assert len(native) <= 5

    def test_measure_preserved(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.measure(0)
        native = to_native_basis(qc)
        assert native.instructions[-1].name == "measure"

    def test_pure_z_rotation_is_single_rz(self):
        qc = QuantumCircuit(1)
        qc.rz(0.5, 0)
        qc.s(0)
        native = to_native_basis(qc)
        assert [instr.name for instr in native] == ["rz"]


class TestCouplingMaps:
    def test_linear(self):
        coupling = linear_coupling(4)
        assert coupling.edges == ((0, 1), (1, 2), (2, 3))
        assert coupling.num_qubits == 4

    def test_grid(self):
        coupling = grid_coupling(2, 2)
        assert set(map(frozenset, coupling.edges)) == {
            frozenset({0, 1}), frozenset({2, 3}),
            frozenset({0, 2}), frozenset({1, 3}),
        }


class TestRouting:
    def _check_state_preserved(self, qc, coupling):
        routed, mapping = route_circuit(qc, coupling)
        graph = coupling.graph()
        for instr in routed:
            if instr.name == "cx":
                assert graph.has_edge(*instr.qubits)
        original = simulate_statevector(qc)
        routed_state = simulate_statevector(routed)
        n_logical = qc.num_qubits
        n_physical = coupling.num_qubits
        rebuilt = np.zeros(1 << n_logical, dtype=complex)
        for key in range(1 << n_physical):
            amplitude = routed_state[key]
            if abs(amplitude) < 1e-12:
                continue
            logical_key = 0
            for lq in range(n_logical):
                if (key >> mapping[lq]) & 1:
                    logical_key |= 1 << lq
            rebuilt[logical_key] += amplitude
        np.testing.assert_allclose(rebuilt, original, atol=1e-9)

    def test_adjacent_cx_untouched(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        routed, mapping = route_circuit(qc, linear_coupling(2))
        assert sum(1 for instr in routed if instr.name == "cx") == 1
        assert mapping == {0: 0, 1: 1}

    def test_long_range_cx_on_a_line(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        qc.cx(0, 3)
        self._check_state_preserved(qc, linear_coupling(4))

    def test_many_gates(self):
        qc = QuantumCircuit(5)
        qc.h(0)
        qc.cx(0, 4)
        qc.cx(1, 3)
        qc.rx(0.3, 2)
        qc.cx(4, 0)
        self._check_state_preserved(qc, linear_coupling(5))

    def test_grid_routing(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        qc.cx(0, 3)
        self._check_state_preserved(qc, grid_coupling(2, 2))

    def test_too_small_coupling_rejected(self):
        qc = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            route_circuit(qc, linear_coupling(2))

    def test_unflattened_gate_rejected(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        with pytest.raises(CircuitError):
            route_circuit(qc, linear_coupling(3))


class TestFullPipeline:
    def test_transpile_end_to_end(self):
        from repro.core.transition import transition_circuit

        qc = transition_circuit(np.array([1, -1, 0, 1]), 0.6, 4)
        result = transpile(qc, linear_coupling(4))
        for instr in result:
            assert instr.name in NATIVE_BASIS or instr.name in (
                "measure", "barrier",
            )

    def test_transpile_without_coupling(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        result = transpile(qc)
        assert unitaries_equal(
            circuit_unitary(result), circuit_unitary(qc), up_to_global_phase=True
        )
