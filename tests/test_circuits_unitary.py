"""Unitary extraction and comparison helpers."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import circuit_unitary, unitaries_equal
from repro.exceptions import SimulationError


class TestCircuitUnitary:
    def test_identity_circuit(self):
        np.testing.assert_allclose(
            circuit_unitary(QuantumCircuit(2)), np.eye(4), atol=1e-12
        )

    def test_x_gate(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        np.testing.assert_allclose(
            circuit_unitary(qc), [[0, 1], [1, 0]], atol=1e-12
        )

    def test_composition_is_matrix_product(self):
        a = QuantumCircuit(1)
        a.h(0)
        b = QuantumCircuit(1)
        b.t(0)
        combined = QuantumCircuit(1)
        combined.h(0)
        combined.t(0)
        np.testing.assert_allclose(
            circuit_unitary(combined),
            circuit_unitary(b) @ circuit_unitary(a),
            atol=1e-12,
        )

    def test_result_is_unitary(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.crx(0.7, 0, 1)
        u = circuit_unitary(qc)
        np.testing.assert_allclose(u @ u.conj().T, np.eye(4), atol=1e-10)

    def test_size_guard(self):
        with pytest.raises(SimulationError):
            circuit_unitary(QuantumCircuit(13))


class TestUnitariesEqual:
    def test_exact_equality(self):
        u = np.eye(2)
        assert unitaries_equal(u, u)

    def test_global_phase(self):
        u = np.eye(2, dtype=complex)
        assert not unitaries_equal(u, 1j * u)
        assert unitaries_equal(u, 1j * u, up_to_global_phase=True)

    def test_shape_mismatch(self):
        assert not unitaries_equal(np.eye(2), np.eye(4))

    def test_non_phase_difference_detected(self):
        u = np.eye(2, dtype=complex)
        v = np.array([[0, 1], [1, 0]], dtype=complex)
        assert not unitaries_equal(u, v, up_to_global_phase=True)

    def test_scaled_matrix_rejected(self):
        u = np.eye(2, dtype=complex)
        assert not unitaries_equal(u, 2.0 * u, up_to_global_phase=True)


class TestSummaryModule:
    def test_headline_from_table2(self):
        from repro.experiments.summary import headline_from_results
        from repro.experiments.table2 import Table2, Table2Cell

        table = Table2()
        table.cells["X1"] = {
            "rasengan": Table2Cell(arg=0.01, depth=50, num_parameters=5, cases=1),
            "chocoq": Table2Cell(arg=0.10, depth=500, num_parameters=10, cases=1),
            "pqaoa": Table2Cell(arg=10.0, depth=100, num_parameters=10, cases=1),
            "hea": Table2Cell(arg=20.0, depth=30, num_parameters=70, cases=1),
        }
        headline = headline_from_results(table)
        assert headline.arg_vs_chocoq == pytest.approx(10.0)
        assert headline.arg_vs_pqaoa == pytest.approx(1000.0)
        assert headline.depth_vs_chocoq == pytest.approx(10.0)
        assert headline.hardware_improvement is None
        assert "Choco-Q" in headline.format()

    def test_zero_arg_floored(self):
        from repro.experiments.summary import headline_from_results
        from repro.experiments.table2 import Table2, Table2Cell

        table = Table2()
        table.cells["X1"] = {
            "rasengan": Table2Cell(arg=0.0, depth=50, num_parameters=5, cases=1),
            "chocoq": Table2Cell(arg=1.0, depth=500, num_parameters=10, cases=1),
        }
        headline = headline_from_results(table)
        assert np.isfinite(headline.arg_vs_chocoq)
