"""Transition-operator circuit synthesis (Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.decompose import decompose_circuit
from repro.core.hamiltonian import TransitionHamiltonian
from repro.core.transition import transition_chain_circuit, transition_circuit
from repro.exceptions import ProblemError
from repro.simulators.statevector import StatevectorSimulator

SIGNED_UNIT = st.lists(st.sampled_from([-1, 0, 1]), min_size=2, max_size=5).filter(
    lambda v: any(v)
)
TIMES = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


def circuit_unitary(circuit):
    sim = StatevectorSimulator()
    dim = 1 << circuit.num_qubits
    columns = []
    for basis in range(dim):
        state = np.zeros(dim, dtype=complex)
        state[basis] = 1.0
        columns.append(sim.run(circuit, initial_state=state))
    return np.array(columns).T


class TestTransitionCircuit:
    @given(vec=SIGNED_UNIT, time=TIMES)
    @settings(max_examples=60, deadline=None)
    def test_equals_exact_evolution(self, vec, time):
        u = np.array(vec)
        circuit = transition_circuit(u, time, len(vec))
        expected = TransitionHamiltonian.from_vector(u).evolution_matrix(time)
        np.testing.assert_allclose(circuit_unitary(circuit), expected, atol=1e-9)

    def test_single_nonzero_is_plain_rx(self):
        circuit = transition_circuit(np.array([0, 1, 0]), 0.5, 3)
        assert len(circuit) == 1
        assert circuit[0].name == "rx"
        assert circuit[0].params == (1.0,)

    def test_symmetric_ladder_structure(self):
        circuit = transition_circuit(np.array([-1, 0, -1, 1, 0]), 0.3, 5)
        names = [instr.name for instr in circuit]
        # CX ladder, one MCRX, inverse ladder.
        assert names == ["cx", "cx", "mcrx", "cx", "cx"]

    def test_decomposed_still_exact(self):
        u = np.array([1, -1, 1, 0])
        time = 0.77
        circuit = decompose_circuit(transition_circuit(u, time, 4))
        expected = TransitionHamiltonian.from_vector(u).evolution_matrix(time)
        np.testing.assert_allclose(circuit_unitary(circuit), expected, atol=1e-9)

    def test_zero_vector_rejected(self):
        with pytest.raises(ProblemError):
            transition_circuit(np.zeros(3, dtype=int), 0.1, 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ProblemError):
            transition_circuit(np.array([1, -1]), 0.1, 3)


class TestChainCircuit:
    def test_paper_example_chain_covers_feasible_space(
        self, paper_constraints, paper_basis
    ):
        matrix, bound, particular = paper_constraints
        times = [0.6, 0.7, 0.8]
        circuit = transition_chain_circuit(
            paper_basis, [0, 1, 2], times, 5, initial_bits=particular
        )
        probabilities = StatevectorSimulator().probabilities(circuit)
        support = set(np.flatnonzero(probabilities > 1e-10))
        from repro.linalg.feasible import enumerate_feasible_bruteforce
        from repro.linalg.bitvec import bits_to_int

        feasible = {
            bits_to_int(x) for x in enumerate_feasible_bruteforce(matrix, bound)
        }
        # Everything reachable is feasible; one pass need not cover all.
        assert support <= feasible
        assert len(support) > 1

    def test_schedule_times_length_check(self, paper_basis):
        with pytest.raises(ProblemError):
            transition_chain_circuit(paper_basis, [0, 1], [0.1], 5)

    def test_without_initialization(self, paper_basis):
        circuit = transition_chain_circuit(paper_basis, [0], [0.2], 5)
        assert circuit[0].name != "x"
