"""HTTP API round-trips: a real server on an ephemeral port + the client."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro import __version__, telemetry
from repro.problems import make_benchmark
from repro.problems.io import problem_to_dict
from repro.service import (
    ServiceClient,
    ServiceClientError,
    ServiceServer,
    SolverService,
)

QUICK = {"seed": 7, "shots": None, "max_iterations": 5}


@pytest.fixture
def live_service():
    """A started service + HTTP server on an ephemeral port, torn down
    after the test; yields (service, server, client, collector)."""
    with telemetry.session() as collector:
        service = SolverService(workers=2).start()
        server = ServiceServer(service, port=0).start()
        client = ServiceClient(server.url, timeout=10.0)
        try:
            yield service, server, client, collector
        finally:
            server.stop()
            service.close()


class TestHealthAndMetrics:
    def test_healthz_reports_version_and_workers(self, live_service):
        _, _, client, _ = live_service
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["workers"] == 2
        assert health["queue_depth"] == 0
        assert set(health["jobs"]) == {
            "pending", "running", "done", "failed", "cancelled"
        }

    def test_metrics_json_and_text(self, live_service):
        _, server, client, _ = live_service
        # The client sends Accept: application/json and keeps the JSON
        # summary shape.
        payload = client.metrics()
        assert payload["enabled"] is True
        assert "counters" in payload and "histograms" in payload
        # Everyone else (curl, Prometheus scrapers) gets text exposition
        # with sanitized metric names.
        with urllib.request.urlopen(
            server.url + "/metrics?format=text", timeout=5
        ) as response:
            text = response.read().decode()
        assert "telemetry_enabled 1" in text
        assert "service_http_requests" in text
        assert "service.http.requests" not in text

    def test_metrics_prometheus_passes_checker(self, live_service):
        _, server, client, _ = live_service
        client.solve(benchmark="F1", config=QUICK, wait_timeout=60.0)
        request = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(request, timeout=5) as response:
            text = response.read().decode()
        from check_trace_outputs import check_prometheus_text

        assert check_prometheus_text(text) == []
        # Histogram families (job runtimes, per-route HTTP latency) are
        # expanded into _bucket/_sum/_count series.
        assert 'service_jobs_run_seconds_bucket{le="+Inf"}' in text
        assert "service_jobs_run_seconds_count" in text
        assert "service_http_request_seconds_post_jobs_201" in text

    def test_job_record_carries_flight_recorder(self, live_service):
        _, _, client, collector = live_service
        job = client.submit(
            benchmark="F1", config=QUICK, wait=True, wait_timeout=60.0
        )
        assert job["state"] == "done"
        events = [entry["event"] for entry in job["timeline"]]
        assert events[0] == "submitted"
        assert "started" in events and "finished" in events
        started = next(
            entry for entry in job["timeline"] if entry["event"] == "started"
        )
        assert started["queued_seconds"] >= 0
        assert job["trace"] is not None
        assert job["trace"]["name"] == "service.job"
        nested = [child["name"] for child in job["trace"]["children"]]
        assert "solve" in nested
        assert collector.histogram("service.jobs.queue_seconds").count >= 1


class TestJobRoutes:
    def test_submit_wait_roundtrip_matches_direct_solve(self, live_service):
        _, _, client, _ = live_service
        from repro.core.solver import RasenganConfig, RasenganSolver

        solver = RasenganSolver(
            make_benchmark("F1", 0), config=RasenganConfig(**QUICK)
        )
        try:
            direct = solver.solve().to_json_dict()
        finally:
            solver.engine.close()
        record = client.solve(benchmark="F1", config=QUICK, wait_timeout=60.0)
        assert record == direct

    def test_submit_explicit_problem_payload(self, live_service):
        _, _, client, _ = live_service
        payload = problem_to_dict(make_benchmark("F1", 0))
        job = client.submit(problem=payload, config=QUICK, wait=True,
                            wait_timeout=60.0)
        assert job["state"] == "done"
        assert job["result"]["problem"] == payload["name"]

    def test_duplicate_submissions_coalesce(self, live_service):
        _, _, client, collector = live_service
        results = []
        errors = []

        def submit_one():
            try:
                results.append(
                    client.solve(
                        benchmark="K1",
                        config={"seed": 3, "shots": None, "max_iterations": 5},
                        wait_timeout=60.0,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=submit_one) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(90.0)
        assert not errors
        assert len(results) == 3
        assert results[0] == results[1] == results[2]
        coalesced = collector.counter("service.dedup.coalesced")
        cached = collector.counter("service.store.hits")
        # However the 3 submissions interleave, at most one execution ran:
        assert collector.counter("service.jobs.executed") == 1
        assert coalesced + cached == 2

    def test_get_jobs_listing_and_single(self, live_service):
        _, _, client, _ = live_service
        job = client.submit(benchmark="F1", config=QUICK, wait=True,
                            wait_timeout=60.0)
        listing = client.jobs()["jobs"]
        assert any(item["id"] == job["id"] for item in listing)
        fetched = client.job(job["id"])
        assert fetched["state"] == "done"
        assert fetched["result"] == job["result"]

    def test_unknown_job_404(self, live_service):
        _, _, client, _ = live_service
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("nope")
        assert excinfo.value.status == 404

    def test_unknown_route_404(self, live_service):
        _, _, client, _ = live_service
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/bogus")
        assert excinfo.value.status == 404

    def test_invalid_json_400(self, live_service):
        _, server, _, _ = live_service
        request = urllib.request.Request(
            server.url + "/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_bad_submission_field_400(self, live_service):
        _, _, client, _ = live_service
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/jobs", {"benchmark": "F1", "bogus": 1})
        assert excinfo.value.status == 400
        assert "bogus" in str(excinfo.value)

    def test_unknown_config_key_400(self, live_service):
        _, _, client, _ = live_service
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(benchmark="F1", config={"shotz": 1})
        assert excinfo.value.status == 400

    def test_cancel_route(self, live_service):
        service, _, client, _ = live_service
        # Block both workers so the target job stays queued.
        release = threading.Event()
        original_runner = service._runner

        def blocking(spec):
            release.wait(10.0)
            return original_runner(spec)

        service._runner = blocking
        blockers = [
            client.submit(benchmark="F1",
                          config={**QUICK, "seed": 100 + index})
            for index in range(2)
        ]
        victim = client.submit(benchmark="K1", config=QUICK)
        record = client.cancel(victim["id"])
        release.set()
        assert record["state"] == "cancelled"
        for job in blockers:
            client.wait(job["id"], timeout=60.0)

    def test_http_error_counter_increments(self, live_service):
        _, _, client, collector = live_service
        before = collector.counter("service.http.errors")
        with pytest.raises(ServiceClientError):
            client.job("missing")
        assert collector.counter("service.http.errors") == before + 1
