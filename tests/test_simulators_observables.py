"""Pauli observables and QUBO -> Ising conversion."""

import numpy as np
import pytest

from repro.baselines.encoding import qubo_coefficients
from repro.exceptions import SimulationError
from repro.linalg.bitvec import all_bitvectors, bits_to_int
from repro.problems import make_benchmark
from repro.simulators.observables import PauliString, PauliSum, ising_from_qubo
from repro.simulators.statevector import simulate_statevector
from repro.circuits.circuit import QuantumCircuit


class TestPauliString:
    def test_z_expectation_on_basis_states(self):
        z0 = PauliString.from_dict({0: "Z"})
        up = np.array([1, 0], dtype=complex)
        down = np.array([0, 1], dtype=complex)
        assert z0.expectation(up, 1) == pytest.approx(1.0)
        assert z0.expectation(down, 1) == pytest.approx(-1.0)

    def test_x_expectation_on_plus(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        plus = simulate_statevector(qc)
        x0 = PauliString.from_dict({0: "X"})
        assert x0.expectation(plus, 1).real == pytest.approx(1.0)

    def test_zz_on_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        bell = simulate_statevector(qc)
        zz = PauliString.from_dict({0: "Z", 1: "Z"})
        xx = PauliString.from_dict({0: "X", 1: "X"})
        assert zz.expectation(bell, 2).real == pytest.approx(1.0)
        assert xx.expectation(bell, 2).real == pytest.approx(1.0)

    def test_coefficient_scales(self):
        z0 = PauliString.from_dict({0: "Z"}, coefficient=2.5)
        up = np.array([1, 0], dtype=complex)
        assert z0.expectation(up, 1) == pytest.approx(2.5)

    def test_matrix_matches_expectation(self):
        rng = np.random.default_rng(0)
        state = rng.normal(size=4) + 1j * rng.normal(size=4)
        state /= np.linalg.norm(state)
        term = PauliString.from_dict({0: "Y", 1: "Z"}, coefficient=0.7)
        via_matrix = state.conj() @ term.to_matrix(2) @ state
        assert term.expectation(state, 2) == pytest.approx(complex(via_matrix))

    def test_counts_expectation(self):
        zz = PauliString.from_dict({0: "Z", 1: "Z"})
        counts = {0b00: 50, 0b11: 30, 0b01: 20}
        # parities: +1, +1, -1.
        assert zz.expectation_from_counts(counts) == pytest.approx(
            (50 + 30 - 20) / 100
        )

    def test_counts_expectation_rejects_x(self):
        x0 = PauliString.from_dict({0: "X"})
        with pytest.raises(SimulationError):
            x0.expectation_from_counts({0: 1})

    def test_invalid_label_rejected(self):
        with pytest.raises(SimulationError):
            PauliString.from_dict({0: "W"})

    def test_is_diagonal(self):
        assert PauliString.from_dict({0: "Z", 3: "Z"}).is_diagonal
        assert not PauliString.from_dict({0: "Z", 1: "X"}).is_diagonal


class TestPauliSum:
    def test_sum_expectation(self):
        observable = PauliSum()
        observable.add({0: "Z"}, 1.0)
        observable.add({1: "Z"}, 2.0)
        state = np.zeros(4, dtype=complex)
        state[0b10] = 1.0  # qubit0=0 (+1), qubit1=1 (-1)
        assert observable.expectation(state, 2).real == pytest.approx(1.0 - 2.0)

    def test_matrix_sum(self):
        observable = PauliSum()
        observable.add({0: "X"}, 0.5)
        observable.add({0: "Z"}, 0.5)
        matrix = observable.to_matrix(1)
        expected = 0.5 * np.array([[1, 1], [1, -1]], dtype=complex)
        np.testing.assert_allclose(matrix, expected)


class TestIsingFromQubo:
    @pytest.mark.parametrize("benchmark_id", ["F1", "K1", "J1"])
    def test_reproduces_penalty_energy(self, benchmark_id):
        problem = make_benchmark(benchmark_id, 0)
        penalty = 15.0
        constant, linear, quadratic = qubo_coefficients(problem, penalty)
        offset, observable = ising_from_qubo(constant, linear, quadratic)
        n = problem.num_variables
        for bits in all_bitvectors(n)[:: max(1, (1 << n) // 32)]:
            key = bits_to_int(bits)
            state = np.zeros(1 << n, dtype=complex)
            state[key] = 1.0
            energy = offset + observable.expectation(state, n).real
            expected = problem.penalty_value(bits, 0.0) + penalty * float(
                ((problem.constraint_matrix @ bits.astype(np.int64)
                  - problem.bound) ** 2).sum()
            )
            assert energy == pytest.approx(expected, abs=1e-8)

    def test_term_count_matches_couplings(self):
        problem = make_benchmark("F1", 0)
        constant, linear, quadratic = qubo_coefficients(problem, 10.0)
        _, observable = ising_from_qubo(constant, linear, quadratic)
        zz_terms = [t for t in observable.terms if len(t.paulis) == 2]
        assert len(zz_terms) == len(quadratic)
