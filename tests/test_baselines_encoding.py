"""Penalty/QUBO encoding correctness."""

import numpy as np
import pytest

from repro.baselines.encoding import PenaltyEncoding, qubo_coefficients
from repro.linalg.bitvec import all_bitvectors
from repro.problems import make_benchmark
from repro.simulators.statevector import simulate_statevector


class TestQuboCoefficients:
    @pytest.mark.parametrize("benchmark_id", ["F1", "K1", "J1", "S1"])
    def test_reconstructs_energy_exactly(self, benchmark_id):
        problem = make_benchmark(benchmark_id, 0)
        penalty = 25.0
        constant, linear, quadratic = qubo_coefficients(problem, penalty)
        bits = all_bitvectors(problem.num_variables).astype(np.int64)
        for row in bits[:: max(1, len(bits) // 64)]:
            direct = problem.penalty_value(row, 0.0) + penalty * float(
                (problem.constraint_matrix @ row - problem.bound) ** 2 @ np.ones(
                    problem.num_constraints
                )
            )
            reconstructed = constant + float(linear @ row)
            for (i, j), coupling in quadratic.items():
                reconstructed += coupling * row[i] * row[j]
            assert reconstructed == pytest.approx(direct, abs=1e-8)

    def test_linear_objective_has_no_objective_couplings(self):
        # FLP objective is linear; all couplings come from the penalty.
        problem = make_benchmark("F1", 0)
        _, _, with_penalty = qubo_coefficients(problem, 10.0)
        _, _, without = qubo_coefficients(problem, 0.0)
        assert len(without) == 0
        assert len(with_penalty) > 0

    def test_quadratic_objective_detected(self):
        # JSP objective is quadratic even with zero penalty.
        problem = make_benchmark("J1", 0)
        _, _, quadratic = qubo_coefficients(problem, 0.0)
        assert len(quadratic) > 0


class TestPenaltyEncoding:
    def test_energies_match_penalty_value(self):
        problem = make_benchmark("K1", 0)
        encoding = PenaltyEncoding(problem, penalty=30.0)
        energies = encoding.energies
        bits = all_bitvectors(problem.num_variables)
        for key in (0, 5, 17, 63):
            expected = problem.value(bits[key]) + 30.0 * float(
                ((problem.constraint_matrix @ bits[key].astype(np.int64)
                  - problem.bound) ** 2).sum()
            )
            assert energies[key] == pytest.approx(expected)

    def test_feasible_states_have_lowest_penalty_band(self):
        problem = make_benchmark("F1", 0)
        encoding = PenaltyEncoding(problem, penalty=100.0)
        feasible = set(problem.feasible_keys())
        energies = encoding.energies
        worst_feasible = max(energies[k] for k in feasible)
        best_infeasible = min(
            energies[k] for k in range(len(energies)) if k not in feasible
        )
        assert worst_feasible < best_infeasible

    def test_variable_degrees(self):
        problem = make_benchmark("F1", 0)
        encoding = PenaltyEncoding(problem, penalty=10.0)
        degrees = encoding.variable_degrees()
        assert degrees.shape == (problem.num_variables,)
        assert degrees.sum() == 2 * len(encoding.coupling_pairs)

    def test_phase_separation_circuit_is_diagonal_and_correct(self):
        problem = make_benchmark("K1", 0)
        encoding = PenaltyEncoding(problem, penalty=7.0)
        gamma = 0.23
        circuit = encoding.phase_separation_circuit(gamma)
        n = problem.num_variables
        # Compare phases on an equal superposition against exp(-i g E).
        state = np.full(1 << n, 1 / np.sqrt(1 << n), dtype=complex)
        from repro.simulators.statevector import StatevectorSimulator

        out = StatevectorSimulator().run(circuit, initial_state=state)
        expected = state * np.exp(-1j * gamma * encoding.energies)
        # Equal up to a single global phase.
        ratio = out / expected
        np.testing.assert_allclose(ratio, ratio[0], atol=1e-8)

    def test_phase_separation_two_qubit_count(self):
        problem = make_benchmark("F1", 0)
        encoding = PenaltyEncoding(problem, penalty=10.0)
        circuit = encoding.phase_separation_circuit(0.1)
        cx_count = sum(1 for instr in circuit if instr.name == "cx")
        assert cx_count == 2 * len(encoding.coupling_pairs)
